"""Setuptools shim.

The environment has setuptools but no ``wheel`` package, so PEP-660
editable installs (which build a wheel) fail offline.  This shim lets
``pip install -e . --no-use-pep517`` / ``python setup.py develop`` work;
all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

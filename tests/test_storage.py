"""Tests for repro.storage (pages, buffer pool, layout, I/O model)."""

import numpy as np
import pytest

from repro.core import UniformBuckets
from repro.data import uniform, zipf_clustered
from repro.errors import StorageError
from repro.quadtree import GridPyramid
from repro.storage import (
    BufferPool,
    CellPageLayout,
    IOCounter,
    PagedFile,
    blocked_join_io,
    dm_sdh_io,
    dm_sdh_io_bound,
)


class TestPagedFile:
    def test_append_and_read(self):
        f = PagedFile(page_size=3)
        first, last = f.append_records(np.arange(7))
        assert (first, last) == (0, 2)
        assert f.num_pages == 3
        np.testing.assert_array_equal(f.read_page(0), [0, 1, 2])
        np.testing.assert_array_equal(f.read_page(2), [6])

    def test_appends_never_share_pages(self):
        f = PagedFile(page_size=4)
        f.append_records(np.arange(3))
        first, _last = f.append_records(np.arange(2))
        assert first == 1

    def test_bad_page_id(self):
        f = PagedFile(page_size=2)
        with pytest.raises(StorageError):
            f.read_page(0)

    def test_rejects_bad_size_and_empty(self):
        with pytest.raises(StorageError):
            PagedFile(page_size=0)
        with pytest.raises(StorageError):
            PagedFile(page_size=2).append_records(np.empty(0))


class TestBufferPool:
    def test_hit_miss_accounting(self):
        pool = BufferPool(2)
        assert pool.get("f", 1) is False  # miss
        assert pool.get("f", 1) is True  # hit
        assert pool.get("f", 2) is False
        assert pool.get("f", 3) is False  # evicts page 1 (LRU)
        assert pool.get("f", 1) is False  # miss again
        c = pool.counter
        assert c.reads == 4
        assert c.hits == 1
        assert c.logical_reads == 5
        assert c.hit_ratio == pytest.approx(0.2)

    def test_lru_order_updated_on_hit(self):
        pool = BufferPool(2)
        pool.get("f", 1)
        pool.get("f", 2)
        pool.get("f", 1)  # 1 becomes most recent
        pool.get("f", 3)  # evicts 2
        assert pool.contains("f", 1)
        assert not pool.contains("f", 2)

    def test_capacity_never_exceeded(self, rng):
        pool = BufferPool(5)
        for page in rng.integers(0, 50, size=500):
            pool.get("f", int(page))
            assert len(pool) <= 5

    def test_files_are_distinct(self):
        pool = BufferPool(4)
        pool.get("a", 1)
        assert pool.get("b", 1) is False

    def test_get_many_and_clear(self):
        pool = BufferPool(10)
        misses = pool.get_many("f", np.array([1, 2, 1, 3]))
        assert misses == 3
        pool.clear()
        assert len(pool) == 0
        assert pool.counter.reads == 3  # counters survive clear

    def test_counter_reset(self):
        counter = IOCounter(reads=5, hits=2, writes=1)
        counter.reset()
        assert counter.reads == counter.hits == counter.writes == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(StorageError):
            BufferPool(0)


class TestCellPageLayout:
    def test_layout_verifies(self):
        data = zipf_clustered(300, dim=2, rng=17)
        layout = CellPageLayout(GridPyramid(data), page_size=16)
        layout.verify()
        assert layout.num_pages == -(-300 // 16)

    def test_pages_of_cell_cover_particles(self):
        data = uniform(200, dim=2, rng=18)
        pyramid = GridPyramid(data)
        layout = CellPageLayout(pyramid, page_size=8)
        counts = pyramid.counts(pyramid.leaf_level)
        for cell in np.flatnonzero(counts):
            pages = layout.pages_of_cell(int(cell))
            assert pages.size >= 1
            # Page span must be contiguous.
            np.testing.assert_array_equal(
                pages, np.arange(pages[0], pages[-1] + 1)
            )

    def test_empty_cell_has_no_pages(self):
        data = zipf_clustered(100, dim=2, rng=19)
        pyramid = GridPyramid(data)
        layout = CellPageLayout(pyramid, page_size=8)
        counts = pyramid.counts(pyramid.leaf_level)
        empty = np.flatnonzero(counts == 0)
        assert empty.size > 0
        assert layout.pages_of_cell(int(empty[0])).size == 0

    def test_pages_of_cells_deduplicates(self):
        data = uniform(100, dim=2, rng=20)
        pyramid = GridPyramid(data)
        layout = CellPageLayout(pyramid, page_size=50)
        counts = pyramid.counts(pyramid.leaf_level)
        cells = np.flatnonzero(counts)[:10]
        merged = layout.pages_of_cells(cells)
        # 100 particles / 50 per page = 2 pages total; consecutive
        # duplicates must collapse.
        assert merged.size <= 4

    def test_rejects_bad_page_size(self):
        data = uniform(50, rng=0)
        with pytest.raises(StorageError):
            CellPageLayout(GridPyramid(data), page_size=0)


class TestIOModel:
    def test_blocked_join_analytic_vs_simulated(self):
        analytic = blocked_join_io(60, 6, simulate=False)
        simulated = blocked_join_io(60, 6, simulate=True)
        # The LRU replay can only beat the analytic upper bound.
        assert simulated.page_reads <= analytic.page_reads
        assert simulated.page_reads >= 60  # must at least scan the file

    def test_blocked_join_quadratic_scaling(self):
        small = blocked_join_io(50, 6).page_reads
        big = blocked_join_io(200, 6).page_reads
        assert big > 10 * small  # ~16x for 4x pages

    def test_blocked_join_validation(self):
        with pytest.raises(StorageError):
            blocked_join_io(0, 4)
        with pytest.raises(StorageError):
            blocked_join_io(10, 1)

    def test_dm_sdh_io_runs_and_counts(self):
        data = uniform(600, dim=2, rng=21)
        spec = UniformBuckets.with_count(data.max_possible_distance, 4)
        report = dm_sdh_io(data, spec, page_size=32, buffer_pages=8)
        assert report.num_pages == -(-600 // 32)
        assert report.page_reads >= 0
        assert report.logical_reads >= report.page_reads
        assert 0.0 <= report.hit_ratio <= 1.0

    def test_dm_sdh_io_zero_when_everything_resolves(self):
        """With very wide buckets nothing reaches the leaf level, so
        the data file is never touched."""
        data = uniform(600, dim=2, rng=22)
        spec = UniformBuckets.with_count(data.max_possible_distance, 1)
        report = dm_sdh_io(data, spec, page_size=32, buffer_pages=8)
        assert report.page_reads == 0

    def test_bound_values(self):
        assert dm_sdh_io_bound(1000, 10, 2) == pytest.approx(100**1.5)
        assert dm_sdh_io_bound(1000, 10, 3) == pytest.approx(
            100 ** (5 / 3)
        )
        with pytest.raises(StorageError):
            dm_sdh_io_bound(0, 10, 2)

"""Tests for repro.geometry.bounds (AABB)."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import AABB


class TestConstruction:
    def test_basic_properties(self):
        box = AABB((0.0, 1.0), (2.0, 4.0))
        assert box.dim == 2
        assert box.sides == (2.0, 3.0)
        assert box.volume == 6.0
        assert box.center == (1.0, 2.5)
        assert box.diagonal == pytest.approx(math.sqrt(13))

    def test_3d(self):
        box = AABB.cube(2.0, 3)
        assert box.dim == 3
        assert box.volume == 8.0
        assert box.diagonal == pytest.approx(2 * math.sqrt(3))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(GeometryError):
            AABB((1.0, 0.0), (0.0, 1.0))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(GeometryError):
            AABB((0.0, 0.0), (1.0, 1.0, 1.0))

    def test_rejects_1d_and_4d(self):
        with pytest.raises(GeometryError):
            AABB((0.0,), (1.0,))
        with pytest.raises(GeometryError):
            AABB((0.0,) * 4, (1.0,) * 4)

    def test_rejects_non_finite(self):
        with pytest.raises(GeometryError):
            AABB((0.0, float("nan")), (1.0, 1.0))

    def test_cube_rejects_nonpositive_side(self):
        with pytest.raises(GeometryError):
            AABB.cube(0.0, 2)

    def test_of_points(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]])
        box = AABB.of_points(pts)
        assert box.lo == (0.0, -1.0)
        assert box.hi == (2.0, 1.0)

    def test_of_points_rejects_empty(self):
        with pytest.raises(GeometryError):
            AABB.of_points(np.empty((0, 2)))


class TestMembership:
    def test_half_open_semantics(self):
        box = AABB((0.0, 0.0), (1.0, 1.0))
        assert box.contains((0.0, 0.0))
        assert not box.contains((1.0, 0.5))
        assert box.contains((1.0, 0.5), closed=True)
        assert not box.contains((1.5, 0.5), closed=True)

    def test_contains_points_vectorized(self):
        box = AABB((0.0, 0.0), (1.0, 1.0))
        pts = np.array([[0.5, 0.5], [1.0, 0.5], [-0.1, 0.2]])
        assert list(box.contains_points(pts)) == [True, False, False]
        assert list(box.contains_points(pts, closed=True)) == [
            True,
            True,
            False,
        ]

    def test_contains_box_and_intersects(self):
        outer = AABB((0.0, 0.0), (4.0, 4.0))
        inner = AABB((1.0, 1.0), (2.0, 2.0))
        disjoint = AABB((5.0, 5.0), (6.0, 6.0))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.intersects(inner)
        assert not outer.intersects(disjoint)

    def test_touching_boxes_intersect(self):
        a = AABB((0.0, 0.0), (1.0, 1.0))
        b = AABB((1.0, 0.0), (2.0, 1.0))
        assert a.intersects(b)


class TestDistanceBounds:
    """The three scenarios of the paper's Fig. 3."""

    def test_overlapping_cells(self):
        a = AABB((0.0, 0.0), (2.0, 2.0))
        b = AABB((1.0, 1.0), (3.0, 3.0))
        assert a.min_distance(b) == 0.0
        assert a.max_distance(b) == pytest.approx(math.sqrt(9 + 9))

    def test_axis_offset_cells(self):
        a = AABB((0.0, 0.0), (1.0, 1.0))
        b = AABB((3.0, 0.0), (4.0, 1.0))
        assert a.min_distance(b) == pytest.approx(2.0)
        assert a.max_distance(b) == pytest.approx(math.sqrt(16 + 1))

    def test_diagonal_offset_cells(self):
        a = AABB((0.0, 0.0), (1.0, 1.0))
        b = AABB((2.0, 3.0), (3.0, 4.0))
        assert a.min_distance(b) == pytest.approx(math.sqrt(1 + 4))
        assert a.max_distance(b) == pytest.approx(math.sqrt(9 + 16))

    def test_paper_case_study_xa_zb(self):
        """The XA-ZB range [2, sqrt(52)] quoted in Sec. III-B."""
        from repro.data import fig1_cell

        u, v = fig1_cell("XA").distance_bounds(fig1_cell("ZB"))
        assert u == pytest.approx(2.0)
        assert v == pytest.approx(math.sqrt(52))

    def test_bounds_enclose_realized_distances(self, rng):
        a = AABB((0.0, 0.0), (1.0, 2.0))
        b = AABB((1.5, -1.0), (4.0, 0.5))
        pa = rng.uniform(a.lo, a.hi, size=(200, 2))
        pb = rng.uniform(b.lo, b.hi, size=(200, 2))
        d = np.sqrt(((pa - pb) ** 2).sum(axis=1))
        assert d.min() >= a.min_distance(b) - 1e-12
        assert d.max() <= a.max_distance(b) + 1e-12

    def test_dimension_mismatch_raises(self):
        with pytest.raises(GeometryError):
            AABB.cube(1.0, 2).min_distance(AABB.cube(1.0, 3))


class TestSubdivision:
    def test_2d_children_partition_parent(self):
        box = AABB((0.0, 0.0), (2.0, 2.0))
        children = box.subdivide()
        assert len(children) == 4
        assert sum(c.volume for c in children) == pytest.approx(box.volume)
        for child in children:
            assert box.contains_box(child)

    def test_3d_children_count(self):
        assert len(AABB.cube(1.0, 3).subdivide()) == 8

    def test_child_order_matches_bit_pattern(self):
        box = AABB((0.0, 0.0), (2.0, 2.0))
        children = box.subdivide()
        # Bit 0 toggles x, bit 1 toggles y.
        assert children[0].lo == (0.0, 0.0)
        assert children[1].lo == (1.0, 0.0)
        assert children[2].lo == (0.0, 1.0)
        assert children[3].lo == (1.0, 1.0)

    def test_corners(self):
        box = AABB((0.0, 0.0), (1.0, 2.0))
        corners = set(box.iter_corners())
        assert corners == {(0, 0), (1, 0), (0, 2), (1, 2)}


class TestSetOperations:
    def test_union(self):
        a = AABB((0.0, 0.0), (1.0, 1.0))
        b = AABB((2.0, -1.0), (3.0, 0.5))
        u = a.union(b)
        assert u.lo == (0.0, -1.0)
        assert u.hi == (3.0, 1.0)

    def test_intersection(self):
        a = AABB((0.0, 0.0), (2.0, 2.0))
        b = AABB((1.0, 1.0), (3.0, 3.0))
        inter = a.intersection(b)
        assert inter is not None
        assert inter.lo == (1.0, 1.0)
        assert inter.hi == (2.0, 2.0)

    def test_disjoint_intersection_is_none(self):
        a = AABB((0.0, 0.0), (1.0, 1.0))
        b = AABB((2.0, 2.0), (3.0, 3.0))
        assert a.intersection(b) is None

"""Tests for repro.cli (the command-line front end)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import load_particles, random_types, save_particles, uniform


class TestGenerate:
    @pytest.mark.parametrize("family", ["uniform", "zipf", "membrane"])
    def test_generate_npz(self, tmp_path, capsys, family):
        out = tmp_path / f"{family}.npz"
        code = main(
            [
                "generate", str(out),
                "--family", family,
                "--n", "500",
                "--dim", "2",
                "--seed", "3",
            ]
        )
        assert code == 0
        data = load_particles(out)
        assert data.size == 500
        assert "wrote 500 particles" in capsys.readouterr().out

    def test_generate_xyz(self, tmp_path):
        out = tmp_path / "u.xyz"
        assert main(["generate", str(out), "--n", "50"]) == 0
        from repro.data import load_xyz

        assert load_xyz(out).size == 50


class TestSdh:
    @pytest.fixture
    def dataset(self, tmp_path):
        path = tmp_path / "d.npz"
        save_particles(path, uniform(400, dim=2, rng=5))
        return str(path)

    def test_exact_with_buckets(self, dataset, capsys):
        assert main(["sdh", dataset, "--buckets", "8"]) == 0
        out = capsys.readouterr().out
        assert "total pairs: 79800" in out

    def test_exact_with_width(self, dataset, capsys):
        assert main(["sdh", dataset, "--width", "0.3"]) == 0
        assert "total pairs" in capsys.readouterr().out

    def test_stats_flag(self, dataset, capsys):
        assert main(["sdh", dataset, "--buckets", "4", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "resolve calls" in out

    def test_engines(self, dataset, capsys):
        totals = []
        for engine in ("grid", "tree", "brute"):
            assert main(
                ["sdh", dataset, "--buckets", "4", "--engine", engine]
            ) == 0
            out = capsys.readouterr().out
            totals.append(
                [line for line in out.splitlines() if "total" in line][0]
            )
        assert len(set(totals)) == 1

    def test_periodic(self, dataset, capsys):
        assert main(
            ["sdh", dataset, "--buckets", "8", "--periodic"]
        ) == 0
        out = capsys.readouterr().out
        assert "total pairs: 79800" in out

    def test_approximate(self, dataset, capsys):
        assert main(
            [
                "sdh", dataset,
                "--buckets", "16",
                "--error-bound", "0.05",
                "--heuristic", "3",
            ]
        ) == 0
        assert "total pairs" in capsys.readouterr().out

    def test_mutually_exclusive_spec(self, dataset):
        with pytest.raises(SystemExit):
            main(["sdh", dataset, "--buckets", "4", "--width", "0.1"])

    def test_error_path(self, tmp_path, capsys):
        bad = tmp_path / "missing.npz"
        with pytest.raises(Exception):
            main(["sdh", str(bad), "--buckets", "4"])


class TestRdfAndInfo:
    def test_rdf_output(self, tmp_path, capsys):
        path = tmp_path / "d.npz"
        save_particles(path, uniform(300, dim=3, rng=6))
        assert main(["rdf", str(path), "--buckets", "20"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 20
        r, g = map(float, lines[3].split())
        assert r > 0

    def test_info_typed(self, tmp_path, capsys):
        path = tmp_path / "typed.npz"
        data = random_types(
            uniform(200, dim=2, rng=7), {"C": 1, "O": 1}, rng=8
        )
        save_particles(path, data)
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "particles:  200" in out
        assert "type C" in out
        assert "tree height" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_prog_name(self):
        assert build_parser().prog == "repro-sdh"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8787
        assert args.workers == 4
        assert args.queue == 16
        assert args.cache == 8
        assert args.dataset == []

    def test_serve_repeatable_datasets(self):
        args = build_parser().parse_args(
            ["serve", "--dataset", "a.npz", "--dataset", "b.npz:mem"]
        )
        assert args.dataset == ["a.npz", "b.npz:mem"]


class TestLogging:
    @pytest.fixture
    def dataset(self, tmp_path):
        path = tmp_path / "d.npz"
        save_particles(path, uniform(300, dim=2, rng=6))
        return str(path)

    @pytest.fixture(autouse=True)
    def quiet_afterwards(self):
        yield
        from repro.observability import configure_logging

        configure_logging("warning")

    def test_log_json_emits_phase_spans(self, dataset, capsys):
        import json

        assert main(["sdh", dataset, "--buckets", "4", "--log-json"]) == 0
        captured = capsys.readouterr()
        assert "total pairs" in captured.out  # stdout stays the payload
        events = [
            json.loads(line) for line in captured.err.splitlines() if line
        ]
        by_name = {body["event"]: body for body in events}
        load = by_name["span:load_dataset"]
        assert load["particles"] == 300
        assert load["duration_seconds"] >= 0
        query = by_name["span:query"]
        # The cost-based planner picks the cheapest engine for this
        # tiny dataset; any exact engine is a valid routing decision.
        assert query["engine"] in ("grid", "tree", "brute", "parallel")
        assert query["level"] == "info"

    def test_default_logging_is_quiet(self, dataset, capsys):
        assert main(["sdh", dataset, "--buckets", "4"]) == 0
        assert capsys.readouterr().err == ""

    def test_log_level_flag_works_after_subcommand(self, dataset, capsys):
        assert main(
            ["sdh", dataset, "--buckets", "4", "--log-level", "info"]
        ) == 0
        err = capsys.readouterr().err
        assert "span:query" in err  # human-formatted, not JSON
        assert not err.lstrip().startswith("{")


class TestVerify:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["verify", "--seeds", "3", "--no-adm"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verify: OK" in out
        assert "fuzz cases: 3" in out

    def test_json_report(self, capsys):
        import json

        code = main(["verify", "--seeds", "2", "--no-adm", "--json"])
        assert code == 0
        body = json.loads(capsys.readouterr().out)
        assert body["ok"] is True
        assert body["cases_run"] == 2
        assert body["discrepancies"] == []

    def test_engine_subset_and_seed_start(self, capsys):
        code = main(
            [
                "verify", "--seeds", "2", "--seed-start", "5",
                "--engines", "brute,grid", "--no-adm", "--json",
            ]
        )
        assert code == 0
        import json

        body = json.loads(capsys.readouterr().out)
        assert body["engines"] == ["brute", "grid"]
        assert body["seeds"] == [5, 6]

    def test_corpus_replay(self, tmp_path, capsys):
        from repro.verify import Corpus, generate_case

        Corpus(tmp_path).save(generate_case(3))
        code = main(
            [
                "verify", "--seeds", "1", "--no-adm",
                "--corpus", str(tmp_path),
            ]
        )
        assert code == 0
        assert "1 case(s) replayed" in capsys.readouterr().out

    def test_mutant_engine_exits_nonzero(self, capsys):
        from repro.core.engines import (
            get_engine,
            register_engine,
            unregister_engine,
        )
        from repro.core.query import compute_sdh

        def mutant_run(particles, request, spec, *, stats=None, rng=None):
            hist = compute_sdh(
                particles, request.replace(engine="grid"), stats=stats
            )
            hist.counts[0] += 1
            return hist

        register_engine(
            "mutant", mutant_run, get_engine("grid").capabilities
        )
        try:
            code = main(
                [
                    "verify", "--seeds", "2", "--no-adm",
                    "--engines", "grid,mutant",
                ]
            )
        finally:
            unregister_engine("mutant")
        assert code == 1
        out = capsys.readouterr().out
        assert "verify: FAILED" in out
        assert "engine_mismatch" in out


class TestPlanCommand:
    @pytest.fixture
    def dataset(self, tmp_path):
        path = tmp_path / "d.npz"
        save_particles(path, uniform(500, dim=2, rng=9))
        return str(path)

    def test_plan_human_output(self, dataset, capsys):
        assert main(["plan", dataset, "--buckets", "8"]) == 0
        out = capsys.readouterr().out
        assert "workload:" in out
        assert "candidates (cheapest first):" in out
        assert "* 1." in out

    def test_plan_json_output(self, dataset, capsys):
        import json

        assert main(["plan", dataset, "--buckets", "8", "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["mode"] == "exact"
        assert body["engine"] in ("brute", "grid", "tree", "parallel")
        assert body["candidates"]

    def test_plan_error_bound_is_adm(self, dataset, capsys):
        import json

        assert main(
            [
                "plan", dataset, "--buckets", "16",
                "--error-bound", "0.05", "--json",
            ]
        ) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["mode"] == "adm"
        assert body["levels"] >= 1
        assert body["predicted_error"] <= 0.05

    def test_plan_infeasible_budget_exits_nonzero(self, dataset, capsys):
        code = main(
            [
                "plan", dataset, "--buckets", "8",
                "--latency-budget-ms", "0.0001",
            ]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().err

    def test_sdh_accepts_budget_and_planner_flags(self, dataset, capsys):
        assert main(
            [
                "sdh", dataset, "--buckets", "8",
                "--latency-budget-ms", "60000",
            ]
        ) == 0
        assert "total pairs" in capsys.readouterr().out
        assert main(
            ["sdh", dataset, "--buckets", "8", "--planner", "off"]
        ) == 0
        assert "total pairs" in capsys.readouterr().out


class TestCalibrateCommand:
    def test_calibrate_writes_json(self, tmp_path, capsys):
        from repro.planner import load_calibration

        out = tmp_path / "cal.json"
        assert main(
            ["calibrate", "--output", str(out), "--scale", "0.05"]
        ) == 0
        assert load_calibration(str(out)).calibrated
        assert str(out) in capsys.readouterr().out

"""Tests for repro.core.error_model (the epsilon = alpha * eps2 model)."""

import numpy as np
import pytest

from repro.core.error_model import (
    PredictedError,
    heuristic_binning_error,
    predict_error,
    survivor_population,
)
from repro.errors import QueryError


class TestSurvivorPopulation:
    def test_shapes_and_normalization(self):
        offsets, weights, p = survivor_population(
            1, 8, dim=2, samples=4, rng=0
        )
        assert offsets.ndim == 2 and offsets.shape[1] == 2
        assert weights.shape == (offsets.shape[0],)
        assert weights.sum() == pytest.approx(1.0)
        assert p == pytest.approx(np.sqrt(2) * 4)  # sqrt(d) * 2^(m+1)

    def test_survivors_straddle_boundaries(self):
        """Every surviving class's [u, v] range must cross a bucket
        edge — that is what 'unresolved' means."""
        offsets, _weights, p = survivor_population(
            1, 8, dim=2, samples=4, rng=0
        )
        gap = np.maximum(np.abs(offsets) - 1, 0).astype(float)
        span = (np.abs(offsets) + 1).astype(float)
        u = np.sqrt((gap**2).sum(axis=1))
        v = np.sqrt((span**2).sum(axis=1))
        assert (np.floor(u / p) != np.floor(v / p)).all()

    def test_population_shrinks_with_m(self):
        """Deeper stop levels leave fewer distinct unresolved classes
        per unit area — and alpha halves (checked elsewhere); here we
        check the mechanics run for several m."""
        for m in (1, 2, 3):
            offsets, weights, _p = survivor_population(
                m, 4, dim=2, samples=2, rng=0
            )
            assert offsets.shape[0] > 0
            assert weights.min() > 0

    def test_validation(self):
        with pytest.raises(QueryError):
            survivor_population(0, 8)
        with pytest.raises(QueryError):
            survivor_population(1, 8, dim=4)


class TestEpsilon2:
    def test_heuristic_ordering(self):
        """The paper's 'ordered in their expected correctness':
        eps2(h1) > eps2(h2) > eps2(h3)."""
        values = {
            h: heuristic_binning_error(
                h, m=1, num_buckets=8, samples=4, mc_samples=1024, rng=0
            )
            for h in (1, 2, 3)
        }
        assert values[1] > values[2] > values[3]

    def test_bounded_by_one(self):
        for h in (1, 2, 3):
            eps2 = heuristic_binning_error(
                h, m=1, num_buckets=8, samples=2, mc_samples=512, rng=0
            )
            assert 0.0 <= eps2 <= 2.0  # |alloc| + |truth| at most


class TestPrediction:
    def test_decomposition(self):
        pe = predict_error(3, m=2, num_buckets=8, samples=4, rng=0)
        assert isinstance(pe, PredictedError)
        assert pe.total == pytest.approx(pe.alpha * pe.epsilon2)
        assert 0 < pe.alpha < 1

    def test_model_much_tighter_than_table_bound(self):
        """The whole point (Sec. VI-C): the realized error is far below
        alpha; the model must capture at least a 3x tightening for the
        good heuristics."""
        for h in (2, 3):
            pe = predict_error(h, m=2, num_buckets=16, samples=4, rng=0)
            assert pe.total < pe.alpha / 3

    def test_prediction_within_order_of_magnitude_of_reality(self):
        """Predicted vs measured on a real dataset: same order."""
        from repro import UniformBuckets, adm_sdh, brute_force_sdh, uniform

        data = uniform(8000, dim=2, rng=77)
        spec = UniformBuckets.with_count(data.max_possible_distance, 16)
        exact = brute_force_sdh(data, spec=spec)
        for h in (2, 3):
            measured = adm_sdh(
                data, spec=spec, levels=2, heuristic=h, rng=0
            ).error_rate(exact)
            predicted = predict_error(
                h, m=2, num_buckets=16, samples=4, rng=0
            ).total
            assert predicted / 10 < max(measured, 1e-5) < max(
                predicted * 10, 1e-4
            ), (h, predicted, measured)

"""Tests for repro.service.executor (the bounded worker pool)."""

import threading
import time

import pytest

from repro.errors import QueryTimeout, ServerOverloaded, ServiceError
from repro.service import QueryExecutor


class TestBasics:
    def test_runs_and_returns(self):
        with QueryExecutor(max_workers=2) as pool:
            assert pool.submit(lambda a, b: a + b, 2, 3) == 5
            assert pool.stats.completed == 1
            assert pool.stats.submitted == 1

    def test_exceptions_propagate_and_count(self):
        def boom():
            raise ValueError("kaboom")

        with QueryExecutor(max_workers=1) as pool:
            with pytest.raises(ValueError, match="kaboom"):
                pool.submit(boom)
            assert pool.stats.failures == 1
            # The failed slot is released; the pool keeps working.
            assert pool.submit(lambda: 7) == 7

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            QueryExecutor(max_workers=0)
        with pytest.raises(ServiceError):
            QueryExecutor(max_workers=1, max_queue=-1)

    def test_shutdown_rejects_new_work(self):
        pool = QueryExecutor(max_workers=1)
        pool.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            pool.submit(lambda: 1)


class TestTimeout:
    def test_slow_call_times_out(self):
        release = threading.Event()
        with QueryExecutor(max_workers=1, default_timeout=0.05) as pool:
            with pytest.raises(QueryTimeout):
                pool.submit(release.wait)
            assert pool.stats.timeouts == 1
            release.set()

    def test_per_call_timeout_overrides_default(self):
        with QueryExecutor(max_workers=1, default_timeout=0.01) as pool:
            result = pool.submit(
                lambda: (time.sleep(0.05), "done")[1], timeout=5.0
            )
            assert result == "done"

    def test_timed_out_work_still_occupies_slot(self):
        """Timeouts bound client latency, not admission: the slot frees
        only when the worker finishes."""
        release = threading.Event()
        pool = QueryExecutor(max_workers=1, max_queue=0, default_timeout=0.05)
        try:
            with pytest.raises(QueryTimeout):
                pool.submit(release.wait)
            # Worker still holds the only slot.
            with pytest.raises(ServerOverloaded):
                pool.submit(lambda: 1)
            release.set()
            deadline = time.time() + 5.0
            while pool.in_flight and time.time() < deadline:
                time.sleep(0.01)
            assert pool.submit(lambda: 2) == 2
        finally:
            release.set()
            pool.shutdown()


class TestBackpressure:
    def test_overload_rejected_not_queued(self):
        gate = threading.Event()
        started = threading.Barrier(3)  # 2 workers + main

        def occupy():
            started.wait()
            gate.wait()

        pool = QueryExecutor(max_workers=2, max_queue=0, default_timeout=None)
        try:
            holders = [
                threading.Thread(target=pool.submit, args=(occupy,))
                for _ in range(2)
            ]
            for t in holders:
                t.start()
            started.wait(timeout=5.0)  # both workers are busy
            with pytest.raises(ServerOverloaded, match="at capacity"):
                pool.submit(lambda: 1)
            assert pool.stats.rejected == 1
            gate.set()
            for t in holders:
                t.join(timeout=5.0)
            assert pool.stats.completed == 2
        finally:
            gate.set()
            pool.shutdown()

    def test_queue_slots_admit_beyond_workers(self):
        gate = threading.Event()
        running = threading.Event()

        pool = QueryExecutor(max_workers=1, max_queue=1, default_timeout=None)
        results = []

        def submit_and_record():
            results.append(pool.submit(lambda: "queued"))

        try:
            holder = threading.Thread(
                target=pool.submit,
                args=(lambda: (running.set(), gate.wait()),),
            )
            holder.start()
            assert running.wait(timeout=5.0)
            # One more fits in the queue...
            waiter = threading.Thread(target=submit_and_record)
            waiter.start()
            deadline = time.time() + 5.0
            while pool.in_flight < 2 and time.time() < deadline:
                time.sleep(0.01)
            # ...but the third is turned away.
            with pytest.raises(ServerOverloaded):
                pool.submit(lambda: 1)
            gate.set()
            holder.join(timeout=5.0)
            waiter.join(timeout=5.0)
            assert results == ["queued"]
        finally:
            gate.set()
            pool.shutdown()

    def test_snapshot_shape(self):
        with QueryExecutor(max_workers=3, max_queue=5) as pool:
            pool.submit(lambda: None)
            body = pool.snapshot()
        assert body["max_workers"] == 3
        assert body["max_queue"] == 5
        assert body["submitted"] == 1
        assert body["in_flight"] == 0

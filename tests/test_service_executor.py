"""Tests for repro.service.executor (the bounded worker pool)."""

import threading
import time

import pytest

from repro.errors import QueryTimeout, ServerOverloaded, ServiceError
from repro.service import QueryExecutor


class TestBasics:
    def test_runs_and_returns(self):
        with QueryExecutor(max_workers=2) as pool:
            assert pool.submit(lambda a, b: a + b, 2, 3) == 5
            assert pool.stats.completed == 1
            assert pool.stats.submitted == 1

    def test_exceptions_propagate_and_count(self):
        def boom():
            raise ValueError("kaboom")

        with QueryExecutor(max_workers=1) as pool:
            with pytest.raises(ValueError, match="kaboom"):
                pool.submit(boom)
            assert pool.stats.failures == 1
            # The failed slot is released; the pool keeps working.
            assert pool.submit(lambda: 7) == 7

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            QueryExecutor(max_workers=0)
        with pytest.raises(ServiceError):
            QueryExecutor(max_workers=1, max_queue=-1)

    def test_shutdown_rejects_new_work(self):
        pool = QueryExecutor(max_workers=1)
        pool.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            pool.submit(lambda: 1)


class TestTimeout:
    def test_slow_call_times_out(self):
        release = threading.Event()
        with QueryExecutor(max_workers=1, default_timeout=0.05) as pool:
            with pytest.raises(QueryTimeout):
                pool.submit(release.wait)
            assert pool.stats.timeouts == 1
            release.set()

    def test_per_call_timeout_overrides_default(self):
        with QueryExecutor(max_workers=1, default_timeout=0.01) as pool:
            result = pool.submit(
                lambda: (time.sleep(0.05), "done")[1], timeout=5.0
            )
            assert result == "done"

    def test_timed_out_work_still_occupies_slot(self):
        """Timeouts bound client latency, not admission: the slot frees
        only when the worker finishes."""
        release = threading.Event()
        pool = QueryExecutor(max_workers=1, max_queue=0, default_timeout=0.05)
        try:
            with pytest.raises(QueryTimeout):
                pool.submit(release.wait)
            # Worker still holds the only slot.
            with pytest.raises(ServerOverloaded):
                pool.submit(lambda: 1)
            release.set()
            deadline = time.time() + 5.0
            while pool.in_flight and time.time() < deadline:
                time.sleep(0.01)
            assert pool.submit(lambda: 2) == 2
        finally:
            release.set()
            pool.shutdown()


class TestBackpressure:
    def test_overload_rejected_not_queued(self):
        gate = threading.Event()
        started = threading.Barrier(3)  # 2 workers + main

        def occupy():
            started.wait()
            gate.wait()

        pool = QueryExecutor(max_workers=2, max_queue=0, default_timeout=None)
        try:
            holders = [
                threading.Thread(target=pool.submit, args=(occupy,))
                for _ in range(2)
            ]
            for t in holders:
                t.start()
            started.wait(timeout=5.0)  # both workers are busy
            with pytest.raises(ServerOverloaded, match="at capacity"):
                pool.submit(lambda: 1)
            assert pool.stats.rejected == 1
            gate.set()
            for t in holders:
                t.join(timeout=5.0)
            assert pool.stats.completed == 2
        finally:
            gate.set()
            pool.shutdown()

    def test_queue_slots_admit_beyond_workers(self):
        gate = threading.Event()
        running = threading.Event()

        pool = QueryExecutor(max_workers=1, max_queue=1, default_timeout=None)
        results = []

        def submit_and_record():
            results.append(pool.submit(lambda: "queued"))

        try:
            holder = threading.Thread(
                target=pool.submit,
                args=(lambda: (running.set(), gate.wait()),),
            )
            holder.start()
            assert running.wait(timeout=5.0)
            # One more fits in the queue...
            waiter = threading.Thread(target=submit_and_record)
            waiter.start()
            deadline = time.time() + 5.0
            while pool.in_flight < 2 and time.time() < deadline:
                time.sleep(0.01)
            # ...but the third is turned away.
            with pytest.raises(ServerOverloaded):
                pool.submit(lambda: 1)
            gate.set()
            holder.join(timeout=5.0)
            waiter.join(timeout=5.0)
            assert results == ["queued"]
        finally:
            gate.set()
            pool.shutdown()

    def test_snapshot_shape(self):
        with QueryExecutor(max_workers=3, max_queue=5) as pool:
            pool.submit(lambda: None)
            body = pool.snapshot()
        assert body["max_workers"] == 3
        assert body["max_queue"] == 5
        assert body["submitted"] == 1
        assert body["in_flight"] == 0


def _permits(pool):
    """Free admission slots (BoundedSemaphore internal counter)."""
    return pool._admission._value


class TestPermitHygiene:
    """Regression tests: a submit that never reaches a worker must hand
    its admission permit back, or capacity shrinks by one per failure."""

    def test_failed_pool_submit_preserves_capacity(self):
        pool = QueryExecutor(max_workers=2, max_queue=1)
        full = _permits(pool)

        def exploding_submit(*args, **kwargs):
            raise RuntimeError("cannot schedule new futures")

        original = pool._pool.submit
        pool._pool.submit = exploding_submit
        try:
            for _ in range(full + 2):  # more failures than permits exist
                with pytest.raises(ServiceError, match="shut down"):
                    pool.submit(lambda: 1)
        finally:
            pool._pool.submit = original
        assert _permits(pool) == full
        assert pool.in_flight == 0
        assert pool.stats.failures == full + 2
        # The pool is still fully usable afterwards.
        assert pool.submit(lambda: 9) == 9
        pool.shutdown()

    def test_non_runtime_submit_failure_propagates_and_releases(self):
        pool = QueryExecutor(max_workers=1, max_queue=0)
        full = _permits(pool)
        pool._pool.submit = lambda *a, **k: (_ for _ in ()).throw(
            MemoryError("no threads")
        )
        with pytest.raises(MemoryError):
            pool.submit(lambda: 1)
        assert _permits(pool) == full
        assert pool.in_flight == 0
        pool.shutdown()

    def test_shutdown_rejection_returns_permit(self):
        pool = QueryExecutor(max_workers=2, max_queue=2)
        full = _permits(pool)
        pool.shutdown()
        for _ in range(full + 3):
            with pytest.raises(ServiceError, match="shut down"):
                pool.submit(lambda: 1)
        assert _permits(pool) == full
        assert pool.in_flight == 0


class TestStatsConsistency:
    """Regression tests: counters and snapshots are read under the
    executor's lock, so concurrent readers never see torn state."""

    def test_snapshot_blocks_on_the_owning_lock(self):
        with QueryExecutor(max_workers=1) as pool:
            result = {}

            def snapshotter():
                result["body"] = pool.snapshot()

            with pool._lock:  # simulate a writer mid-update
                reader = threading.Thread(target=snapshotter)
                reader.start()
                reader.join(timeout=0.2)
                assert reader.is_alive(), (
                    "snapshot() returned while the executor lock was "
                    "held — it is reading counters unsynchronized"
                )
            reader.join(timeout=5.0)
            assert not reader.is_alive()
            assert result["body"]["submitted"] == 0

    def test_counters_balance_under_concurrent_load(self):
        def ok():
            time.sleep(0.001)

        def boom():
            raise ValueError("expected")

        pool = QueryExecutor(max_workers=4, max_queue=64, default_timeout=5.0)
        errors = []

        def client(i):
            try:
                pool.submit(boom if i % 3 == 0 else ok)
            except ValueError:
                pass
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        observed = []
        stop = threading.Event()

        def observer():
            while not stop.is_set():
                body = pool.snapshot()
                observed.append(body)

        watcher = threading.Thread(target=observer)
        watcher.start()
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(60)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
        finally:
            stop.set()
            watcher.join(timeout=5.0)
            pool.shutdown()
        assert errors == []
        # Every concurrent snapshot must be internally consistent.
        for body in observed:
            settled = body["completed"] + body["failures"] + body["timeouts"]
            assert settled <= body["submitted"]
            assert 0 <= body["in_flight"] <= 4 + 64
        final = pool.snapshot()
        assert final["submitted"] == 60
        assert final["completed"] == 40
        assert final["failures"] == 20
        assert final["in_flight"] == 0


class TestAbandonedWork:
    """Regression tests: a future abandoned on timeout must still be
    consumed when it settles — late failures count (no "exception was
    never retrieved" leaks) and late completions move `completed`."""

    def test_late_failure_is_consumed_and_counted(self):
        release = threading.Event()

        def late_boom():
            release.wait(5.0)
            raise ValueError("raised after the caller left")

        pool = QueryExecutor(max_workers=1, default_timeout=0.05)
        try:
            with pytest.raises(QueryTimeout):
                pool.submit(late_boom)
            assert pool.stats.timeouts == 1
            assert pool.stats.failures == 0  # not settled yet
            release.set()
            deadline = time.time() + 5.0
            while pool.stats.late_failures == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert pool.stats.failures == 1
            assert pool.stats.late_failures == 1
            assert pool.stats.completed == 0
        finally:
            release.set()
            pool.shutdown()

    def test_late_completion_is_counted(self):
        release = threading.Event()

        def late_ok():
            release.wait(5.0)
            return "too late"

        pool = QueryExecutor(max_workers=1, default_timeout=0.05)
        try:
            with pytest.raises(QueryTimeout):
                pool.submit(late_ok)
            release.set()
            deadline = time.time() + 5.0
            while (
                pool.stats.late_completions == 0 and time.time() < deadline
            ):
                time.sleep(0.01)
            assert pool.stats.completed == 1
            assert pool.stats.late_completions == 1
            assert pool.stats.failures == 0
            body = pool.snapshot()
            assert body["late_completions"] == 1
            assert body["late_failures"] == 0
        finally:
            release.set()
            pool.shutdown()

    def test_in_time_work_never_counts_late(self):
        with QueryExecutor(max_workers=1, default_timeout=5.0) as pool:
            assert pool.submit(lambda: 3) == 3
            with pytest.raises(ValueError):
                pool.submit(lambda: (_ for _ in ()).throw(ValueError("x")))
            assert pool.stats.late_completions == 0
            assert pool.stats.late_failures == 0

"""End-to-end integration tests: full pipelines across subsystems."""

import numpy as np
import pytest

from repro import (
    SDHQuery,
    SDHStats,
    UniformBuckets,
    adm_sdh,
    brute_force_sdh,
    compute_sdh,
    dm_sdh_exponent,
    synthetic_bilayer,
    uniform,
)
from repro.bench import fit_loglog_slope
from repro.data import random_walk_trajectory
from repro.incremental import IncrementalSDH
from repro.physics import rdf_from_histogram


class TestMembranePipeline:
    """The paper's motivating scenario: a membrane simulation analysed
    via SDH -> RDF, exactly and approximately."""

    def test_full_pipeline(self):
        system = synthetic_bilayer(3000, dim=3, rng=42)
        spec = UniformBuckets.with_count(
            system.max_possible_distance, 50
        )
        exact = compute_sdh(system, spec=spec)
        assert exact.total == system.num_pairs

        approx = adm_sdh(system, spec=spec, levels=2, heuristic=3, rng=0)
        # At this N the 3D tree is short (the paper's small-N regime),
        # so nearly all mass is heuristic-allocated; accuracy is looser
        # than the deep-tree benchmarks but must stay under ~10%.
        assert approx.error_rate(exact) < 0.10

        rdf_exact = rdf_from_histogram(exact, system)
        rdf_approx = rdf_from_histogram(approx, system)
        r_max = 0.7 * system.max_possible_distance
        # The first couple of bins hold almost no ideal-gas mass, so
        # their g values amplify any approximation error enormously;
        # the physically meaningful range must agree closely.
        np.testing.assert_allclose(
            rdf_approx.truncated(r_max).g[3:],
            rdf_exact.truncated(r_max).g[3:],
            atol=0.3,
        )

    def test_type_restricted_analysis(self):
        system = synthetic_bilayer(1200, dim=3, rng=43)
        spec = UniformBuckets.with_count(
            system.max_possible_distance, 12
        )
        water_water = compute_sdh(system, spec=spec, type_filter="water")
        n_water = system.type_count("water")
        assert water_water.total == n_water * (n_water - 1) / 2

        head_tail = compute_sdh(
            system, spec=spec, type_pair=("head", "tail")
        )
        assert head_tail.total == system.type_count(
            "head"
        ) * system.type_count("tail")


class TestOperationScaling:
    """Machine-independent check of Theorem 3: total operations grow
    like N^{(2d-1)/d}, far below the baseline's N^2."""

    def test_2d_operation_count_subquadratic(self):
        ns = [2000, 4000, 8000, 16000]
        ops = []
        for n in ns:
            data = uniform(n, dim=2, rng=1000 + n)
            spec = UniformBuckets.with_count(
                data.max_possible_distance, 4
            )
            stats = SDHStats()
            compute_sdh(data, spec=spec, engine="grid", stats=stats)
            ops.append(stats.total_operations)
        slope = fit_loglog_slope(np.asarray(ns, float), np.asarray(ops, float))
        assert slope < 1.85
        assert slope > 1.0
        # The theoretical exponent for comparison.
        assert dm_sdh_exponent(2) == 1.5

    def test_brute_force_is_quadratic_in_operations(self):
        ns = [500, 1000, 2000]
        ops = []
        for n in ns:
            data = uniform(n, dim=2, rng=2000 + n)
            stats = SDHStats()
            brute_force_sdh(data, bucket_width=0.2, stats=stats)
            ops.append(stats.distance_computations)
        slope = fit_loglog_slope(np.asarray(ns, float), np.asarray(ops, float))
        assert slope == pytest.approx(2.0, abs=0.02)


class TestDatabaseScenario:
    """Index once, answer many queries (the SDHQuery plan)."""

    def test_multiple_queries_one_index(self):
        data = uniform(2500, dim=2, rng=77)
        plan = SDHQuery(data)
        reference_spec = UniformBuckets.with_count(
            data.max_possible_distance, 8
        )
        exact = plan.histogram(spec=reference_spec)
        assert exact.total == data.num_pairs

        coarse = plan.histogram(num_buckets=2)
        assert coarse.total == data.num_pairs

        approx = plan.histogram(
            spec=reference_spec, error_bound=0.1, rng=0
        )
        assert approx.error_rate(exact) < 0.1

    def test_trajectory_scenario(self):
        """Frames arrive over time; the incremental maintainer tracks
        the exact histogram of each."""
        initial = uniform(200, dim=2, rng=88)
        spec = UniformBuckets.with_count(
            initial.max_possible_distance, 6
        )
        traj = random_walk_trajectory(
            initial, 5, move_fraction=0.05, rng=88
        )
        inc = IncrementalSDH(spec, traj[0])
        for frame in traj.frames[1:]:
            inc.advance(frame)
        final = brute_force_sdh(traj.frames[-1], spec=spec)
        np.testing.assert_allclose(
            inc.histogram.counts, final.counts, atol=1e-9
        )

"""Tests for repro.observability (metrics, tracing, structured logs)."""

import io
import json
import logging
import threading

import pytest

from repro.core.instrumentation import SDHStats, publish_stats
from repro.observability import (
    MetricSample,
    MetricsRegistry,
    bind_trace_id,
    configure_logging,
    current_trace_id,
    get_logger,
    get_registry,
    log_event,
    new_trace_id,
    trace_span,
)


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        counter = reg.counter("jobs_total", "Jobs.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("jobs_total")
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        counter = reg.counter("queries_total", "Q.", ("engine",))
        counter.labels(engine="grid").inc(3)
        counter.labels(engine="tree").inc(1)
        assert counter.labels(engine="grid").value == 3
        assert counter.labels(engine="tree").value == 1

    def test_wrong_label_set_rejected(self):
        counter = MetricsRegistry().counter("q_total", "", ("engine",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(phase="x")
        with pytest.raises(ValueError, match="call .labels"):
            counter.inc()


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("live", "Live things.")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 3.0


class TestHistograms:
    def test_cumulative_buckets_sum_count(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(100.0)
        text = reg.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 100.55" in text

    def test_snapshot_stores_per_interval_counts(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["buckets"][1.0] == 1
        assert snap["buckets"][2.0] == 1

    def test_bad_bucket_specs_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            reg.histogram("empty", buckets=())
        with pytest.raises(ValueError, match="distinct"):
            reg.histogram("dupes", buckets=(1.0, 1.0))


class TestRegistry:
    def test_redeclaration_returns_same_instrument(self):
        reg = MetricsRegistry()
        first = reg.counter("n_total", "Help.")
        assert reg.counter("n_total") is first

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("n_total")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "", ("engine",))
        with pytest.raises(ValueError, match="already registered with labels"):
            reg.counter("n_total", "", ("phase",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok_total", "", ("bad-label",))

    def test_render_has_help_type_and_escaping(self):
        reg = MetricsRegistry()
        counter = reg.counter("req_total", "Requests served.", ("path",))
        counter.labels(path='a"b\\c\nd').inc()
        text = reg.render()
        assert "# HELP req_total Requests served." in text
        assert "# TYPE req_total counter" in text
        assert r'req_total{path="a\"b\\c\nd"} 1' in text

    def test_collectors_fold_into_render(self):
        reg = MetricsRegistry()

        def collect():
            return [
                MetricSample(
                    "ext_total", "counter", "External.", [(None, 7.0)]
                ),
                MetricSample(
                    "ext_live", "gauge", "",
                    [({"kind": "a"}, 1.0), ({"kind": "b"}, 2.0)],
                ),
            ]

        reg.add_collector(collect)
        text = reg.render()
        assert "ext_total 7" in text
        assert 'ext_live{kind="a"} 1' in text
        assert 'ext_live{kind="b"} 2' in text
        reg.remove_collector(collect)
        reg.remove_collector(collect)  # idempotent
        assert "ext_total" not in reg.render()

    def test_collector_samples_must_be_counter_or_gauge(self):
        with pytest.raises(ValueError, match="counter/gauge"):
            MetricSample("h", "histogram", "", [(None, 1.0)])

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "", ("k",)).labels(k="x").inc(2)
        reg.gauge("b").set(4)
        body = reg.snapshot()
        assert body["a_total"]["k=x"] == 2
        assert body["b"][""] == 4

    def test_concurrent_increments_are_not_lost(self):
        reg = MetricsRegistry()
        counter = reg.counter("n_total")
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(500):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * 500

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestTracing:
    def test_span_records_phase_histogram(self):
        reg = MetricsRegistry()
        with trace_span("unit_phase", registry=reg) as span:
            pass
        assert span.duration > 0
        hist = reg.get("sdh_phase_seconds")
        assert hist.labels(phase="unit_phase").snapshot()["count"] == 1

    def test_span_error_is_recorded_and_reraised(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            with trace_span("bad_phase", registry=reg) as span:
                raise KeyError("nope")
        assert span.error == "KeyError"
        assert reg.get("sdh_phase_seconds").labels(
            phase="bad_phase"
        ).snapshot()["count"] == 1

    def test_annotate_extends_completion_fields(self):
        reg = MetricsRegistry()
        with trace_span("p", registry=reg, engine="grid") as span:
            span.annotate(particles=10)
        assert span.fields == {"engine": "grid", "particles": 10}

    def test_trace_id_binding_nests_and_restores(self):
        assert current_trace_id() is None
        with bind_trace_id("outer") as outer:
            assert outer == "outer"
            assert current_trace_id() == "outer"
            with bind_trace_id() as inner:
                assert current_trace_id() == inner != "outer"
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_new_trace_id_format(self):
        tid = new_trace_id()
        assert len(tid) == 16
        int(tid, 16)  # hex
        assert tid != new_trace_id()


class TestStructuredLogging:
    def teardown_method(self):
        # Leave the suite with library logging quiet again.
        configure_logging("warning")

    def test_json_lines_carry_fields_and_trace_id(self):
        stream = io.StringIO()
        configure_logging("info", json_output=True, stream=stream)
        with bind_trace_id("feedface00000000"):
            log_event(
                get_logger("test"), logging.INFO, "unit_event",
                engine="grid", n=3,
            )
        body = json.loads(stream.getvalue().strip())
        assert body["event"] == "unit_event"
        assert body["logger"] == "repro.test"
        assert body["level"] == "info"
        assert body["trace_id"] == "feedface00000000"
        assert body["engine"] == "grid"
        assert body["n"] == 3

    def test_span_emits_json_event(self):
        stream = io.StringIO()
        configure_logging("info", json_output=True, stream=stream)
        with trace_span("emit_phase", registry=MetricsRegistry()):
            pass
        body = json.loads(stream.getvalue().strip())
        assert body["event"] == "span:emit_phase"
        assert body["phase"] == "emit_phase"
        assert body["duration_seconds"] >= 0

    def test_human_format_has_key_value_pairs(self):
        stream = io.StringIO()
        configure_logging("info", json_output=False, stream=stream)
        log_event(get_logger(), logging.INFO, "plain_event", n=2)
        line = stream.getvalue()
        assert "plain_event" in line
        assert "n=2" in line

    def test_reconfigure_replaces_handler(self):
        configure_logging("info", stream=io.StringIO())
        root = configure_logging("debug", stream=io.StringIO())
        installed = [
            h for h in root.handlers
            if getattr(h, "_repro_installed", False)
        ]
        assert len(installed) == 1
        assert root.level == logging.DEBUG
        assert root.propagate is False

    def test_level_threshold_filters(self):
        stream = io.StringIO()
        configure_logging("warning", json_output=True, stream=stream)
        log_event(get_logger(), logging.INFO, "quiet")
        assert stream.getvalue() == ""

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")

    def test_non_json_values_are_stringified(self):
        stream = io.StringIO()
        configure_logging("info", json_output=True, stream=stream)
        log_event(
            get_logger(), logging.INFO, "odd",
            shape=(2, 3), mapping={"k": object()},
        )
        body = json.loads(stream.getvalue().strip())
        assert body["shape"] == [2, 3]
        assert isinstance(body["mapping"]["k"], str)


class TestPublishStats:
    def test_per_level_counters(self):
        stats = SDHStats()
        stats.record_batch(level=2, examined=10, resolved=6,
                           resolved_distances=100.0)
        stats.record_batch(level=3, examined=8, resolved=4,
                           resolved_distances=50.0)
        stats.distance_computations = 42
        reg = MetricsRegistry()
        publish_stats(stats, "grid", registry=reg)
        queries = reg.get("sdh_queries_total")
        assert queries.labels(engine="grid").value == 1
        resolve = reg.get("sdh_resolve_calls_total")
        assert resolve.labels(engine="grid", level=2).value == 10
        assert resolve.labels(engine="grid", level=3).value == 8
        resolved = reg.get("sdh_resolved_pairs_total")
        assert resolved.labels(engine="grid", level=2).value == 6
        dist = reg.get("sdh_distance_computations_total")
        assert dist.labels(engine="grid").value == 42

    def test_compute_sdh_publishes_to_default_registry(self):
        from repro import compute_sdh, uniform

        data = uniform(120, dim=2, rng=7)
        before = get_registry().get("sdh_queries_total")
        before_val = (
            before.labels(engine="grid").value if before is not None else 0
        )
        compute_sdh(data, num_buckets=4, engine="grid")
        after = get_registry().get("sdh_queries_total")
        assert after.labels(engine="grid").value == before_val + 1

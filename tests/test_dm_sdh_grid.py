"""Tests for repro.core.dm_sdh_grid internals and edge cases."""

import numpy as np
import pytest

from repro.core import (
    GridSDHEngine,
    OverflowPolicy,
    SDHStats,
    UniformBuckets,
    brute_force_sdh,
    dm_sdh_grid,
    make_allocator,
)
from repro.core.dm_sdh_grid import _expand_products
from repro.data import uniform
from repro.errors import DistanceOverflowError, QueryError
from repro.quadtree import GridPyramid


class TestExpandProducts:
    """The ragged CSR cross-product expansion (leaf distance kernel)."""

    @staticmethod
    def _collect(*args, **kwargs):
        pairs = []
        for g1, g2 in _expand_products(*args, **kwargs):
            pairs.extend(zip(g1.tolist(), g2.tolist()))
        return pairs

    def test_basic(self):
        pairs = set(
            self._collect(
                np.array([0, 5]),
                np.array([2, 1]),
                np.array([10, 20]),
                np.array([2, 3]),
                chunk=100,
            )
        )
        assert pairs == {
            (0, 10), (0, 11), (1, 10), (1, 11),
            (5, 20), (5, 21), (5, 22),
        }

    def test_chunking_preserves_pairs(self):
        args = (
            np.array([0, 3, 9]),
            np.array([3, 2, 4]),
            np.array([100, 200, 300]),
            np.array([2, 5, 3]),
        )
        big = self._collect(*args, chunk=1000)
        small = self._collect(*args, chunk=4)
        assert set(big) == set(small)
        assert len(big) == len(small) == (3 * 2 + 2 * 5 + 4 * 3)

    def test_zero_count_pairs_skipped(self):
        pairs = self._collect(
            np.array([0, 4, 9]),
            np.array([2, 0, 1]),
            np.array([10, 20, 30]),
            np.array([1, 5, 2]),
            chunk=3,
        )
        assert set(pairs) == {(0, 10), (1, 10), (9, 30), (9, 31)}

    def test_empty(self):
        empty = np.array([], dtype=np.int64)
        assert self._collect(empty, empty, empty, empty, chunk=10) == []


class TestChunkInvariance:
    """Results must not depend on internal batching sizes."""

    def test_pair_chunk(self):
        data = uniform(400, dim=2, rng=61)
        spec = UniformBuckets.with_count(data.max_possible_distance, 8)
        pyramid = GridPyramid(data)
        baseline = dm_sdh_grid(pyramid, spec=spec)
        tiny = GridSDHEngine(
            pyramid, spec=spec, pair_chunk=17, distance_chunk=13
        ).run()
        np.testing.assert_array_equal(baseline.counts, tiny.counts)

    def test_stats_invariant_under_chunking(self):
        data = uniform(300, dim=2, rng=62)
        spec = UniformBuckets.with_count(data.max_possible_distance, 4)
        pyramid = GridPyramid(data)
        s1, s2 = SDHStats(), SDHStats()
        GridSDHEngine(pyramid, spec=spec, stats=s1).run()
        GridSDHEngine(
            pyramid, spec=spec, stats=s2, pair_chunk=19, distance_chunk=11
        ).run()
        assert s1.resolve_calls == s2.resolve_calls
        assert s1.resolved_pairs == s2.resolved_pairs
        assert s1.distance_computations == s2.distance_computations


class TestPolicies:
    def test_overflow_raises_for_short_spec(self):
        data = uniform(100, dim=2, rng=63)
        short = UniformBuckets(
            data.max_possible_distance / 8, 2
        )  # covers a quarter of the diagonal
        with pytest.raises(DistanceOverflowError):
            dm_sdh_grid(data, spec=short)

    def test_clamp_matches_brute_force(self):
        data = uniform(200, dim=2, rng=64)
        short = UniformBuckets(data.max_possible_distance / 6, 3)
        got = dm_sdh_grid(data, spec=short, policy=OverflowPolicy.CLAMP)
        expected = brute_force_sdh(
            data, spec=short, policy=OverflowPolicy.CLAMP
        )
        np.testing.assert_array_equal(expected.counts, got.counts)
        assert got.total == data.num_pairs

    def test_drop_matches_brute_force(self):
        data = uniform(200, dim=2, rng=65)
        short = UniformBuckets(data.max_possible_distance / 6, 3)
        got = dm_sdh_grid(data, spec=short, policy=OverflowPolicy.DROP)
        expected = brute_force_sdh(
            data, spec=short, policy=OverflowPolicy.DROP
        )
        np.testing.assert_array_equal(expected.counts, got.counts)
        assert got.total < data.num_pairs


class TestNonzeroR0:
    def test_custom_low_edge_matches_brute_force(self):
        """r0 > 0 queries drop short distances, per the problem
        statement's generalization."""
        from repro.core import CustomBuckets

        data = uniform(250, dim=2, rng=66)
        diag = data.max_possible_distance
        spec = CustomBuckets(
            [0.2 * diag, 0.4 * diag, 0.7 * diag, diag]
        )
        got = dm_sdh_grid(data, spec=spec)
        expected = brute_force_sdh(data, spec=spec)
        np.testing.assert_array_equal(expected.counts, got.counts)

    def test_nonuniform_buckets_match(self):
        from repro.core import CustomBuckets

        data = uniform(250, dim=2, rng=67)
        diag = data.max_possible_distance
        spec = CustomBuckets(
            [0.0, 0.05 * diag, 0.3 * diag, 0.35 * diag, diag]
        )
        got = dm_sdh_grid(data, spec=spec)
        expected = brute_force_sdh(data, spec=spec)
        np.testing.assert_array_equal(expected.counts, got.counts)
        assert got.total == data.num_pairs


class TestApproximateModeGuards:
    def test_stop_without_allocator_rejected(self):
        data = uniform(100, rng=0)
        pyramid = GridPyramid(data)
        spec = UniformBuckets.with_count(data.max_possible_distance, 4)
        with pytest.raises(QueryError):
            GridSDHEngine(pyramid, spec=spec, stop_after_levels=2)

    def test_allocator_without_stop_rejected(self):
        data = uniform(100, rng=0)
        pyramid = GridPyramid(data)
        spec = UniformBuckets.with_count(data.max_possible_distance, 4)
        with pytest.raises(QueryError):
            GridSDHEngine(pyramid, spec=spec, allocator=make_allocator(3))

    def test_negative_stop_rejected(self):
        data = uniform(100, rng=0)
        pyramid = GridPyramid(data)
        spec = UniformBuckets.with_count(data.max_possible_distance, 4)
        with pytest.raises(QueryError):
            GridSDHEngine(
                pyramid,
                spec=spec,
                stop_after_levels=-1,
                allocator=make_allocator(3),
            )


class TestStats:
    def test_mass_accounting(self):
        """Resolved + computed + approximated == all pairs."""
        data = uniform(500, dim=2, rng=68)
        spec = UniformBuckets.with_count(data.max_possible_distance, 8)
        stats = SDHStats()
        h = dm_sdh_grid(data, spec=spec, stats=stats)
        resolved = sum(stats.resolved_distances.values())
        intra = h.counts[0]  # includes the bucket-0 shortcut mass
        # resolved + computed covers everything outside the intra-cell
        # shortcut; total is conserved regardless.
        assert h.total == data.num_pairs
        assert resolved + stats.distance_computations <= data.num_pairs
        assert resolved + stats.distance_computations >= (
            data.num_pairs - intra
        )

    def test_levels_visited(self):
        data = uniform(1000, dim=2, rng=69)
        spec = UniformBuckets.with_count(data.max_possible_distance, 2)
        stats = SDHStats()
        dm_sdh_grid(data, spec=spec, stats=stats)
        pyramid_height = GridPyramid(data).height
        assert stats.start_level is not None
        assert (
            stats.levels_visited
            == pyramid_height - stats.start_level
        )

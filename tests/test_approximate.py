"""Tests for repro.core.approximate (ADM-SDH, paper Sec. V)."""

import numpy as np
import pytest

from repro.core import (
    SDHStats,
    UniformBuckets,
    adm_sdh,
    brute_force_sdh,
    choose_levels_for_error,
    non_covering_factor,
)
from repro.data import uniform, zipf_clustered
from repro.errors import QueryError
from repro.quadtree import GridPyramid


@pytest.fixture(scope="module")
def workload():
    data = uniform(3000, dim=2, rng=71)
    spec = UniformBuckets.with_count(data.max_possible_distance, 16)
    exact = brute_force_sdh(data, spec=spec)
    pyramid = GridPyramid(data)
    return data, spec, exact, pyramid


class TestMassAndShape:
    @pytest.mark.parametrize("heuristic", [1, 2, 3, 4])
    def test_total_preserved(self, workload, heuristic):
        data, spec, _exact, pyramid = workload
        h = adm_sdh(
            pyramid, spec=spec, levels=1, heuristic=heuristic, rng=0
        )
        assert h.total == pytest.approx(data.num_pairs)

    def test_counts_nonnegative(self, workload):
        _data, spec, _exact, pyramid = workload
        h = adm_sdh(pyramid, spec=spec, levels=1, heuristic=3, rng=0)
        assert (h.counts >= -1e-9).all()

    def test_no_distances_computed(self, workload):
        """ADM-SDH 'totally skips all distance calculations'."""
        _data, spec, _exact, pyramid = workload
        stats = SDHStats()
        adm_sdh(pyramid, spec=spec, levels=2, heuristic=3, stats=stats)
        assert stats.distance_computations == 0
        assert stats.approximated_distances > 0


class TestErrorBehaviour:
    def test_error_small_for_proportional(self, workload):
        """The paper observes errors below ~3% even for m = 1."""
        _data, spec, exact, pyramid = workload
        h = adm_sdh(pyramid, spec=spec, levels=1, heuristic=3, rng=0)
        assert h.error_rate(exact) < 0.03

    def test_heuristic_ordering(self, workload):
        """Sec. V: heuristics are 'ordered in their expected
        correctness' — h1 is clearly worse than h2/h3."""
        _data, spec, exact, pyramid = workload
        errors = {
            heuristic: adm_sdh(
                pyramid, spec=spec, levels=1, heuristic=heuristic, rng=0
            ).error_rate(exact)
            for heuristic in (1, 2, 3)
        }
        assert errors[1] > errors[2]
        assert errors[1] > errors[3]

    def test_error_decreases_with_levels(self):
        """More levels -> fewer unresolved pairs -> (weakly) less error.

        Uses a large dataset so several levels genuinely exist, and
        heuristic 1 so the trend is not drowned in heuristic accuracy.
        """
        data = uniform(6000, dim=2, rng=72)
        spec = UniformBuckets.with_count(data.max_possible_distance, 4)
        exact = brute_force_sdh(data, spec=spec)
        pyramid = GridPyramid(data)
        stats_by_m = {}
        for m in (0, 1, 2):
            stats = SDHStats()
            adm_sdh(
                pyramid, spec=spec, levels=m, heuristic=1, stats=stats,
                rng=0,
            )
            stats_by_m[m] = stats.approximated_distances
        # The unresolved mass handed to the heuristic must shrink.
        assert stats_by_m[1] < stats_by_m[0]
        assert stats_by_m[2] < stats_by_m[1]

    def test_deeper_than_tree_equals_exact_resolution_mass(self, workload):
        """With m beyond the tree height, only leaf-level unresolved
        pairs remain for the heuristic (the paper's small-N regime)."""
        _data, spec, exact, pyramid = workload
        h_deep = adm_sdh(
            pyramid, spec=spec, levels=50, heuristic=3, rng=0
        )
        h_deeper = adm_sdh(
            pyramid, spec=spec, levels=90, heuristic=3, rng=0
        )
        np.testing.assert_allclose(h_deep.counts, h_deeper.counts)


class TestErrorBoundInterface:
    def test_error_bound_selects_levels(self, workload):
        data, spec, exact, pyramid = workload
        stats = SDHStats()
        h = adm_sdh(
            pyramid, spec=spec, error_bound=0.03, heuristic=3,
            stats=stats, rng=0,
        )
        # The conservative guarantee: unresolved mass below epsilon
        # is only promised when the tree is deep enough; the realized
        # *error* must be far smaller anyway.
        assert h.error_rate(exact) < 0.03

    def test_choose_levels_consults_table(self):
        """The paper's example: l = 128, eps = 3% -> m = 5."""
        assert choose_levels_for_error(0.03, num_buckets=128) == 5

    def test_choose_levels_monotone(self):
        previous = 0
        for eps in (0.4, 0.2, 0.1, 0.05, 0.02, 0.01):
            m = choose_levels_for_error(eps, num_buckets=64)
            assert m >= previous
            assert non_covering_factor(m, 64) <= eps
            previous = m

    def test_levels_and_bound_exclusive(self, workload):
        _data, spec, _exact, pyramid = workload
        with pytest.raises(QueryError):
            adm_sdh(pyramid, spec=spec, levels=2, error_bound=0.1)
        with pytest.raises(QueryError):
            adm_sdh(pyramid, spec=spec)

    def test_bad_bound_rejected(self, workload):
        _data, spec, _exact, pyramid = workload
        with pytest.raises(QueryError):
            adm_sdh(pyramid, spec=spec, error_bound=1.5)


class TestBudgetMode:
    """The anytime knob: op_budget -> deepest affordable m (Eq. 3)."""

    def test_choose_levels_for_budget_inverts_eq3(self):
        from repro.core.analysis import (
            choose_levels_for_budget,
            geometric_progression_cost,
        )

        for start_pairs in (100.0, 5000.0):
            for budget in (1e4, 1e6, 1e8):
                m = choose_levels_for_budget(start_pairs, budget, dim=2)
                cost = geometric_progression_cost(start_pairs, m, 2)
                assert cost <= budget
                over = geometric_progression_cost(start_pairs, m + 1, 2)
                assert over > budget or m == 64

    def test_budget_controls_depth(self, workload):
        _data, spec, _exact, pyramid = workload
        from repro.core import SDHStats

        visited = []
        for budget in (1e3, 1e6, 1e9):
            stats = SDHStats()
            adm_sdh(
                pyramid, spec=spec, op_budget=budget, heuristic=3,
                stats=stats, rng=0,
            )
            visited.append(stats.levels_visited)
        assert visited == sorted(visited)

    def test_budget_respected_within_model_slack(self, workload):
        """Actual resolve calls stay within ~2x of the requested
        budget (the model is an expectation, not a hard cap)."""
        data, spec, _exact, pyramid = workload
        from repro.core import SDHStats

        stats = SDHStats()
        adm_sdh(
            pyramid, spec=spec, op_budget=5e5, heuristic=3,
            stats=stats, rng=0,
        )
        assert stats.total_resolve_calls < 2 * 5e5

    def test_budget_mass_conserved(self, workload):
        data, spec, _exact, pyramid = workload
        h = adm_sdh(
            pyramid, spec=spec, op_budget=1e4, heuristic=2, rng=0
        )
        assert h.total == pytest.approx(data.num_pairs)

    def test_exactly_one_mode(self, workload):
        _data, spec, _exact, pyramid = workload
        with pytest.raises(QueryError):
            adm_sdh(pyramid, spec=spec, levels=1, op_budget=1e5)
        from repro.core.analysis import choose_levels_for_budget

        with pytest.raises(QueryError):
            choose_levels_for_budget(100.0, 0.0)


class TestSkewedData:
    def test_zipf_accuracy(self):
        data = zipf_clustered(2500, dim=2, rng=73)
        spec = UniformBuckets.with_count(data.max_possible_distance, 8)
        exact = brute_force_sdh(data, spec=spec)
        h = adm_sdh(data, spec=spec, levels=2, heuristic=3, rng=0)
        assert h.total == pytest.approx(data.num_pairs)
        assert h.error_rate(exact) < 0.05

    def test_3d(self):
        data = uniform(1500, dim=3, rng=74)
        spec = UniformBuckets.with_count(data.max_possible_distance, 8)
        exact = brute_force_sdh(data, spec=spec)
        h = adm_sdh(data, spec=spec, levels=1, heuristic=3, rng=0)
        assert h.total == pytest.approx(data.num_pairs)
        # The tree is short at this N (the paper's small-N regime), so
        # the heuristic handles almost all mass; accuracy is looser.
        assert h.error_rate(exact) < 0.08

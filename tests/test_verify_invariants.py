"""Tests for the metamorphic invariant layer (repro.verify.invariants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.request import SDHRequest
from repro.data.generators import uniform, zipf_clustered
from repro.data.particles import ParticleSet
from repro.verify import ALL_INVARIANTS, run_invariants, snap_dyadic
from repro.verify.invariants import DYADIC_BITS


class TestSnapDyadic:
    def test_coordinates_land_on_grid(self, small_uniform_2d):
        snapped = snap_dyadic(small_uniform_2d)
        scale = float(1 << DYADIC_BITS)
        scaled = snapped.positions * scale
        assert np.array_equal(scaled, np.round(scaled))

    def test_idempotent(self, small_uniform_2d):
        once = snap_dyadic(small_uniform_2d)
        twice = snap_dyadic(once)
        assert np.array_equal(once.positions, twice.positions)

    def test_box_covers_and_is_cubical(self, small_zipf_2d):
        snapped = snap_dyadic(small_zipf_2d)
        sides = np.asarray(snapped.box.sides)
        assert np.allclose(sides, sides[0])
        inside = snapped.box.contains_points(
            snapped.positions, closed=True
        )
        assert bool(inside.all())

    def test_types_preserved(self, small_uniform_2d):
        typed = small_uniform_2d.with_types(
            np.arange(small_uniform_2d.size, dtype=np.int32) % 3,
            {0: "C", 1: "O", 2: "H"},
        )
        snapped = snap_dyadic(typed)
        assert np.array_equal(snapped.types, typed.types)
        assert snapped.type_names == typed.type_names


class TestInvariantsHold:
    @pytest.mark.parametrize("name", sorted(ALL_INVARIANTS))
    def test_uniform_2d(self, name, small_uniform_2d, rng):
        check = ALL_INVARIANTS[name]
        particles = snap_dyadic(small_uniform_2d)
        request = SDHRequest(num_buckets=8).normalize()
        request = request.replace(
            spec=request.resolved_spec(particles),
            bucket_width=None,
            num_buckets=None,
        )
        assert check(particles, request, rng) == []

    def test_all_pass_on_3d_clustered(self):
        data = zipf_clustered(250, dim=3, rng=11)
        assert run_invariants(data, SDHRequest(num_buckets=5), rng=1) == []

    def test_all_pass_under_periodic(self):
        data = uniform(150, dim=2, rng=3)
        found = run_invariants(
            data, SDHRequest(num_buckets=6, periodic=True), rng=2
        )
        assert found == []

    def test_single_particle(self):
        data = ParticleSet(np.array([[0.25, 0.75]]))
        assert run_invariants(data, SDHRequest(num_buckets=3), rng=0) == []

    def test_coincident_pair(self):
        data = ParticleSet(np.array([[0.5, 0.5], [0.5, 0.5]]))
        assert run_invariants(data, SDHRequest(num_buckets=3), rng=0) == []


class TestInvariantScope:
    def test_restricted_requests_rejected(self, small_uniform_2d):
        with pytest.raises(ValueError, match="plain exact"):
            run_invariants(
                small_uniform_2d,
                SDHRequest(num_buckets=4, type_filter=0),
            )

    def test_approximate_requests_rejected(self, small_uniform_2d):
        with pytest.raises(ValueError, match="plain exact"):
            run_invariants(
                small_uniform_2d,
                SDHRequest(num_buckets=4, levels=1),
            )

    def test_refinement_skips_custom_edges(self, small_uniform_2d, rng):
        from repro.core.buckets import CustomBuckets
        from repro.verify.invariants import check_refinement

        edges = CustomBuckets([0.0, 0.3, 1.0, 2.0])
        request = SDHRequest(spec=edges).normalize()
        assert check_refinement(
            snap_dyadic(small_uniform_2d), request, rng
        ) == []


class TestViolationsCaught:
    def test_failing_check_becomes_discrepancy(self, small_uniform_2d):
        def broken(particles, request, rng):
            return ["planted violation"]

        found = run_invariants(
            small_uniform_2d,
            SDHRequest(num_buckets=4),
            invariants={"broken": broken},
            case="planted",
            seed=42,
        )
        assert len(found) == 1
        assert found[0].kind == "invariant"
        assert "broken: planted violation" in found[0].detail
        assert found[0].seed == 42

    def test_additivity_catches_perturbed_merge(
        self, small_uniform_2d, monkeypatch
    ):
        # The mutation smoke-check: nudge one bucket inside merge and
        # the additivity invariant must light up.
        from repro.core.histogram import DistanceHistogram
        from repro.verify.invariants import check_additivity

        real_merge = DistanceHistogram.merge

        def perturbed(self, other):
            merged = real_merge(self, other)
            merged.counts[0] += 1
            return merged

        particles = snap_dyadic(small_uniform_2d)
        request = SDHRequest(num_buckets=8).normalize()
        rng = np.random.default_rng(0)
        assert check_additivity(particles, request, rng) == []
        monkeypatch.setattr(DistanceHistogram, "merge", perturbed)
        problems = check_additivity(
            particles, request, np.random.default_rng(0)
        )
        assert problems and "additivity" in problems[0]

"""Tests for repro.data.io (persistence round-trips)."""

import numpy as np
import pytest

from repro.data import (
    ParticleSet,
    load_particles,
    load_trajectory,
    load_xyz,
    random_types,
    random_walk_trajectory,
    save_particles,
    save_trajectory,
    save_xyz,
    uniform,
)
from repro.errors import DatasetError


class TestNpzRoundTrip:
    def test_plain(self, tmp_path, rng):
        ps = uniform(100, dim=3, rng=rng)
        path = tmp_path / "plain.npz"
        save_particles(path, ps)
        back = load_particles(path)
        np.testing.assert_array_equal(ps.positions, back.positions)
        assert ps.box == back.box
        assert back.types is None

    def test_typed(self, tmp_path, rng):
        ps = random_types(
            uniform(60, dim=2, rng=rng), {"C": 1, "O": 1}, rng=rng
        )
        path = tmp_path / "typed.npz"
        save_particles(path, ps)
        back = load_particles(path)
        np.testing.assert_array_equal(ps.types, back.types)
        assert back.type_names == ps.type_names

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(DatasetError):
            load_particles(path)


class TestXyzRoundTrip:
    def test_plain_2d(self, tmp_path, rng):
        ps = uniform(40, dim=2, rng=rng)
        path = tmp_path / "plain.xyz"
        save_xyz(path, ps)
        back = load_xyz(path)
        np.testing.assert_allclose(ps.positions, back.positions)
        assert ps.box == back.box

    def test_typed_3d(self, tmp_path, rng):
        ps = random_types(
            uniform(30, dim=3, rng=rng), {"C": 1, "O": 1}, rng=rng
        )
        path = tmp_path / "typed.xyz"
        save_xyz(path, ps)
        back = load_xyz(path)
        np.testing.assert_allclose(ps.positions, back.positions)
        # Codes may be renumbered but the named partition must survive.
        for name in ("C", "O"):
            orig = {
                tuple(row) for row in ps.of_type(name).positions.round(9)
            }
            got = {
                tuple(row) for row in back.of_type(name).positions.round(9)
            }
            assert orig == got

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("not-a-number\nbox 0 0 1 1\n")
        with pytest.raises(DatasetError):
            load_xyz(path)

    def test_count_mismatch(self, tmp_path):
        path = tmp_path / "short.xyz"
        path.write_text("3\nbox 0 0 1 1\nX 0.5 0.5\n")
        with pytest.raises(DatasetError):
            load_xyz(path)


class TestTrajectoryRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        initial = uniform(50, dim=2, rng=rng)
        traj = random_walk_trajectory(initial, 4, rng=rng)
        path = tmp_path / "traj.npz"
        save_trajectory(path, traj)
        back = load_trajectory(path)
        assert back.num_frames == 4
        for a, b in zip(traj.frames, back.frames):
            np.testing.assert_array_equal(a.positions, b.positions)

    def test_wrong_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(DatasetError):
            load_trajectory(path)

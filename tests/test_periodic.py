"""Tests for periodic-boundary (minimum-image) SDH support.

Real molecular simulations measure distances under the minimum-image
convention; this extension threads a torus metric through the brute
force baseline, the vectorized DM-SDH engine (cell bounds become torus
distance intervals), ADM-SDH, and the RDF normalization.  Correctness
anchor: the grid engine must match the min-image brute force *exactly*,
and known torus geometry facts must hold.
"""

import numpy as np
import pytest

from repro import (
    UniformBuckets,
    adm_sdh,
    brute_force_sdh,
    compute_sdh,
    dm_sdh_grid,
    lattice,
    uniform,
    zipf_clustered,
)
from repro.data import ParticleSet
from repro.errors import QueryError
from repro.geometry import AABB
from repro.geometry.distance import (
    minimum_image,
    periodic_grid_pair_bounds,
    periodic_interval_minmax,
)
from repro.physics import rdf_from_histogram
from repro.quadtree import GridPyramid


class TestMinimumImage:
    def test_wraps_to_half_box(self, rng):
        lengths = np.array([2.0, 4.0])
        delta = rng.uniform(-10, 10, size=(500, 2))
        wrapped = minimum_image(delta, lengths)
        assert (np.abs(wrapped[:, 0]) <= 1.0 + 1e-12).all()
        assert (np.abs(wrapped[:, 1]) <= 2.0 + 1e-12).all()

    def test_identity_within_half_box(self):
        delta = np.array([[0.3, -0.4]])
        np.testing.assert_allclose(
            minimum_image(delta, np.array([1.0, 1.0])), delta
        )

    def test_known_wrap(self):
        delta = np.array([[0.9, -0.8]])
        wrapped = minimum_image(delta, np.array([1.0, 1.0]))
        np.testing.assert_allclose(wrapped, [[-0.1, 0.2]])


class TestPeriodicIntervalMinmax:
    def test_interval_below_half(self):
        a, b = np.array([0.1]), np.array([0.3])
        g_min, g_max = periodic_interval_minmax(a, b, 1.0)
        assert g_min[0] == pytest.approx(0.1)
        assert g_max[0] == pytest.approx(0.3)

    def test_interval_above_half(self):
        a, b = np.array([0.7]), np.array([0.9])
        g_min, g_max = periodic_interval_minmax(a, b, 1.0)
        assert g_min[0] == pytest.approx(0.1)
        assert g_max[0] == pytest.approx(0.3)

    def test_straddling_interval(self):
        a, b = np.array([0.4]), np.array([0.7])
        g_min, g_max = periodic_interval_minmax(a, b, 1.0)
        assert g_min[0] == pytest.approx(0.3)  # min(0.4, 1-0.7)
        assert g_max[0] == pytest.approx(0.5)  # hits L/2

    def test_bounds_enclose_sampled_minimage(self, rng):
        """For random cell pairs on a torus, every realized min-image
        distance lies within the computed [u, v]."""
        grid, side = 8, 0.25
        for _ in range(50):
            i1 = rng.integers(0, grid, size=(1, 2))
            i2 = rng.integers(0, grid, size=(1, 2))
            u, v = periodic_grid_pair_bounds(i1, i2, grid, side)
            p1 = (i1 + rng.uniform(size=(200, 2))) * side
            p2 = (i2 + rng.uniform(size=(200, 2))) * side
            delta = minimum_image(
                p1 - p2, np.array([grid * side] * 2)
            )
            d = np.sqrt((delta**2).sum(axis=1))
            assert d.min() >= u[0] - 1e-12
            assert d.max() <= v[0] + 1e-12


class TestPeriodicEngines:
    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("num_buckets", [2, 5, 12])
    def test_grid_matches_brute_force(self, dim, num_buckets):
        data = uniform(400, dim=dim, rng=171)
        spec = UniformBuckets.with_count(
            data.max_periodic_distance, num_buckets
        )
        hb = brute_force_sdh(data, spec=spec, periodic=True)
        hg = dm_sdh_grid(data, spec=spec, periodic=True)
        assert hb.total == data.num_pairs
        np.testing.assert_array_equal(hb.counts, hg.counts)

    def test_clustered_data(self):
        data = zipf_clustered(400, dim=2, rng=172)
        spec = UniformBuckets.with_count(data.max_periodic_distance, 6)
        hb = brute_force_sdh(data, spec=spec, periodic=True)
        hg = dm_sdh_grid(data, spec=spec, periodic=True)
        np.testing.assert_array_equal(hb.counts, hg.counts)

    def test_differs_from_nonperiodic(self):
        """Wrapping genuinely moves mass toward shorter distances."""
        data = uniform(300, dim=2, rng=173)
        spec = UniformBuckets.with_count(data.max_possible_distance, 8)
        plain = compute_sdh(data, spec=spec)
        wrapped = compute_sdh(data, spec=spec, periodic=True)
        assert not np.array_equal(plain.counts, wrapped.counts)
        # No min-image distance exceeds the torus maximum.
        torus_max = data.max_periodic_distance
        first_dead = int(
            np.searchsorted(spec.edges, torus_max * (1 + 1e-9))
        )
        assert wrapped.counts[first_dead:].sum() == 0

    def test_two_points_on_opposite_faces(self):
        """The classic wrap case: near-corner pairs are close."""
        pts = np.array([[0.05, 0.5], [0.95, 0.5]])
        data = ParticleSet(pts, box=AABB.cube(1.0, 2))
        spec = UniformBuckets(0.05, 20)  # covers [0, 1]
        wrapped = brute_force_sdh(data, spec=spec, periodic=True)
        # Distance 0.1 (floating point may land it on either side of
        # the exact bucket edge).
        assert wrapped.counts[1] + wrapped.counts[2] == 1
        assert wrapped.counts[:4].sum() == 1
        plain = brute_force_sdh(data, spec=spec)
        assert plain.counts[17] + plain.counts[18] == 1  # distance 0.9

    def test_periodic_requires_box(self):
        with pytest.raises(ValueError):
            brute_force_sdh(
                np.random.default_rng(0).uniform(size=(10, 2)),
                bucket_width=0.2,
                periodic=True,
            )

    def test_mbr_rejected(self):
        data = uniform(100, dim=2, rng=174)
        pyramid = GridPyramid(data, with_mbr=True)
        spec = UniformBuckets.with_count(data.max_periodic_distance, 4)
        with pytest.raises(QueryError):
            dm_sdh_grid(pyramid, spec=spec, use_mbr=True, periodic=True)

    def test_tree_engine_rejected(self):
        data = uniform(100, dim=2, rng=175)
        with pytest.raises(QueryError):
            compute_sdh(
                data, num_buckets=4, engine="tree", periodic=True
            )

    def test_default_spec_covers_torus(self):
        data = uniform(200, dim=2, rng=176)
        h = compute_sdh(data, num_buckets=10, periodic=True)
        assert h.spec.high == pytest.approx(data.max_periodic_distance)
        assert h.total == data.num_pairs

    def test_restricted_periodic_query(self):
        from repro.data import random_types

        data = random_types(
            uniform(300, dim=2, rng=177), {"A": 1, "B": 1}, rng=1
        )
        spec = UniformBuckets.with_count(data.max_periodic_distance, 6)
        got = compute_sdh(
            data, spec=spec, type_filter="A", periodic=True
        )
        expected = brute_force_sdh(
            data.of_type("A"), spec=spec, periodic=True
        )
        np.testing.assert_array_equal(expected.counts, got.counts)


class TestPeriodicApproximate:
    def test_mass_conserved_and_accurate(self):
        data = uniform(3000, dim=2, rng=178)
        spec = UniformBuckets.with_count(data.max_periodic_distance, 16)
        exact = brute_force_sdh(data, spec=spec, periodic=True)
        approx = adm_sdh(
            data, spec=spec, levels=2, heuristic=3, rng=0, periodic=True
        )
        assert approx.total == pytest.approx(data.num_pairs)
        assert approx.error_rate(exact) < 0.05

    def test_model_heuristic_falls_back(self):
        """Heuristic 4's offset-class sampling assumes flat geometry;
        under periodic boundaries it must still conserve mass (it falls
        back to the proportional split)."""
        data = uniform(1000, dim=2, rng=179)
        spec = UniformBuckets.with_count(data.max_periodic_distance, 8)
        approx = adm_sdh(
            data, spec=spec, levels=1, heuristic=4, rng=0, periodic=True
        )
        assert approx.total == pytest.approx(data.num_pairs)


class TestPeriodicRDF:
    def test_ideal_gas_flat_to_half_box(self):
        data = uniform(6000, dim=3, rng=180)
        spec = UniformBuckets.with_count(data.max_periodic_distance, 40)
        h = compute_sdh(data, spec=spec, periodic=True)
        rdf = rdf_from_histogram(h, data, finite_size="periodic")
        np.testing.assert_allclose(rdf.g[2:35], 1.0, atol=0.15)

    def test_periodic_matches_shell_at_small_r(self):
        data = uniform(6000, dim=3, rng=181)
        spec = UniformBuckets.with_count(data.max_periodic_distance, 40)
        h = compute_sdh(data, spec=spec, periodic=True)
        g_per = rdf_from_histogram(h, data, finite_size="periodic").g
        g_shell = rdf_from_histogram(h, data, finite_size="shell").g
        np.testing.assert_allclose(g_per[:10], g_shell[:10], rtol=0.02)

    def test_periodic_lattice_peaks(self):
        """A periodic lattice has *exactly* equivalent sites, so the
        nearest-neighbour peak is clean at the lattice constant."""
        data = lattice(10, dim=2, jitter=0.02, rng=0)
        spec = UniformBuckets.with_count(data.max_periodic_distance, 70)
        h = compute_sdh(data, spec=spec, periodic=True)
        rdf = rdf_from_histogram(h, data, finite_size="periodic")
        spacing = 1.0 / 10
        peak_r, peak_g = rdf.truncated(1.4 * spacing).first_peak()
        assert peak_r == pytest.approx(spacing, rel=0.1)
        assert peak_g > 3.0

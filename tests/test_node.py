"""Tests for repro.quadtree.node (the paper's node layout)."""

import numpy as np
import pytest

from repro.data import uniform
from repro.geometry import AABB
from repro.quadtree import DensityMapTree, DensityNode


class TestDensityNode:
    def test_fields_match_paper_layout(self):
        """(p-count, coordinates, child, p-list, next) — Sec. III-C.1."""
        node = DensityNode(AABB.cube(1.0, 2), level=0, p_count=5)
        assert node.p_count == 5
        assert node.bounds.dim == 2
        assert node.child is None
        assert node.next is None
        assert node.p_list is None
        assert node.mbr is None
        assert node.type_counts is None

    def test_slots_prevent_arbitrary_attributes(self):
        node = DensityNode(AABB.cube(1.0, 2), level=0)
        with pytest.raises(AttributeError):
            node.unexpected = 1  # type: ignore[attr-defined]

    def test_leaf_and_empty_predicates(self):
        node = DensityNode(AABB.cube(1.0, 2), level=0, p_count=0)
        assert node.is_leaf
        assert node.is_empty

    def test_children_iteration_stops_at_degree(self):
        """children() must not run into the cousin chain."""
        data = uniform(200, dim=2, rng=31)
        tree = DensityMapTree(data, height=3)
        root = tree.root
        children = list(root.children())
        assert len(children) == 4
        # Each child's next-chain continues, but children() stops.
        level1 = tree.density_map(1).cells
        assert children == level1[:4]

    def test_children_3d_degree(self):
        data = uniform(100, dim=3, rng=31)
        tree = DensityMapTree(data, height=2)
        assert len(list(tree.root.children())) == 8

    def test_resolution_bounds_fallback(self):
        node = DensityNode(AABB.cube(2.0, 2), level=0, p_count=3)
        assert node.resolution_bounds(True) is node.bounds  # no MBR yet
        node.mbr = AABB.cube(1.0, 2)
        assert node.resolution_bounds(True) is node.mbr
        assert node.resolution_bounds(False) is node.bounds

    def test_repr_mentions_kind(self):
        node = DensityNode(AABB.cube(1.0, 2), level=2, p_count=7)
        assert "leaf" in repr(node)

"""Tests for repro.core.brute_force (the quadratic baseline)."""

import numpy as np
import pytest

from repro.core import (
    SDHStats,
    UniformBuckets,
    brute_force_cross_sdh,
    brute_force_sdh,
)
from repro.data import uniform
from repro.errors import DistanceOverflowError


class TestSelfSDH:
    def test_mass_conservation(self):
        data = uniform(150, dim=2, rng=0)
        h = brute_force_sdh(data, bucket_width=0.2)
        assert h.total == data.num_pairs

    def test_known_tiny_case(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        spec = UniformBuckets(1.0, 2)
        h = brute_force_sdh(pts, spec=spec)
        # distances: 1, 1, sqrt(2)
        np.testing.assert_allclose(h.counts, [0.0, 3.0])

    def test_distance_on_bucket_edge(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        spec = UniformBuckets(0.5, 4)
        h = brute_force_sdh(pts, spec=spec)
        # D == 1.0 goes to bucket [1.0, 1.5).
        np.testing.assert_allclose(h.counts, [0, 0, 1, 0])

    def test_max_distance_in_last_bucket(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        spec = UniformBuckets(1.0, 2)
        h = brute_force_sdh(pts, spec=spec)
        np.testing.assert_allclose(h.counts, [0, 1])

    def test_overflow_raises(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0]])
        with pytest.raises(DistanceOverflowError):
            brute_force_sdh(pts, spec=UniformBuckets(1.0, 2))

    def test_requires_spec_or_width(self):
        with pytest.raises(ValueError):
            brute_force_sdh(np.zeros((3, 2)))

    def test_stats_count(self):
        data = uniform(60, dim=2, rng=1)
        stats = SDHStats()
        brute_force_sdh(data, bucket_width=0.3, stats=stats)
        assert stats.distance_computations == 60 * 59 // 2

    def test_chunking_invariance(self):
        data = uniform(100, dim=3, rng=2)
        spec = UniformBuckets.with_count(data.max_possible_distance, 8)
        h1 = brute_force_sdh(data, spec=spec, chunk=7)
        h2 = brute_force_sdh(data, spec=spec, chunk=1000)
        np.testing.assert_array_equal(h1.counts, h2.counts)

    def test_raw_array_input(self, rng):
        pts = rng.uniform(size=(50, 2))
        h = brute_force_sdh(pts, bucket_width=0.25)
        assert h.total == 50 * 49 // 2


class TestCrossSDH:
    def test_mass(self, rng):
        a = rng.uniform(size=(30, 2))
        b = rng.uniform(size=(20, 2))
        spec = UniformBuckets(0.5, 4)
        h = brute_force_cross_sdh(a, b, spec)
        assert h.total == 600

    def test_matches_manual(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.3, 0.0], [0.0, 0.7]])
        spec = UniformBuckets(0.5, 2)
        h = brute_force_cross_sdh(a, b, spec)
        np.testing.assert_allclose(h.counts, [1.0, 1.0])

    def test_stats(self, rng):
        a = rng.uniform(size=(5, 2))
        b = rng.uniform(size=(7, 2))
        stats = SDHStats()
        brute_force_cross_sdh(a, b, UniformBuckets(1.0, 2), stats=stats)
        assert stats.distance_computations == 35

"""Tests for repro.bench (timing, workloads, reporting)."""

import numpy as np
import pytest

from repro.bench import (
    DATASET_FAMILIES,
    banner,
    doubling_series,
    fit_loglog_slope,
    format_series,
    format_table,
    make_dataset,
    measure,
    tail_slope,
)
from repro.errors import QueryError


class TestTiming:
    def test_measure_returns_result(self):
        m = measure(lambda: 41 + 1)
        assert m.result == 42
        assert m.seconds >= 0.0

    def test_slope_of_power_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**1.5
        assert fit_loglog_slope(x, y) == pytest.approx(1.5)

    def test_slope_of_quadratic(self):
        x = np.array([10, 20, 40, 80])
        y = 0.01 * x**2
        assert fit_loglog_slope(x, y) == pytest.approx(2.0)

    def test_tail_slope_ignores_preasymptotic_head(self):
        x = np.array([1.0, 2, 4, 8, 16, 32])
        y = np.array([5.0, 5.0, 5.0, 8.0**1.5, 16.0**1.5, 32.0**1.5])
        full = fit_loglog_slope(x, y)
        tail = tail_slope(x, y, points=3)
        assert tail == pytest.approx(1.5)
        assert full < tail

    def test_validation(self):
        with pytest.raises(QueryError):
            fit_loglog_slope([1.0], [1.0])
        with pytest.raises(QueryError):
            fit_loglog_slope([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(QueryError):
            tail_slope([1, 2, 3], [1, 2, 3], points=1)


class TestWorkloads:
    def test_doubling_series(self):
        assert doubling_series(100, 4) == [100, 200, 400, 800]
        with pytest.raises(QueryError):
            doubling_series(0, 3)

    @pytest.mark.parametrize("family", DATASET_FAMILIES)
    def test_families_produce_right_sizes(self, family):
        data = make_dataset(family, 700, dim=2, seed=1)
        assert data.size == 700
        assert data.dim == 2

    def test_membrane_scaling_uses_fixed_base(self):
        """Duplication scaling: scaled sets reuse base coordinates."""
        small = make_dataset("membrane", 1000, dim=2, seed=2)
        big = make_dataset("membrane", 5000, dim=2, seed=2)
        small_set = {tuple(r) for r in small.positions.round(12)}
        big_set = {tuple(r) for r in big.positions.round(12)}
        assert len(big_set & small_set) > 0.5 * len(small_set)

    def test_unknown_family(self):
        with pytest.raises(QueryError):
            make_dataset("plasma", 100, dim=2)

    def test_deterministic(self):
        a = make_dataset("zipf", 300, dim=2, seed=9)
        b = make_dataset("zipf", 300, dim=2, seed=9)
        np.testing.assert_array_equal(a.positions, b.positions)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["N", "time"], [[100, 0.5], [200, 1.25]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "N" in lines[1] and "time" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series(
            "N", [1, 2], {"a": [10, 20], "b": [30, 40]}
        )
        assert "a" in text and "b" in text
        assert "30" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[1234567.0], [0.000012], [0.0]])
        assert "e+06" in text
        assert "e-05" in text

    def test_banner(self):
        assert "hello" in banner("hello")

"""Tests for repro.core.buckets (bucket specifications)."""

import numpy as np
import pytest

from repro.core import CustomBuckets, OverflowPolicy, UniformBuckets
from repro.errors import BucketSpecError, DistanceOverflowError


class TestUniformConstruction:
    def test_basic(self):
        spec = UniformBuckets(0.5, 4)
        assert spec.num_buckets == 4
        assert spec.low == 0.0
        assert spec.high == 2.0
        np.testing.assert_allclose(spec.edges, [0, 0.5, 1.0, 1.5, 2.0])
        np.testing.assert_allclose(spec.widths, 0.5)

    def test_rejects_bad_width(self):
        with pytest.raises(BucketSpecError):
            UniformBuckets(0.0, 4)
        with pytest.raises(BucketSpecError):
            UniformBuckets(-1.0, 4)
        with pytest.raises(BucketSpecError):
            UniformBuckets(float("inf"), 4)

    def test_rejects_zero_buckets(self):
        with pytest.raises(BucketSpecError):
            UniformBuckets(1.0, 0)

    def test_cover_rounds_up(self):
        spec = UniformBuckets.cover(1.0, 0.3)
        assert spec.num_buckets == 4
        assert spec.high >= 1.0

    def test_cover_exact_multiple(self):
        spec = UniformBuckets.cover(1.5, 0.5)
        assert spec.num_buckets == 3

    def test_with_count(self):
        spec = UniformBuckets.with_count(10.0, 4)
        assert spec.width == pytest.approx(2.5)
        assert spec.high == pytest.approx(10.0)

    def test_equality_and_len(self):
        assert UniformBuckets(1.0, 3) == UniformBuckets(1.0, 3)
        assert UniformBuckets(1.0, 3) != UniformBuckets(1.0, 4)
        assert len(UniformBuckets(1.0, 3)) == 3


class TestUniformLookup:
    def setup_method(self):
        self.spec = UniformBuckets(1.0, 4)  # [0,1) [1,2) [2,3) [3,4]

    def test_interior_values(self):
        d = np.array([0.0, 0.5, 1.0, 2.99, 3.5])
        np.testing.assert_array_equal(
            self.spec.bucket_of(d), [0, 0, 1, 2, 3]
        )

    def test_closed_last_edge(self):
        """D == l*p belongs to the last bucket (paper Sec. II)."""
        assert self.spec.bucket_of(np.array([4.0]))[0] == 3

    def test_beyond_range(self):
        assert self.spec.bucket_of(np.array([4.5]))[0] >= 4

    def test_negative_is_flagged(self):
        assert self.spec.bucket_of(np.array([-0.1]))[0] == -1

    def test_interior_edges_open(self):
        """D exactly on an interior edge belongs to the upper bucket."""
        np.testing.assert_array_equal(
            self.spec.bucket_of(np.array([1.0, 2.0, 3.0])), [1, 2, 3]
        )


class TestOverflowPolicies:
    def setup_method(self):
        self.spec = UniformBuckets(1.0, 2)

    def test_raise(self):
        with pytest.raises(DistanceOverflowError):
            self.spec.apply_policy(
                np.array([0.5, 9.0]), OverflowPolicy.RAISE
            )

    def test_clamp(self):
        idx = self.spec.apply_policy(
            np.array([0.5, 9.0]), OverflowPolicy.CLAMP
        )
        np.testing.assert_array_equal(idx, [0, 1])

    def test_drop(self):
        idx = self.spec.apply_policy(
            np.array([0.5, 9.0]), OverflowPolicy.DROP
        )
        np.testing.assert_array_equal(idx, [0])

    def test_bin_counts(self):
        counts = self.spec.bin_counts(np.array([0.1, 0.2, 1.5]))
        np.testing.assert_allclose(counts, [2.0, 1.0])

    def test_bin_counts_weighted(self):
        counts = self.spec.bin_counts(
            np.array([0.5, 1.5]), weights=np.array([2.0, 3.0])
        )
        np.testing.assert_allclose(counts, [2.0, 3.0])

    def test_bin_counts_weighted_drop(self):
        counts = self.spec.bin_counts(
            np.array([0.5, 5.0]),
            weights=np.array([2.0, 3.0]),
            policy=OverflowPolicy.DROP,
        )
        np.testing.assert_allclose(counts, [2.0, 0.0])


class TestResolveRange:
    def setup_method(self):
        self.spec = UniformBuckets(3.0, 4)

    def test_resolvable(self):
        assert self.spec.resolve_range(3.2, 5.9) == 1

    def test_straddles_boundary(self):
        assert self.spec.resolve_range(2.9, 3.1) is None

    def test_upper_edge_exactly_on_boundary(self):
        """[u, v] with v on an interior boundary must NOT resolve:
        a realized distance equal to v belongs to the next bucket."""
        assert self.spec.resolve_range(3.5, 6.0) is None

    def test_last_bucket_closed(self):
        assert self.spec.resolve_range(9.5, 12.0) == 3

    def test_paper_table2_example(self):
        """X0A0-Z0B0 in Table II: [sqrt(10), sqrt(34)] resolves into
        bucket [3, 6)."""
        assert self.spec.resolve_range(
            np.sqrt(10), np.sqrt(34)
        ) == 1

    def test_degenerate_range(self):
        assert self.spec.resolve_range(4.0, 4.0) == 1


class TestCustomBuckets:
    def test_basic(self):
        spec = CustomBuckets([0.0, 1.0, 4.0, 5.0])
        assert spec.num_buckets == 3
        d = np.array([0.5, 1.0, 3.9, 4.2, 5.0])
        np.testing.assert_array_equal(
            spec.bucket_of(d), [0, 1, 1, 2, 2]
        )

    def test_rejects_unsorted(self):
        with pytest.raises(BucketSpecError):
            CustomBuckets([0.0, 2.0, 1.0])

    def test_rejects_too_few_edges(self):
        with pytest.raises(BucketSpecError):
            CustomBuckets([1.0])

    def test_rejects_negative_edges(self):
        with pytest.raises(BucketSpecError):
            CustomBuckets([-1.0, 1.0])

    def test_nonzero_r0(self):
        """The paper's arbitrary-r0 extension: distances below r0 are
        not part of the query."""
        spec = CustomBuckets([1.0, 2.0, 3.0])
        assert spec.bucket_of(np.array([0.5]))[0] == -1
        counts = spec.bin_counts_query(np.array([0.5, 1.5, 2.5]))
        np.testing.assert_allclose(counts, [1.0, 1.0])

    def test_overlapped_buckets(self):
        spec = CustomBuckets([0.0, 1.0, 2.0, 4.0])
        assert spec.overlapped_buckets(0.5, 2.5) == (0, 2)
        assert spec.overlapped_buckets(1.2, 1.8) == (1, 1)

    def test_equality_across_types(self):
        uniform = UniformBuckets(1.0, 3)
        custom = CustomBuckets([0.0, 1.0, 2.0, 3.0])
        assert uniform == custom

    def test_resolve_range_log_lookup(self):
        spec = CustomBuckets([0.0, 1.0, 10.0, 11.0])
        assert spec.resolve_range(2.0, 9.5) == 1
        assert spec.resolve_range(9.5, 10.5) is None


class TestScalarLookupRegression:
    """The O(log l) scalar lookup must mirror the vectorized binning.

    ``resolve_range`` / ``overlapped_buckets`` run per node pair in the
    tree engine, so they use a bisect-based scalar fast path
    (Buccafurri-style index over the edge array) instead of building
    1-element numpy arrays.  These tests pin the two paths together on
    the layout most likely to expose a divergence: log-scaled
    non-uniform buckets with a non-zero r0.
    """

    def log_spec(self) -> CustomBuckets:
        edges = np.logspace(-2, 1, 24)  # 0.01 .. 10, 23 buckets
        return CustomBuckets(edges)

    def test_scalar_matches_vectorized_on_log_buckets(self):
        spec = self.log_spec()
        rng = np.random.default_rng(42)
        samples = np.concatenate(
            [
                rng.uniform(0.0, 12.0, 2000),
                spec.edges,  # exactly on every edge
                np.nextafter(spec.edges, -np.inf),
                np.nextafter(spec.edges, np.inf),
            ]
        )
        vectorized = spec.bucket_of(samples)
        for d, expected in zip(samples, vectorized):
            assert spec._bucket_index_scalar(float(d)) == expected

    def test_resolve_range_log_buckets(self):
        spec = self.log_spec()
        # Inside one bucket resolves; straddling an edge does not.
        lo, hi = float(spec.edges[10]), float(spec.edges[11])
        mid = (lo + hi) / 2.0
        assert spec.resolve_range(lo, mid) == 10
        assert spec.resolve_range(mid, hi * 1.001) is None
        # Below r0 or beyond the last edge never resolves.
        assert spec.resolve_range(0.001, 0.005) is None
        assert spec.resolve_range(20.0, 30.0) is None

    def test_overlapped_buckets_log_buckets(self):
        spec = self.log_spec()
        rng = np.random.default_rng(7)
        for _ in range(500):
            u, v = np.sort(rng.uniform(0.0, 12.0, 2))
            lo, hi = spec.overlapped_buckets(float(u), float(v))
            assert 0 <= lo <= hi <= spec.num_buckets - 1
            # The span is exactly the buckets the endpoints map into,
            # clamped to the histogram domain.
            expected_lo = min(
                max(spec._bucket_index_scalar(float(u)), 0),
                spec.num_buckets - 1,
            )
            expected_hi = min(
                max(spec._bucket_index_scalar(float(v)), 0),
                spec.num_buckets - 1,
            )
            assert (lo, hi) == (expected_lo, expected_hi)

    def test_uniform_scalar_fast_path_closed_last_edge(self):
        spec = UniformBuckets(1.0, 8)
        assert spec._bucket_index_scalar(8.0) == 7  # closed last edge
        assert spec._bucket_index_scalar(8.0 * (1 + 1e-12)) == 7
        assert spec._bucket_index_scalar(8.1) == 8  # overflow sentinel
        assert spec._bucket_index_scalar(-0.5) == -1

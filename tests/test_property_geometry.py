"""Property-based tests (hypothesis) for the geometric substrate.

The soundness of DM-SDH rests on one geometric invariant: the computed
min/max cell-distance bounds enclose every realizable point distance.
These tests let hypothesis hunt for corner cases (touching cells,
degenerate boxes, extreme aspect ratios) that example-based tests miss.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, box_pair_bounds, grid_pair_bounds

coords = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
sides = st.floats(min_value=1e-3, max_value=50.0, allow_nan=False)


@st.composite
def boxes(draw, dim=2):
    lo = [draw(coords) for _ in range(dim)]
    size = [draw(sides) for _ in range(dim)]
    return AABB(tuple(lo), tuple(a + s for a, s in zip(lo, size)))


@given(boxes(), boxes(), st.integers(0, 2**31 - 1))
@settings(max_examples=150, deadline=None)
def test_bounds_enclose_sampled_distances(a, b, seed):
    rng = np.random.default_rng(seed)
    pa = rng.uniform(a.lo, a.hi, size=(32, 2))
    pb = rng.uniform(b.lo, b.hi, size=(32, 2))
    d = np.sqrt(((pa - pb) ** 2).sum(axis=1))
    assert d.min() >= a.min_distance(b) - 1e-9
    assert d.max() <= a.max_distance(b) + 1e-9


@given(boxes(), boxes())
@settings(max_examples=150, deadline=None)
def test_min_le_max_and_symmetry(a, b):
    assert a.min_distance(b) <= a.max_distance(b) + 1e-12
    assert a.min_distance(b) == b.min_distance(a)
    assert a.max_distance(b) == b.max_distance(a)


@given(boxes())
@settings(max_examples=80, deadline=None)
def test_self_bounds(a):
    assert a.min_distance(a) == 0.0
    assert a.max_distance(a) == math.sqrt(
        sum(s * s for s in a.sides)
    )


@given(boxes())
@settings(max_examples=80, deadline=None)
def test_subdivision_partitions_volume(a):
    children = a.subdivide()
    total = sum(c.volume for c in children)
    assert abs(total - a.volume) <= 1e-9 * max(a.volume, 1.0)
    for child in children:
        assert a.contains_box(child)


@given(boxes(), boxes())
@settings(max_examples=80, deadline=None)
def test_child_bounds_nest_within_parent_bounds(a, b):
    """Refinement can only tighten [u, v] — the monotonicity DM-SDH's
    recursion relies on."""
    u_parent, v_parent = a.distance_bounds(b)
    for ca in a.subdivide():
        for cb in b.subdivide():
            u_child, v_child = ca.distance_bounds(cb)
            assert u_child >= u_parent - 1e-9
            assert v_child <= v_parent + 1e-9


@given(
    st.integers(1, 64),
    st.lists(st.integers(0, 63), min_size=4, max_size=4),
    st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
)
@settings(max_examples=150, deadline=None)
def test_grid_bounds_match_box_bounds(grid, idx, side):
    i1 = np.array([[idx[0], idx[1]]])
    i2 = np.array([[idx[2], idx[3]]])
    u_grid, v_grid = grid_pair_bounds(i1, i2, side)
    a = AABB.from_arrays(i1[0] * side, (i1[0] + 1) * side)
    b = AABB.from_arrays(i2[0] * side, (i2[0] + 1) * side)
    # The two computations take different float paths (index arithmetic
    # vs corner subtraction); agreement is up to rounding only.
    assert u_grid[0] == np.float64(a.min_distance(b)) or abs(
        u_grid[0] - a.min_distance(b)
    ) < 1e-12 * max(1.0, u_grid[0])
    assert abs(v_grid[0] - a.max_distance(b)) < 1e-12 * max(
        1.0, v_grid[0]
    )


@given(
    st.integers(2, 32),
    st.integers(0, 31),
    st.integers(0, 31),
    st.floats(min_value=1e-3, max_value=5.0, allow_nan=False),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=120, deadline=None)
def test_periodic_grid_bounds_enclose_min_image_distances(
    grid, i1, i2, side, seed
):
    """Torus cell-distance bounds must enclose every realized
    minimum-image distance — the exactness invariant of the periodic
    engine."""
    from repro.geometry.distance import (
        minimum_image,
        periodic_grid_pair_bounds,
    )

    i1 %= grid
    i2 %= grid
    idx1 = np.array([[i1, i2]])
    idx2 = np.array([[(i2 * 7 + 3) % grid, (i1 * 5 + 1) % grid]])
    u, v = periodic_grid_pair_bounds(idx1, idx2, grid, side)
    rng_local = np.random.default_rng(seed)
    p1 = (idx1 + rng_local.uniform(size=(64, 2))) * side
    p2 = (idx2 + rng_local.uniform(size=(64, 2))) * side
    delta = minimum_image(p1 - p2, np.array([grid * side] * 2))
    d = np.sqrt((delta**2).sum(axis=1))
    assert d.min() >= u[0] - 1e-9 * max(1.0, u[0])
    assert d.max() <= v[0] + 1e-9 * max(1.0, v[0])


@given(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=150, deadline=None)
def test_periodic_interval_transform_properties(a, b):
    """g(x) = min(x, L - x) interval extrema: correct range and order."""
    from repro.geometry.distance import periodic_interval_minmax

    lo, hi = min(a, b), max(a, b)
    g_min, g_max = periodic_interval_minmax(
        np.array([lo]), np.array([hi]), 1.0
    )
    assert 0.0 <= g_min[0] <= g_max[0] <= 0.5 + 1e-12
    # Brute-force check on a dense sample of the interval.
    xs = np.linspace(lo, hi, 200)
    g = np.minimum(xs, 1.0 - xs)
    assert g_min[0] <= g.min() + 1e-9
    assert g_max[0] >= g.max() - 1e-9


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_box_pair_bounds_consistency(data):
    a = data.draw(boxes())
    b = data.draw(boxes())
    u, v = box_pair_bounds(
        np.asarray([a.lo]),
        np.asarray([a.hi]),
        np.asarray([b.lo]),
        np.asarray([b.hi]),
    )
    assert u[0] == np.float64(a.min_distance(b))
    assert v[0] == np.float64(b.max_distance(a))

"""Tests for repro.core.analysis (covering factors and cost model)."""

import math

import numpy as np
import pytest

from repro.core import (
    PAPER_TABLE3,
    covering_factor,
    covering_factor_model,
    dm_sdh_exponent,
    lemma1_ratios,
    non_covering_factor,
)
from repro.core.analysis import (
    TABLE3_BUCKET_COUNTS,
    approximate_cost,
    choose_levels_for_error,
    geometric_progression_cost,
)
from repro.errors import QueryError


class TestPublishedTable:
    def test_table_shape(self):
        assert set(PAPER_TABLE3) == set(range(1, 11))
        assert all(
            len(row) == len(TABLE3_BUCKET_COUNTS)
            for row in PAPER_TABLE3.values()
        )

    def test_rows_increase_with_m(self):
        for col in range(len(TABLE3_BUCKET_COUNTS)):
            column = [PAPER_TABLE3[m][col] for m in range(1, 11)]
            assert column == sorted(column)

    def test_lemma1_halving_in_published_values(self):
        """alpha(m+1)/alpha(m) ~ 1/2 across the published table."""
        alphas = [1 - PAPER_TABLE3[m][-1] / 100 for m in range(1, 11)]
        ratios = lemma1_ratios(alphas)
        np.testing.assert_allclose(ratios, 0.5, atol=0.02)

    def test_covering_factor_lookup(self):
        assert covering_factor(1, 256) == pytest.approx(0.526227)
        assert covering_factor(5, 128) == pytest.approx(0.970389)
        assert covering_factor(0, 16) == 0.0

    def test_small_l_column(self):
        assert covering_factor(1, 2) == pytest.approx(0.506565)
        # l = 3 uses the l = 4 column.
        assert covering_factor(1, 3) == pytest.approx(0.521591)

    def test_extrapolation_beyond_table(self):
        a10 = non_covering_factor(10, 256)
        a12 = non_covering_factor(12, 256)
        assert a12 == pytest.approx(a10 / 4)

    def test_rejects_negative_m(self):
        with pytest.raises(QueryError):
            covering_factor(-1, 16)


class TestChooseLevels:
    def test_paper_example(self):
        """'For a SDH query with 128 buckets and error bound of 3%, we
        get m = 5 by consulting the table.'"""
        assert choose_levels_for_error(0.03, 128) == 5

    def test_rule_of_thumb_consistency(self):
        """m ~ log2(1/eps) within one level."""
        for eps in (0.3, 0.1, 0.04, 0.01, 0.004):
            m = choose_levels_for_error(eps, 64)
            assert abs(m - math.log2(1 / eps)) <= 1.0

    def test_bounds_checked(self):
        with pytest.raises(QueryError):
            choose_levels_for_error(0.0, 16)
        with pytest.raises(QueryError):
            choose_levels_for_error(1.0, 16)
        with pytest.raises(QueryError):
            choose_levels_for_error(0.1, 16, dim=4)


class TestCostModel:
    def test_exponents(self):
        assert dm_sdh_exponent(2) == pytest.approx(1.5)
        assert dm_sdh_exponent(3) == pytest.approx(5 / 3)
        with pytest.raises(QueryError):
            dm_sdh_exponent(4)

    def test_equation3_geometric_sum(self):
        """T_c = I(2^{(2d-1)(n+1)} - 1)/(2^{2d-1} - 1): explicit check
        against the term-by-term geometric series."""
        for dim in (2, 3):
            base = 2 ** (2 * dim - 1)
            for levels in (0, 1, 3):
                direct = sum(base**j for j in range(levels + 1))
                assert geometric_progression_cost(
                    1.0, levels, dim
                ) == pytest.approx(direct)

    def test_equation5_independent_of_n(self):
        """Approximate cost depends on I, m, d only."""
        c = approximate_cost(100.0, levels=3, dim=2)
        assert c == pytest.approx(100.0 * 2 ** (3 * 3))

    def test_equation5_error_bound_form(self):
        """T ~ I (1/eps)^{2d-1}."""
        c = approximate_cost(1.0, error_bound=0.25, dim=2)
        assert c == pytest.approx(4.0**3)

    def test_equation5_argument_validation(self):
        with pytest.raises(QueryError):
            approximate_cost(1.0)
        with pytest.raises(QueryError):
            approximate_cost(1.0, levels=1, error_bound=0.1)


class TestNumericalModel:
    """The independent recomputation against the published Table III."""

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_matches_paper_2d(self, m):
        model = covering_factor_model(m, 16, dim=2, samples=8, rng=0)
        paper = PAPER_TABLE3[m][TABLE3_BUCKET_COUNTS.index(16)] / 100
        assert model == pytest.approx(paper, abs=0.03)

    def test_lemma1_halving_emerges(self):
        alphas = [
            1 - covering_factor_model(m, 8, dim=2, samples=8, rng=0)
            for m in (1, 2, 3, 4)
        ]
        ratios = lemma1_ratios(alphas)
        np.testing.assert_allclose(ratios, 0.5, atol=0.03)

    def test_lemma1_holds_in_3d(self):
        """The paper: 'the above result is also true for 3D data,
        although we can only give numerical results'."""
        alphas = [
            1 - covering_factor_model(m, 4, dim=3, samples=2, rng=0)
            for m in (1, 2, 3)
        ]
        ratios = lemma1_ratios(alphas)
        np.testing.assert_allclose(ratios, 0.5, atol=0.06)

    def test_m_zero(self):
        assert covering_factor_model(0, 16) == 0.0

    def test_guard_rails(self):
        with pytest.raises(QueryError):
            covering_factor_model(-1, 16)
        with pytest.raises(QueryError):
            covering_factor_model(1, 0)
        with pytest.raises(QueryError):
            covering_factor_model(1, 16, dim=5)

    def test_tracked_pair_guard(self):
        with pytest.raises(QueryError):
            covering_factor_model(
                8, 64, samples=1, max_tracked_pairs=1000
            )

    def test_empirical_agreement_with_algorithm(self):
        """The model must predict the per-level resolution rate the real
        engine measures on uniform data (~50% below the start map)."""
        from repro.core import SDHStats, UniformBuckets, dm_sdh_grid
        from repro.data import uniform

        data = uniform(20000, dim=2, rng=55)
        spec = UniformBuckets.with_count(data.max_possible_distance, 4)
        stats = SDHStats()
        dm_sdh_grid(data, spec=spec, stats=stats)
        assert stats.start_level is not None
        # Rates on maps two or more levels below the start map.
        deep_levels = [
            level
            for level in stats.resolve_calls
            if level >= stats.start_level + 2
            and stats.resolve_calls[level] > 1000
        ]
        assert deep_levels
        for level in deep_levels:
            assert stats.resolution_rate(level) == pytest.approx(
                0.5, abs=0.12
            )

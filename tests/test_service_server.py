"""End-to-end tests for the SDH query service over localhost HTTP."""

import threading

import numpy as np
import pytest

from repro import compute_sdh
from repro.data import random_types, save_particles, uniform
from repro.errors import (
    BucketSpecError,
    DatasetNotFound,
    QueryError,
    ServerOverloaded,
    ServiceError,
)
from repro.physics import rdf_from_histogram
from repro.service import SDHClient, SDHService, ServiceConfig


@pytest.fixture(scope="module")
def dataset():
    return uniform(300, dim=2, rng=11)


@pytest.fixture()
def service():
    with SDHService(max_workers=2, max_queue=4) as running:
        yield running


@pytest.fixture()
def client(service):
    return SDHClient(service.url)


class TestLifecycle:
    def test_healthz(self, client):
        assert client.health()

    def test_unknown_routes_are_404(self, client):
        with pytest.raises(ServiceError, match="no such route"):
            client._request("GET", "/v1/nope")
        with pytest.raises(ServiceError, match="no such route"):
            client._request("POST", "/v1/nope", {})

    def test_config_or_overrides_not_both(self):
        with pytest.raises(ServiceError):
            SDHService(ServiceConfig(), max_workers=2)


class TestRegisterAndQuery:
    def test_register_inline_and_query(self, client, dataset):
        key = client.register(dataset)
        assert key == dataset.fingerprint()
        hist = client.sdh(key, num_buckets=8)
        direct = compute_sdh(dataset, num_buckets=8)
        np.testing.assert_array_equal(hist.counts, direct.counts)
        np.testing.assert_allclose(hist.edges, direct.edges)

    def test_register_by_path_npz_and_alias(self, client, dataset, tmp_path):
        path = tmp_path / "d.npz"
        save_particles(path, dataset)
        key = client.register(path=str(path), name="mine")
        assert key == dataset.fingerprint()
        by_name = client.sdh("mine", num_buckets=6)
        by_key = client.sdh(key, num_buckets=6)
        np.testing.assert_array_equal(by_name.counts, by_key.counts)

    def test_register_typed_roundtrip(self, client):
        typed = random_types(
            uniform(150, dim=2, rng=3), {"C": 2, "O": 1}, rng=4
        )
        key = client.register(typed)
        hist = client.sdh(key, num_buckets=5, type_filter="C")
        direct = compute_sdh(typed, num_buckets=5, type_filter="C")
        np.testing.assert_array_equal(hist.counts, direct.counts)

    def test_bucket_width_query(self, client, dataset):
        key = client.register(dataset)
        hist = client.sdh(key, bucket_width=0.25)
        direct = compute_sdh(dataset, bucket_width=0.25)
        np.testing.assert_array_equal(hist.counts, direct.counts)

    def test_approximate_query(self, client, dataset):
        key = client.register(dataset)
        hist = client.sdh(key, num_buckets=16, levels=2, heuristic=1, rng=9)
        # Approximate histograms conserve total pair mass.
        assert hist.total == pytest.approx(dataset.num_pairs)

    def test_rdf_matches_direct(self, client, dataset):
        key = client.register(dataset)
        remote = client.rdf(key, num_buckets=24)
        direct = rdf_from_histogram(
            compute_sdh(dataset, num_buckets=24), dataset
        )
        np.testing.assert_allclose(remote.g, direct.g)
        np.testing.assert_allclose(remote.r, direct.r)

    def test_register_validation(self, client, dataset):
        with pytest.raises(ServiceError):
            client.register()
        with pytest.raises(ServiceError):
            client.register(dataset, path="also.npz")


class TestPlanReuse:
    def test_one_build_across_queries(self, service, client, dataset):
        """The acceptance criterion: two queries, one pyramid build."""
        key = client.register(dataset)
        client.sdh(key, num_buckets=8)
        client.sdh(key, num_buckets=32)  # different query, same plan
        stats = client.stats()
        assert stats["cache"]["builds"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] == 1
        assert key in stats["cache"]["plans"]

    def test_eager_build_on_register(self, client, dataset):
        client.register(dataset, build=True)
        stats = client.stats()
        assert stats["cache"]["builds"] == 1
        assert stats["cache"]["misses"] == 1


class TestErrorPaths:
    def test_unknown_dataset_404(self, client):
        with pytest.raises(DatasetNotFound, match="not registered"):
            client.sdh("deadbeef", num_buckets=4)

    def test_bad_bucket_spec_roundtrips_message(self, client, dataset):
        key = client.register(dataset)
        with pytest.raises(BucketSpecError, match="at least one bucket"):
            client.sdh(key, num_buckets=-2)

    def test_query_error_roundtrips_message(self, client, dataset):
        key = client.register(dataset)
        # Exactly the library's QueryError type and message text.
        with pytest.raises(
            QueryError, match="exactly one of bucket_width"
        ):
            client.sdh(key)

    def test_unknown_parameter_rejected(self, client, dataset):
        key = client.register(dataset)
        with pytest.raises(ServiceError, match="unknown query parameters"):
            client._request(
                "POST", "/v1/sdh",
                {"dataset": key, "num_buckets": 4, "wat": 1},
            )

    def test_kernel_field_over_the_wire(self, client, dataset):
        key = client.register(dataset)
        pinned = client.sdh(key, num_buckets=8, kernel="numpy")
        base = client.sdh(key, num_buckets=8)
        np.testing.assert_array_equal(pinned.counts, base.counts)

    def test_bad_kernel_rejected_as_query_error(self, client, dataset):
        key = client.register(dataset)
        with pytest.raises(QueryError, match="kernel must be one of"):
            client.sdh(key, num_buckets=8, kernel="cuda")

    def test_nan_region_rejected_as_400(self, service, client, dataset):
        # Python's json parser accepts bare NaN, so a hostile payload
        # can smuggle non-finite coordinates past JSON syntax; the wire
        # layer must reject them as a QueryError -> HTTP 400.
        import urllib.error
        import urllib.request

        key = client.register(dataset)
        body = (
            '{"dataset": "%s", "num_buckets": 4, "region": '
            '{"kind": "rect", "lo": [0, NaN], "hi": [1, 1]}}' % key
        )
        request = urllib.request.Request(
            f"{service.url}/v1/sdh",
            data=body.encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_infinite_bucket_width_rejected(self, client, dataset):
        key = client.register(dataset)
        with pytest.raises(BucketSpecError, match="finite"):
            client.sdh(key, bucket_width=float("inf"))

    def test_malformed_json_rejected(self, service):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{service.url}/v1/sdh",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_oversized_queue_rejected_as_503(self, dataset):
        """Saturate a 1-worker/0-queue server; the overflow request
        must come back as ServerOverloaded, not hang.  The burst uses
        *distinct* queries — identical ones would coalesce onto a
        single executor slot and never overload the pool."""
        config = ServiceConfig(max_workers=1, max_queue=0, timeout=None)
        with SDHService(config) as service:
            client = SDHClient(service.url)
            key = client.register(uniform(2500, dim=2, rng=1))
            rejected = []
            done = []
            lock = threading.Lock()

            def fire(buckets):
                try:
                    done.append(client.sdh(key, num_buckets=buckets))
                except ServerOverloaded:
                    with lock:
                        rejected.append(1)

            threads = [
                threading.Thread(target=fire, args=(60 + i,))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert done, "at least one query must get through"
            assert rejected, "an oversized burst must see 503s"
            stats = client.stats()
            assert stats["executor"]["rejected"] == len(rejected)


class TestConcurrencySmoke:
    def test_parallel_clients_match_direct(self, dataset):
        """N concurrent /v1/sdh requests, all bit-identical to
        compute_sdh on the same inputs."""
        stack = SDHService(max_workers=4, max_queue=16)
        with stack as service:
            self._run_smoke(service, dataset)

    def _run_smoke(self, service, dataset):
        client = SDHClient(service.url)
        key = client.register(dataset)
        expected = {
            l: compute_sdh(dataset, num_buckets=l).counts
            for l in (4, 8, 16, 32)
        }
        results = {}
        errors = []
        lock = threading.Lock()

        def fire(i):
            buckets = (4, 8, 16, 32)[i % 4]
            try:
                own = SDHClient(service.url)  # independent connection
                hist = own.sdh(key, num_buckets=buckets)
                with lock:
                    results[i] = (buckets, hist.counts)
            except Exception as exc:  # pragma: no cover - diagnostic
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(12)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 12
        for buckets, counts in results.values():
            np.testing.assert_array_equal(counts, expected[buckets])
        # All 12 queries shared one plan build.
        stats = SDHClient(service.url).stats()
        assert stats["cache"]["builds"] == 1


class TestBatchEndpoint:
    def test_batch_matches_singles(self, client, dataset):
        key = client.register(dataset)
        results = client.sdh_batch(
            key,
            [
                {"num_buckets": 4},
                {"num_buckets": 8},
                {"bucket_width": 0.25},
            ],
        )
        assert len(results) == 3
        for result, expected in zip(
            results,
            [
                compute_sdh(dataset, num_buckets=4),
                compute_sdh(dataset, num_buckets=8),
                compute_sdh(dataset, bucket_width=0.25),
            ],
        ):
            np.testing.assert_array_equal(result.counts, expected.counts)

    def test_batch_shares_one_plan_build(self, client, dataset):
        key = client.register(dataset)
        client.sdh_batch(key, [{"num_buckets": b} for b in (4, 8, 16, 32)])
        stats = client.stats()
        assert stats["cache"]["builds"] == 1
        assert stats["requests"]["sdh_batch"] == 1
        assert stats["engines"]["exact"]["queries"] == 4
        # The whole batch occupied a single executor slot.
        assert stats["executor"]["completed"] == 1

    def test_batch_per_item_errors(self, client, dataset):
        key = client.register(dataset)
        results = client.sdh_batch(
            key,
            [
                {"num_buckets": 8},
                {},  # inconsistent: no parameterization
                {"wat": 1},  # unknown key
                {"num_buckets": 4},
            ],
            return_errors=True,
        )
        assert len(results) == 4
        assert isinstance(results[1], QueryError)
        assert "exactly one of bucket_width" in str(results[1])
        assert isinstance(results[2], ServiceError)
        assert "unknown query parameters" in str(results[2])
        np.testing.assert_array_equal(
            results[0].counts, compute_sdh(dataset, num_buckets=8).counts
        )
        np.testing.assert_array_equal(
            results[3].counts, compute_sdh(dataset, num_buckets=4).counts
        )

    def test_batch_raises_first_error_by_default(self, client, dataset):
        key = client.register(dataset)
        with pytest.raises(QueryError, match="exactly one of bucket_width"):
            client.sdh_batch(key, [{"num_buckets": 8}, {}])

    def test_empty_batch_rejected(self, client, dataset):
        key = client.register(dataset)
        with pytest.raises(ServiceError, match="non-empty list"):
            client.sdh_batch(key, [])


class TestParallelRouting:
    def test_threshold_routes_to_parallel_engine(self, dataset):
        config = ServiceConfig(
            max_workers=2,
            max_queue=4,
            parallel_threshold=100,
            parallel_workers=2,
        )
        with SDHService(config) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            hist = client.sdh(key, num_buckets=8)
            direct = compute_sdh(dataset, num_buckets=8)
            np.testing.assert_array_equal(hist.counts, direct.counts)
            stats = client.stats()
            assert stats["engines"]["parallel"]["queries"] == 1
            assert "exact" not in stats["engines"]

    def test_small_datasets_stay_serial(self, dataset):
        config = ServiceConfig(
            max_workers=2,
            max_queue=4,
            parallel_threshold=dataset.size + 1,
            parallel_workers=2,
        )
        with SDHService(config) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            client.sdh(key, num_buckets=8)
            stats = client.stats()
            assert stats["engines"]["exact"]["queries"] == 1
            assert "parallel" not in stats["engines"]

    def test_explicit_workers_over_the_wire(self, client, dataset):
        key = client.register(dataset)
        hist = client.sdh(key, num_buckets=8, workers=2)
        direct = compute_sdh(dataset, num_buckets=8)
        np.testing.assert_array_equal(hist.counts, direct.counts)
        stats = client.stats()
        assert stats["engines"]["parallel"]["queries"] == 1

    def test_approximate_never_auto_routed(self, dataset):
        config = ServiceConfig(
            max_workers=2,
            max_queue=4,
            parallel_threshold=1,
            parallel_workers=2,
        )
        with SDHService(config) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            client.sdh(key, num_buckets=8, levels=1, rng=5)
            stats = client.stats()
            assert stats["engines"]["approx"]["queries"] == 1
            assert "parallel" not in stats["engines"]


class TestStats:
    def test_stats_shape(self, client, dataset):
        key = client.register(dataset, name="d")
        client.sdh(key, num_buckets=8)
        client.sdh(key, num_buckets=8, levels=1)
        client.rdf(key, num_buckets=8)
        stats = client.stats()
        assert stats["uptime_seconds"] > 0
        assert stats["datasets"][key]["num_particles"] == dataset.size
        assert "d" in stats["datasets"][key]["aliases"]
        assert stats["requests"]["sdh"] == 2
        assert stats["requests"]["rdf"] == 1
        assert stats["engines"]["exact"]["queries"] == 1
        assert stats["engines"]["approx"]["queries"] == 1
        assert stats["engines"]["rdf"]["queries"] == 1
        assert stats["engines"]["exact"]["distance_computations"] > 0
        assert stats["executor"]["completed"] == 3


class TestObservability:
    """GET /metrics and the per-request trace-ID contract."""

    @staticmethod
    def _raw_get(url, headers=None):
        import urllib.request

        request = urllib.request.Request(url, headers=headers or {})
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return (
                response.status,
                dict(response.headers),
                response.read().decode("utf-8"),
            )

    def test_metrics_exposition(self, service, client, dataset):
        key = client.register(dataset)
        client.sdh(key, num_buckets=8)
        client.sdh(key, num_buckets=8)  # result-cache hit
        client.sdh(key, num_buckets=16)  # plan-cache hit, new result
        status, headers, text = self._raw_get(service.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        # Cache and executor counters fold into the scrape.
        assert "# TYPE sdh_cache_hits_total counter" in text
        assert "sdh_cache_builds_total 1" in text
        assert "sdh_cache_plans 1" in text
        # The repeated query was served from the result cache, so only
        # two computations reached the executor.
        assert "sdh_result_cache_hits_total 1" in text
        assert "sdh_result_cache_misses_total 2" in text
        assert "sdh_result_coalesced_total 0" in text
        assert "sdh_result_cache_entries 2" in text
        assert "sdh_executor_completed_total 2" in text
        assert "sdh_executor_late_failures_total 0" in text
        assert "sdh_executor_in_flight 0" in text
        assert "sdh_uptime_seconds" in text
        # Per-request latency histogram, labelled by route.  These
        # live in the process-global registry (cumulative across every
        # service the test session starts), so assert presence, not
        # exact counts.
        assert 'sdh_http_request_seconds_bucket{route="sdh"' in text
        assert "# TYPE sdh_http_request_seconds histogram" in text
        assert 'sdh_http_requests_total{route="sdh",status="200"}' in text
        # Library-side phase spans and per-level resolve counters.
        assert 'sdh_phase_seconds_bucket{phase="plan_query"' in text
        assert 'sdh_service_queries_total{engine="exact"} 2' in text
        assert "sdh_resolve_calls_total{" in text

    @staticmethod
    def _metric_value(text, prefix):
        for line in text.splitlines():
            if line.startswith(prefix):
                return float(line.rsplit(" ", 1)[1])
        return 0.0

    def test_metrics_scrape_is_itself_counted(self, service):
        import time as _time

        sample = 'sdh_http_requests_total{route="metrics",status="200"}'
        _, _, first = self._raw_get(service.url + "/metrics")
        before = self._metric_value(first, sample)
        # A scrape is counted only after its response is written, so a
        # later scrape eventually observes the earlier one.
        deadline = _time.time() + 5.0
        while _time.time() < deadline:
            _, _, text = self._raw_get(service.url + "/metrics")
            if self._metric_value(text, sample) > before:
                break
            _time.sleep(0.01)
        else:
            pytest.fail("metrics scrapes never appeared in the counter")

    def test_trace_id_echoed_from_request_header(self, service):
        status, headers, _ = self._raw_get(
            service.url + "/healthz",
            headers={"X-Trace-Id": "deadbeefcafef00d"},
        )
        assert status == 200
        assert headers["X-Trace-Id"] == "deadbeefcafef00d"

    def test_trace_id_generated_when_absent(self, service):
        _, first, _ = self._raw_get(service.url + "/healthz")
        _, second, _ = self._raw_get(service.url + "/healthz")
        assert len(first["X-Trace-Id"]) == 16
        int(first["X-Trace-Id"], 16)  # hex
        assert first["X-Trace-Id"] != second["X-Trace-Id"]

    def test_error_responses_carry_trace_id(self, service):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            service.url + "/v1/nope",
            headers={"X-Trace-Id": "0123456789abcdef"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10.0)
        assert info.value.code == 404
        assert info.value.headers["X-Trace-Id"] == "0123456789abcdef"


class TestPlannerIntegration:
    """Cost-based routing at the service layer: plan block, SLOs, 422."""

    def test_response_carries_plan_block(self, client, dataset):
        key = client.register(dataset)
        body = client._request(
            "POST", "/v1/sdh", {"dataset": key, "num_buckets": 8}
        )
        plan = body["plan"]
        assert plan["mode"] == "exact"
        assert plan["engine"] in ("brute", "grid", "tree", "parallel")
        assert plan["predicted_ms"] > 0
        assert plan["candidates"], "ranked candidates must be included"
        # The routed result is still bit-identical to a forced engine.
        direct = compute_sdh(dataset, num_buckets=8)
        np.testing.assert_array_equal(body["counts"], direct.counts)

    def test_forced_engine_skips_planning(self, client, dataset):
        key = client.register(dataset)
        body = client._request(
            "POST", "/v1/sdh",
            {"dataset": key, "num_buckets": 8, "engine": "grid"},
        )
        assert "plan" not in body

    def test_infeasible_budget_is_422(self, service, client, dataset):
        import json as _json
        import urllib.error
        import urllib.request

        from repro.errors import SLOInfeasibleError

        key = client.register(dataset)
        payload = {
            "dataset": key,
            "num_buckets": 8,
            "latency_budget_ms": 1e-4,
        }
        request = urllib.request.Request(
            f"{service.url}/v1/sdh",
            data=_json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 422
        # And the client rebuilds the typed error.
        with pytest.raises(SLOInfeasibleError, match="infeasible"):
            client._request("POST", "/v1/sdh", payload)

    def test_feasible_budget_answers_normally(self, client, dataset):
        key = client.register(dataset)
        body = client._request(
            "POST", "/v1/sdh",
            {"dataset": key, "num_buckets": 8, "latency_budget_ms": 60000},
        )
        direct = compute_sdh(dataset, num_buckets=8)
        np.testing.assert_array_equal(body["counts"], direct.counts)
        assert body["plan"]["predicted_ms"] <= 60000

    def test_batch_slo_errors_stay_per_item(self, client, dataset):
        from repro.errors import SLOInfeasibleError

        key = client.register(dataset)
        results = client.sdh_batch(
            key,
            [
                {"num_buckets": 8},
                {"num_buckets": 8, "latency_budget_ms": 1e-4},
            ],
            return_errors=True,
        )
        assert isinstance(results[1], SLOInfeasibleError)
        np.testing.assert_array_equal(
            results[0].counts, compute_sdh(dataset, num_buckets=8).counts
        )

    def test_parallel_threshold_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match="parallel_threshold"):
            ServiceConfig(parallel_threshold=100)

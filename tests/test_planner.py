"""Tests for repro.planner (cost model, calibration, plan_request, SLOs)."""

import json
import os

import numpy as np
import pytest

from repro.core.analysis import choose_levels_for_error, non_covering_factor
from repro.core.engines import (
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.core.query import compute_sdh
from repro.core.request import SDHRequest
from repro.data import uniform, zipf_clustered
from repro.errors import QueryError, SLOInfeasibleError
from repro.planner import (
    Calibration,
    CostConstants,
    calibrate,
    default_calibration_path,
    estimate_cost,
    get_calibration,
    load_calibration,
    plan_request,
    profile_workload,
    save_calibration,
)
from repro.planner.calibrate import _reset_calibration_cache
from repro.planner.slo import admit


@pytest.fixture(autouse=True)
def pinned_calibration():
    """Pin the planner to the default constants (2 CPUs) per test."""
    calibration = Calibration(
        constants=CostConstants(), cpu_count=2, source="default"
    )
    _reset_calibration_cache(calibration)
    yield calibration
    _reset_calibration_cache(None)


@pytest.fixture
def dataset():
    return uniform(2000, dim=2, rng=11)


def _profile(particles, num_buckets=16):
    request = SDHRequest(num_buckets=num_buckets).normalize()
    return profile_workload(particles, request.resolved_spec(particles))


class TestCostConstants:
    def test_round_trip(self):
        constants = CostConstants(dist_pair_s=1e-8)
        assert CostConstants.from_dict(constants.to_dict()) == constants

    def test_unknown_key_rejected(self):
        with pytest.raises(QueryError, match="unknown cost constants"):
            CostConstants.from_dict({"warp_speed_s": 1.0})

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(QueryError, match="finite and positive"):
            CostConstants.from_dict({"dist_pair_s": bad})


class TestCostModel:
    def test_brute_scales_with_pairs(self, dataset):
        small = _profile(uniform(500, dim=2, rng=1))
        big = _profile(dataset)
        constants = CostConstants()
        cheap = estimate_cost("brute", small, constants)
        costly = estimate_cost("brute", big, constants)
        assert costly.seconds > cheap.seconds
        assert costly.operations == big.num_pairs

    def test_exact_estimates_have_zero_error(self, dataset):
        profile = _profile(dataset)
        constants = CostConstants()
        for engine in ("brute", "grid", "tree"):
            assert estimate_cost(engine, profile, constants).error == 0.0
        parallel = estimate_cost(
            "parallel", profile, constants, workers=2
        )
        assert parallel.error == 0.0

    def test_tree_costs_more_than_grid(self, dataset):
        # Same Eq.(3) operation count, but the per-op constant for the
        # Python node tree is orders of magnitude above the vectorized
        # grid kernel.
        profile = _profile(dataset)
        constants = CostConstants()
        grid = estimate_cost("grid", profile, constants)
        tree = estimate_cost("tree", profile, constants)
        assert tree.seconds > grid.seconds

    def test_cache_hot_drops_build_cost(self, dataset):
        profile = _profile(dataset)
        constants = CostConstants()
        cold = estimate_cost("grid", profile, constants)
        hot = estimate_cost("grid", profile, constants, cache_hot=True)
        assert hot.seconds < cold.seconds
        assert hot.seconds == pytest.approx(
            cold.seconds - profile.n * constants.build_per_particle_s
        )

    def test_adm_error_is_alpha_of_m(self, dataset):
        profile = _profile(dataset)
        estimate = estimate_cost(
            "grid", profile, CostConstants(), mode="adm", levels=3
        )
        assert estimate.error == pytest.approx(
            non_covering_factor(3, profile.num_buckets)
        )

    def test_adm_needs_a_budget(self, dataset):
        with pytest.raises(QueryError, match="levels or error_bound"):
            estimate_cost(
                "grid", _profile(dataset), CostConstants(), mode="adm"
            )

    def test_unknown_engine_rejected(self, dataset):
        with pytest.raises(QueryError, match="no cost model"):
            estimate_cost("warp", _profile(dataset), CostConstants())

    def test_profile_start_level_fits_first_bucket(self, dataset):
        # The start map is the first level whose cell diagonal fits
        # inside one bucket (Sec. IV's starting-level rule).
        profile = _profile(dataset, num_buckets=4)
        sides = np.asarray(dataset.box.sides, dtype=float)
        diag = float(np.sqrt((sides**2).sum()))
        request = SDHRequest(num_buckets=4).normalize()
        width = float(request.resolved_spec(dataset).edges[1])
        assert diag / 2**profile.start_level <= width


class TestCalibration:
    def test_round_trip_via_file(self, tmp_path):
        calibration = Calibration(
            constants=CostConstants(dist_pair_s=1.5e-8),
            cpu_count=4,
            source="measured",
        )
        path = save_calibration(calibration, str(tmp_path / "cal.json"))
        loaded = load_calibration(path)
        assert loaded.constants == calibration.constants
        assert loaded.cpu_count == 4
        assert loaded.calibrated
        assert loaded.source == path

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text(json.dumps({"version": 99, "constants": {}}))
        with pytest.raises(QueryError, match="unsupported calibration"):
            load_calibration(str(path))

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        with pytest.raises(QueryError, match="not valid JSON"):
            load_calibration(str(path))

    def test_env_override_controls_default_path(self, monkeypatch, tmp_path):
        target = str(tmp_path / "custom.json")
        monkeypatch.setenv("REPRO_SDH_CALIBRATION", target)
        assert default_calibration_path() == target

    def test_get_calibration_falls_back_to_defaults(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            "REPRO_SDH_CALIBRATION", str(tmp_path / "missing.json")
        )
        _reset_calibration_cache(None)
        calibration = get_calibration()
        assert not calibration.calibrated
        assert calibration.constants == CostConstants()

    def test_get_calibration_explicit_missing_path_raises(self, tmp_path):
        with pytest.raises(QueryError, match="no calibration file"):
            get_calibration(str(tmp_path / "nope.json"))

    def test_calibrate_produces_positive_constants(self):
        calibration = calibrate(scale=0.05)
        assert calibration.calibrated
        assert calibration.cpu_count == (os.cpu_count() or 1)
        for value in calibration.constants.to_dict().values():
            assert value > 0


class TestPlanRequest:
    def test_auto_plans_an_exact_engine(self, dataset):
        plan = plan_request(SDHRequest(num_buckets=16), dataset)
        assert plan.mode == "exact"
        assert plan.engine in ("brute", "grid", "tree", "parallel")
        # Candidates are ranked cheapest-first and the winner leads.
        seconds = [c.estimate.seconds for c in plan.candidates]
        assert seconds == sorted(seconds)
        assert plan.candidates[0] is plan.chosen

    def test_executable_request_does_not_replan(self, dataset):
        plan = plan_request(SDHRequest(num_buckets=16), dataset)
        executable = plan.request
        assert executable.planner == "off"
        assert executable.engine == plan.engine
        assert executable.latency_budget_ms is None

    def test_planned_run_matches_forced_engines(self, dataset):
        plan = plan_request(SDHRequest(num_buckets=8), dataset)
        routed = compute_sdh(dataset, plan.request)
        for engine in ("brute", "grid", "tree"):
            forced = compute_sdh(
                dataset, SDHRequest(num_buckets=8, engine=engine)
            )
            assert np.array_equal(routed.counts, forced.counts)

    def test_explicit_engine_is_respected(self, dataset):
        plan = plan_request(
            SDHRequest(num_buckets=16, engine="tree"), dataset
        )
        assert plan.engine == "tree"
        assert all(c.engine == "tree" for c in plan.candidates)

    def test_error_bound_selects_adm_with_table_iii_m(self, dataset):
        # Acceptance rule: error_bound=epsilon gets m = log2(1/epsilon)
        # (the smallest m with alpha(m) <= epsilon) with no caller hints.
        epsilon = 0.03
        plan = plan_request(
            SDHRequest(num_buckets=16, error_bound=epsilon), dataset
        )
        assert plan.mode == "adm"
        assert plan.chosen.levels == choose_levels_for_error(
            epsilon, 16, dim=2
        )
        assert plan.chosen.estimate.error <= epsilon

    def test_explicit_levels_win_over_error_bound_rule(self, dataset):
        plan = plan_request(
            SDHRequest(num_buckets=16, levels=2), dataset
        )
        assert plan.mode == "adm"
        assert plan.chosen.levels == 2

    def test_infeasible_budget_raises_typed_error(self, dataset):
        with pytest.raises(SLOInfeasibleError, match="infeasible"):
            plan_request(
                SDHRequest(num_buckets=16, latency_budget_ms=1e-4),
                dataset,
            )

    def test_feasible_budget_filters_candidates(self, dataset):
        unconstrained = plan_request(SDHRequest(num_buckets=16), dataset)
        budget = unconstrained.chosen.estimate.seconds * 1000.0 * 2.0
        plan = plan_request(
            SDHRequest(num_buckets=16, latency_budget_ms=budget),
            dataset,
        )
        assert plan.chosen.estimate.seconds * 1000.0 <= budget
        slow = [c for c in plan.candidates if not c.admitted]
        for candidate in slow:
            assert candidate.estimate.seconds * 1000.0 > budget

    def test_workers_hint_routes_to_parallel(self, dataset):
        plan = plan_request(
            SDHRequest(num_buckets=16, workers=3), dataset
        )
        assert plan.engine == "parallel"
        assert plan.chosen.workers == 3

    def test_forced_parallel_on_single_core_still_plans(self, dataset):
        _reset_calibration_cache(
            Calibration(
                constants=CostConstants(), cpu_count=1, source="default"
            )
        )
        plan = plan_request(
            SDHRequest(num_buckets=16, engine="parallel"), dataset
        )
        assert plan.engine == "parallel"
        assert plan.chosen.workers == 1

    def test_unpriceable_engine_skipped_under_auto(self, dataset):
        grid = get_engine("grid")
        register_engine("unpriced", grid.run, grid.capabilities)
        try:
            plan = plan_request(SDHRequest(num_buckets=16), dataset)
            assert all(
                c.engine != "unpriced" for c in plan.candidates
            )
            forced = plan_request(
                SDHRequest(num_buckets=16, engine="unpriced"), dataset
            )
            assert forced.engine == "unpriced"
        finally:
            unregister_engine("unpriced")

    def test_to_dict_is_json_ready(self, dataset):
        plan = plan_request(SDHRequest(num_buckets=16), dataset)
        body = json.loads(json.dumps(plan.to_dict()))
        assert body["engine"] == plan.engine
        assert body["mode"] == "exact"
        assert body["calibrated"] is False
        assert len(body["candidates"]) == len(plan.candidates)

    def test_explain_marks_the_choice(self, dataset):
        plan = plan_request(SDHRequest(num_buckets=16), dataset)
        text = plan.explain()
        assert "workload:" in text
        assert "candidates (cheapest first):" in text
        assert f"* 1. {plan.engine}" in text

    def test_restricted_request_skips_incapable_engines(self, dataset):
        # Only grid supports periodic + approximate; periodic exact is
        # served by brute/grid/parallel but never the tree engine.
        plan = plan_request(
            SDHRequest(num_buckets=8, periodic=True), dataset
        )
        assert all(c.engine != "tree" for c in plan.candidates)

    def test_decisions_counter_increments(self, dataset):
        from repro.observability import get_registry

        counter = get_registry().counter(
            "planner_decisions_total",
            "Execution strategies chosen by the cost-based planner",
            labelnames=("engine", "mode"),
        )
        plan = plan_request(SDHRequest(num_buckets=16), dataset)
        labelled = counter.labels(engine=plan.engine, mode="exact")
        before = labelled.value
        plan_request(SDHRequest(num_buckets=16), dataset)
        assert labelled.value == before + 1


class TestAdmit:
    def test_error_bound_infeasible_names_best(self, dataset):
        plan = plan_request(SDHRequest(num_buckets=16, levels=1), dataset)
        with pytest.raises(SLOInfeasibleError, match="best achievable"):
            admit(list(plan.candidates), error_bound=1e-9)

    def test_no_slo_admits_everything(self, dataset):
        plan = plan_request(SDHRequest(num_buckets=16), dataset)
        assert admit(list(plan.candidates)) == list(plan.candidates)


class TestQueryIntegration:
    def test_compute_sdh_routes_through_planner(self, dataset):
        # planner="auto" + engine="auto" must produce the same counts
        # as any forced engine (neutrality at the query layer).
        auto = compute_sdh(dataset, SDHRequest(num_buckets=8))
        forced = compute_sdh(
            dataset, SDHRequest(num_buckets=8, engine="grid")
        )
        assert np.array_equal(auto.counts, forced.counts)

    def test_planner_off_uses_static_rule(self, dataset):
        hist = compute_sdh(
            dataset, SDHRequest(num_buckets=8, planner="off")
        )
        forced = compute_sdh(
            dataset, SDHRequest(num_buckets=8, engine="grid")
        )
        assert np.array_equal(hist.counts, forced.counts)

    def test_budget_flows_through_compute_sdh(self, dataset):
        with pytest.raises(SLOInfeasibleError):
            compute_sdh(
                dataset,
                SDHRequest(num_buckets=8, latency_budget_ms=1e-4),
            )


class TestPlannerNeutrality:
    """Planner-selected execution is bit-identical to forced engines."""

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_families(self, seed):
        from repro.verify import check_planner_neutrality, generate_case

        case = generate_case(seed)
        assert check_planner_neutrality(
            case.particles, case.request, case=case.name, seed=seed
        ) == []

    @pytest.mark.parametrize(
        "maker", [uniform, zipf_clustered], ids=["uniform", "zipf"]
    )
    def test_direct_datasets(self, maker):
        from repro.verify import check_planner_neutrality

        data = maker(600, dim=2, rng=3)
        assert check_planner_neutrality(
            data, SDHRequest(num_buckets=12)
        ) == []

    def test_approximate_requests_are_exempt(self, dataset):
        from repro.verify import check_planner_neutrality

        assert check_planner_neutrality(
            dataset, SDHRequest(num_buckets=16, error_bound=0.05)
        ) == []


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="cost-model fidelity needs a >=4-core host for stable timings",
)
class TestCostModelFidelity:
    """Predicted costs must rank engines like measured wall-clock."""

    def test_rank_correlation_across_sizes(self):
        import time

        calibration = calibrate(scale=0.2)
        engines = ("brute", "grid", "tree")
        agreements = []
        for n in (400, 1500, 4000):
            data = uniform(n, dim=2, rng=n)
            request = SDHRequest(num_buckets=16).normalize()
            profile = profile_workload(
                data, request.resolved_spec(data)
            )
            predicted = []
            measured = []
            for engine in engines:
                predicted.append(
                    estimate_cost(
                        engine, profile, calibration.constants
                    ).seconds
                )
                started = time.perf_counter()
                compute_sdh(data, request.replace(engine=engine))
                measured.append(time.perf_counter() - started)
            predicted_rank = np.argsort(np.argsort(predicted))
            measured_rank = np.argsort(np.argsort(measured))
            # Spearman rank correlation over 3 engines, by hand.
            d2 = float(((predicted_rank - measured_rank) ** 2).sum())
            agreements.append(1.0 - 6.0 * d2 / (3 * (9 - 1)))
        # The model must order engines correctly on average; a single
        # noisy inversion on one size is tolerated.
        assert float(np.mean(agreements)) >= 0.5

"""Tests for repro.quadtree.tree (the density-map tree)."""

import numpy as np
import pytest

from repro.data import figure1_dataset, random_types, uniform
from repro.errors import TreeError
from repro.quadtree import (
    DensityMapTree,
    chain_heads,
    default_leaf_occupancy,
    tree_height,
)


class TestTreeHeight:
    """Eq. (2): H = ceil(log_{2^d}(N / beta)) + 1."""

    def test_2d_values(self):
        beta = default_leaf_occupancy(2)  # 5
        assert tree_height(5, 2) == 1
        assert tree_height(20, 2) == 2
        assert tree_height(80, 2) == 3
        assert tree_height(int(5 * 4**6), 2) == 7
        assert beta == 5.0

    def test_3d_values(self):
        assert default_leaf_occupancy(3) == 9.0
        assert tree_height(9, 3) == 1
        assert tree_height(72, 3) == 2

    def test_doubling_n_adds_d_levels(self):
        """Increasing N to 2^d * N adds exactly one level (used in the
        Theorem 1 recurrence)."""
        for n in (100, 1000, 10000):
            assert tree_height(4 * n, 2) == tree_height(n, 2) + 1
            assert tree_height(8 * n, 3) == tree_height(n, 3) + 1

    def test_custom_beta(self):
        assert tree_height(100, 2, beta=100) == 1
        assert tree_height(101, 2, beta=100) == 2

    def test_rejects_bad_inputs(self):
        with pytest.raises(TreeError):
            tree_height(0, 2)
        with pytest.raises(TreeError):
            tree_height(10, 2, beta=0)


class TestStructure:
    def setup_method(self):
        self.data = uniform(300, dim=2, rng=11)
        self.tree = DensityMapTree(self.data)

    def test_validate_passes(self):
        self.tree.validate()

    def test_root_holds_everything(self):
        assert self.tree.root.p_count == 300
        assert self.tree.root.level == 0

    def test_level_counts_sum_to_n(self):
        for level in range(self.tree.height):
            dm = self.tree.density_map(level)
            assert sum(c.p_count for c in dm.cells) == 300

    def test_level_sizes(self):
        for level in range(self.tree.height):
            assert len(self.tree.density_map(level)) == 4**level

    def test_sibling_chain_covers_level(self):
        """The paper's next-pointer layout: walking the chain from the
        head enumerates the whole density map."""
        for level in range(self.tree.height):
            dm = self.tree.density_map(level)
            assert len(list(dm.iter_chain())) == 4**level

    def test_chain_heads(self):
        heads = chain_heads(self.tree)
        assert len(heads) == self.tree.height
        assert heads[0] is self.tree.root

    def test_children_sum(self):
        for level in range(self.tree.height - 1):
            for node in self.tree.density_map(level).cells:
                total = sum(c.p_count for c in node.children())
                assert total == node.p_count

    def test_leaf_plists(self):
        leaves = self.tree.density_map(self.tree.height - 1).cells
        sizes = [
            0 if n.p_list is None else n.p_list.size for n in leaves
        ]
        assert sum(sizes) == 300

    def test_leaf_points_inside_cell(self):
        leaves = self.tree.density_map(self.tree.height - 1).cells
        for node in leaves:
            if node.p_count:
                pts = self.tree.leaf_points(node)
                assert bool(node.bounds.contains_points(pts).all())

    def test_cell_diagonal_halves_per_level(self):
        diags = [
            self.tree.density_map(level).cell_diagonal
            for level in range(self.tree.height)
        ]
        for coarse, fine in zip(diags, diags[1:]):
            assert fine == pytest.approx(coarse / 2)

    def test_level_out_of_range(self):
        with pytest.raises(TreeError):
            self.tree.density_map(self.tree.height)
        with pytest.raises(TreeError):
            self.tree.density_map(-1)

    def test_explicit_height(self):
        tree = DensityMapTree(self.data, height=3)
        assert tree.height == 3
        with pytest.raises(TreeError):
            DensityMapTree(self.data, height=0)

    def test_node_count(self):
        tree = DensityMapTree(self.data, height=3)
        assert tree.node_count() == 1 + 4 + 16


class TestStartLevel:
    def test_start_level_matches_definition(self):
        data = uniform(2000, dim=2, rng=3)
        tree = DensityMapTree(data)
        p = data.max_possible_distance / 8
        level = tree.start_level_for(p)
        assert level is not None
        assert tree.density_map(level).cell_diagonal <= p
        if level > 0:
            assert tree.density_map(level - 1).cell_diagonal > p

    def test_no_start_level_for_tiny_buckets(self):
        data = uniform(50, dim=2, rng=3)
        tree = DensityMapTree(data)
        assert tree.start_level_for(1e-9) is None


class TestMBR:
    def test_mbrs_contained_and_tight(self):
        data = uniform(500, dim=2, rng=5)
        tree = DensityMapTree(data, with_mbr=True)
        tree.validate()
        assert tree.has_mbr
        root_mbr = tree.root.mbr
        assert root_mbr is not None
        # Root MBR is the tight bounding box of all points.
        np.testing.assert_allclose(
            root_mbr.lo, data.positions.min(axis=0)
        )
        np.testing.assert_allclose(
            root_mbr.hi, data.positions.max(axis=0)
        )

    def test_empty_cells_have_no_mbr(self):
        data = figure1_dataset(rng=0)
        tree = DensityMapTree(data, height=4, with_mbr=True)
        empties = [
            n
            for n in tree.density_map(3).cells
            if n.p_count == 0
        ]
        assert empties
        assert all(n.mbr is None for n in empties)

    def test_resolution_bounds_switch(self):
        data = uniform(200, dim=2, rng=5)
        tree = DensityMapTree(data, with_mbr=True)
        node = tree.root
        assert node.resolution_bounds(False) is node.bounds
        assert node.resolution_bounds(True) is node.mbr


class TestTypeCounts:
    def test_type_counts_aggregate(self, rng):
        data = random_types(
            uniform(400, dim=2, rng=rng), {"A": 1, "B": 1}, rng=rng
        )
        tree = DensityMapTree(data)
        assert tree.num_types == 2
        root_counts = tree.root.type_counts
        assert root_counts is not None
        assert root_counts.sum() == 400
        for level in range(tree.height):
            for node in tree.density_map(level).cells:
                assert node.type_counts is not None
                assert node.type_counts.sum() == node.p_count

    def test_untyped_tree(self):
        tree = DensityMapTree(uniform(50, rng=1))
        assert tree.num_types == 0
        assert tree.root.type_counts is None


class TestThreeD:
    def test_octree_structure(self):
        data = uniform(300, dim=3, rng=13)
        tree = DensityMapTree(data)
        tree.validate()
        for level in range(tree.height):
            assert len(tree.density_map(level)) == 8**level

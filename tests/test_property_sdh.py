"""Property-based tests (hypothesis) for the SDH engines.

Invariants:

* exactness — tree, grid, and brute force are integer-identical on any
  dataset/bucketing hypothesis can draw;
* mass conservation — every exact SDH holds exactly N(N-1)/2 counts,
  every approximate SDH the same (fractionally);
* heuristics conserve mass and allocate only to overlapped buckets.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    UniformBuckets,
    adm_sdh,
    brute_force_sdh,
    dm_sdh_grid,
    dm_sdh_tree,
    make_allocator,
)
from repro.core.heuristics import AllocationContext
from repro.data import ParticleSet

# Coordinates on a modest lattice of floats keeps runtime sane while
# still producing coincident points, boundary points, and clusters.
coord = st.floats(
    min_value=0.0,
    max_value=1.0,
    allow_nan=False,
    allow_infinity=False,
    width=32,
)


@st.composite
def particle_sets(draw, dim=2, min_size=2, max_size=40):
    n = draw(st.integers(min_size, max_size))
    rows = draw(
        st.lists(
            st.tuples(*([coord] * dim)),
            min_size=n,
            max_size=n,
        )
    )
    pts = np.asarray(rows, dtype=float)
    # Guard against a fully degenerate (single-point) cloud, which has
    # zero diagonal; shift one point if needed.
    if np.allclose(pts, pts[0]):
        pts = pts.copy()
        pts[0] = pts[0] + 0.5
        pts = np.clip(pts, 0.0, 1.0)
    from repro.geometry import AABB

    return ParticleSet(pts, box=AABB.cube(1.0 + 1e-9, dim))


@given(particle_sets(), st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_engines_identical_2d(data, num_buckets):
    spec = UniformBuckets.with_count(
        data.max_possible_distance, num_buckets
    )
    hb = brute_force_sdh(data, spec=spec)
    hg = dm_sdh_grid(data, spec=spec)
    ht = dm_sdh_tree(data, spec=spec)
    assert hb.total == data.num_pairs
    np.testing.assert_array_equal(hb.counts, hg.counts)
    np.testing.assert_array_equal(hb.counts, ht.counts)


@given(particle_sets(dim=3, max_size=25), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_engines_identical_3d(data, num_buckets):
    spec = UniformBuckets.with_count(
        data.max_possible_distance, num_buckets
    )
    hb = brute_force_sdh(data, spec=spec)
    hg = dm_sdh_grid(data, spec=spec)
    np.testing.assert_array_equal(hb.counts, hg.counts)


@given(
    particle_sets(max_size=30),
    st.integers(1, 8),
    st.integers(0, 4),
    st.sampled_from([1, 2, 3]),
)
@settings(max_examples=40, deadline=None)
def test_approximate_mass_conservation(data, num_buckets, levels, heuristic):
    spec = UniformBuckets.with_count(
        data.max_possible_distance, num_buckets
    )
    h = adm_sdh(
        data, spec=spec, levels=levels, heuristic=heuristic, rng=0
    )
    assert abs(h.total - data.num_pairs) < 1e-6 * max(data.num_pairs, 1)
    assert (h.counts >= -1e-9).all()


@given(
    st.integers(1, 16),
    st.lists(
        st.tuples(
            st.floats(0, 10, allow_nan=False),
            st.floats(0, 6, allow_nan=False),
            st.floats(0.5, 100, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    ),
    st.sampled_from([1, 2, 3]),
)
@settings(max_examples=80, deadline=None)
def test_allocators_conserve_and_localize(num_buckets, rows, heuristic):
    spec = UniformBuckets(1.0, num_buckets)
    u = np.asarray([min(r[0], spec.high) for r in rows])
    v = np.minimum(u + np.asarray([r[1] for r in rows]), spec.high)
    w = np.asarray([r[2] for r in rows])
    allocator = make_allocator(heuristic)
    out = allocator.allocate(
        spec, u, v, w, AllocationContext(rng=np.random.default_rng(0))
    )
    assert abs(out.sum() - w.sum()) < 1e-9 * max(w.sum(), 1.0)
    # Buckets entirely outside the union of ranges stay empty.
    lo = int(np.clip(spec.bucket_of(u.min(keepdims=True)), 0,
                     num_buckets - 1)[0])
    hi = int(np.clip(spec.bucket_of(v.max(keepdims=True)), 0,
                     num_buckets - 1)[0])
    # Buckets outside the union of ranges hold nothing (up to the
    # difference-array's cancellation noise of ~1e-16 per pair).
    assert abs(out[:lo].sum()) < 1e-9
    assert abs(out[hi + 1 :].sum()) < 1e-9


@given(particle_sets(max_size=30), st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_periodic_engines_identical(data, num_buckets):
    """Min-image grid engine == min-image brute force, exactly."""
    spec = UniformBuckets.with_count(
        data.max_periodic_distance, num_buckets
    )
    hb = brute_force_sdh(data, spec=spec, periodic=True)
    hg = dm_sdh_grid(data, spec=spec, periodic=True)
    assert hb.total == data.num_pairs
    np.testing.assert_array_equal(hb.counts, hg.counts)


@given(particle_sets(max_size=25), st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_kd_partition_identical(data, num_buckets):
    """The alternative partitioning plan is just as exact."""
    from repro.partition import kd_sdh

    spec = UniformBuckets.with_count(
        data.max_possible_distance, num_buckets
    )
    hb = brute_force_sdh(data, spec=spec)
    hk = kd_sdh(data, spec=spec, leaf_capacity=4)
    np.testing.assert_array_equal(hb.counts, hk.counts)


@given(particle_sets(max_size=25), st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_histogram_independent_of_tree_height(data, height):
    spec = UniformBuckets.with_count(data.max_possible_distance, 4)
    from repro.quadtree import GridPyramid

    reference = brute_force_sdh(data, spec=spec)
    pyramid = GridPyramid(data, height=height)
    np.testing.assert_array_equal(
        reference.counts, dm_sdh_grid(pyramid, spec=spec).counts
    )

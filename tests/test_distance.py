"""Tests for repro.geometry.distance (vectorized distance helpers)."""

import numpy as np
import pytest

from repro.geometry import (
    AABB,
    box_pair_bounds,
    cross_distances,
    grid_pair_bounds,
    iter_cross_distance_chunks,
    iter_self_distance_chunks,
    pairwise_distances,
)


class TestGridPairBounds:
    def test_matches_aabb_bounds(self, rng):
        """Offset arithmetic must agree with explicit box geometry."""
        side = 0.25
        idx1 = rng.integers(0, 20, size=(50, 2))
        idx2 = rng.integers(0, 20, size=(50, 2))
        u, v = grid_pair_bounds(idx1, idx2, side)
        for k in range(50):
            a = AABB.from_arrays(idx1[k] * side, (idx1[k] + 1) * side)
            b = AABB.from_arrays(idx2[k] * side, (idx2[k] + 1) * side)
            assert u[k] == pytest.approx(a.min_distance(b))
            assert v[k] == pytest.approx(a.max_distance(b))

    def test_3d(self, rng):
        side = 1.0
        idx1 = rng.integers(0, 8, size=(30, 3))
        idx2 = rng.integers(0, 8, size=(30, 3))
        u, v = grid_pair_bounds(idx1, idx2, side)
        for k in range(30):
            a = AABB.from_arrays(idx1[k] * side, (idx1[k] + 1) * side)
            b = AABB.from_arrays(idx2[k] * side, (idx2[k] + 1) * side)
            assert u[k] == pytest.approx(a.min_distance(b))
            assert v[k] == pytest.approx(a.max_distance(b))

    def test_per_axis_sides(self):
        """Rectangular cells (non-cubic box) use per-axis side lengths."""
        idx1 = np.array([[0, 0]])
        idx2 = np.array([[2, 3]])
        sides = np.array([1.0, 2.0])
        u, v = grid_pair_bounds(idx1, idx2, sides)
        # gap: (2-1)*1, (3-1)*2 ; span: 3*1, 4*2
        assert u[0] == pytest.approx(np.hypot(1.0, 4.0))
        assert v[0] == pytest.approx(np.hypot(3.0, 8.0))

    def test_same_cell(self):
        idx = np.array([[3, 4]])
        u, v = grid_pair_bounds(idx, idx, 0.5)
        assert u[0] == 0.0
        assert v[0] == pytest.approx(0.5 * np.sqrt(2))


class TestBoxPairBounds:
    def test_matches_aabb(self, rng):
        lo1 = rng.uniform(0, 5, size=(40, 2))
        hi1 = lo1 + rng.uniform(0.1, 2, size=(40, 2))
        lo2 = rng.uniform(0, 5, size=(40, 2))
        hi2 = lo2 + rng.uniform(0.1, 2, size=(40, 2))
        u, v = box_pair_bounds(lo1, hi1, lo2, hi2)
        for k in range(40):
            a = AABB.from_arrays(lo1[k], hi1[k])
            b = AABB.from_arrays(lo2[k], hi2[k])
            assert u[k] == pytest.approx(a.min_distance(b))
            assert v[k] == pytest.approx(a.max_distance(b))


class TestPairwiseDistances:
    def test_small_triangle(self):
        pts = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 4.0]])
        d = np.sort(pairwise_distances(pts))
        assert d == pytest.approx([3.0, 4.0, 5.0])

    def test_count(self, rng):
        pts = rng.uniform(size=(25, 3))
        assert pairwise_distances(pts).size == 25 * 24 // 2

    def test_fewer_than_two_points(self):
        assert pairwise_distances(np.array([[1.0, 2.0]])).size == 0

    def test_cross_distances(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0], [0.0, 2.0]])
        assert sorted(cross_distances(a, b)) == pytest.approx([1.0, 2.0])

    def test_cross_empty(self):
        assert cross_distances(np.empty((0, 2)), np.ones((3, 2))).size == 0


class TestChunkedIterators:
    def test_self_chunks_cover_all_pairs(self, rng):
        pts = rng.uniform(size=(73, 2))
        chunked = np.sort(
            np.concatenate(list(iter_self_distance_chunks(pts, chunk=10)))
        )
        direct = np.sort(pairwise_distances(pts))
        assert chunked.size == direct.size
        np.testing.assert_allclose(chunked, direct)

    def test_cross_chunks_cover_all_pairs(self, rng):
        a = rng.uniform(size=(31, 3))
        b = rng.uniform(size=(17, 3))
        chunked = np.sort(
            np.concatenate(list(iter_cross_distance_chunks(a, b, chunk=7)))
        )
        direct = np.sort(cross_distances(a, b))
        np.testing.assert_allclose(chunked, direct)

    def test_chunk_boundaries_exact_multiple(self, rng):
        pts = rng.uniform(size=(20, 2))
        total = sum(
            d.size for d in iter_self_distance_chunks(pts, chunk=10)
        )
        assert total == 20 * 19 // 2

"""Focused tests for the RDF normalization machinery."""

import numpy as np
import pytest

from repro import UniformBuckets, brute_force_sdh, uniform
from repro.errors import QueryError
from repro.physics import rdf_from_histogram
from repro.physics.rdf import _box_distance_cdf_diffs


class TestBoxDistanceDistribution:
    """The exact finite-box ideal-gas normalization."""

    @pytest.mark.parametrize("dim", [2, 3])
    def test_fractions_sum_to_one(self, dim):
        sides = (1.0,) * dim
        edges = np.linspace(0.0, np.sqrt(dim), 30)
        fractions = _box_distance_cdf_diffs(sides, edges)
        assert fractions.sum() == pytest.approx(1.0, abs=1e-6)

    def test_matches_monte_carlo_2d(self, rng):
        sides = (1.0, 1.0)
        edges = np.linspace(0.0, np.sqrt(2.0), 15)
        fractions = _box_distance_cdf_diffs(sides, edges)
        a = rng.uniform(size=(400000, 2))
        b = rng.uniform(size=(400000, 2))
        d = np.sqrt(((a - b) ** 2).sum(axis=1))
        mc, _unused = np.histogram(d, bins=edges)
        np.testing.assert_allclose(
            fractions, mc / d.size, atol=0.003
        )

    def test_rectangular_box(self, rng):
        sides = (2.0, 0.5)
        edges = np.linspace(0.0, np.hypot(2.0, 0.5), 12)
        fractions = _box_distance_cdf_diffs(sides, edges)
        a = rng.uniform(size=(300000, 2)) * np.asarray(sides)
        b = rng.uniform(size=(300000, 2)) * np.asarray(sides)
        d = np.sqrt(((a - b) ** 2).sum(axis=1))
        mc, _unused = np.histogram(d, bins=edges)
        np.testing.assert_allclose(
            fractions, mc / d.size, atol=0.004
        )


class TestNormalizationModes:
    def setup_method(self):
        self.data = uniform(5000, dim=2, rng=121)
        spec = UniformBuckets.with_count(
            self.data.max_possible_distance, 40
        )
        self.histogram = brute_force_sdh(self.data, spec=spec)

    def test_corrected_flat_over_whole_range(self):
        rdf = rdf_from_histogram(
            self.histogram, self.data, finite_size="corrected"
        )
        # Uniform data: g ~ 1 even at large r (no finite-size decay).
        mid = rdf.g[5:30]
        np.testing.assert_allclose(mid, 1.0, atol=0.1)

    def test_shell_decays_at_large_r(self):
        rdf = rdf_from_histogram(
            self.histogram, self.data, finite_size="shell"
        )
        assert rdf.g[2] > 0.8  # near-ideal at small r
        assert rdf.g[30] < 0.6  # strongly depressed at large r

    def test_unknown_mode_rejected(self):
        with pytest.raises(QueryError):
            rdf_from_histogram(
                self.histogram, self.data, finite_size="magic"
            )

    def test_truncated_guards(self):
        rdf = rdf_from_histogram(self.histogram, self.data)
        with pytest.raises(QueryError):
            rdf.truncated(1e-9)
        shorter = rdf.truncated(rdf.edges[10])
        assert len(shorter) == 10
        assert shorter.density == rdf.density

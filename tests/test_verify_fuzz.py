"""Tests for the seeded fuzzer, shrinking, and the corpus."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.verify import (
    Corpus,
    FuzzCase,
    evaluate_case,
    generate_case,
    run_verification,
    shrink_case,
)
from repro.verify.fuzz import FAMILIES, MAX_FUZZ_PARTICLES


class TestGeneration:
    def test_deterministic_in_seed(self):
        for seed in (0, 7, 123):
            a = generate_case(seed)
            b = generate_case(seed)
            assert a.name == b.name
            assert np.array_equal(a.particles.positions, b.particles.positions)
            assert a.request == b.request

    def test_families_all_reachable(self):
        seen = {generate_case(seed).name for seed in range(60)}
        assert seen == {name for name, _ in FAMILIES}

    def test_sizes_bounded(self):
        for seed in range(40):
            case = generate_case(seed)
            assert 1 <= case.particles.size <= 2 * MAX_FUZZ_PARTICLES

    def test_coordinates_are_dyadic(self):
        from repro.verify.invariants import DYADIC_BITS

        scale = float(1 << DYADIC_BITS)
        for seed in range(20):
            scaled = generate_case(seed).particles.positions * scale
            assert np.array_equal(scaled, np.round(scaled))

    def test_weights_and_cross_families_reachable(self):
        cases = [generate_case(seed) for seed in range(len(FAMILIES))]
        by_name = {case.name: case for case in cases}
        assert by_name["weights"].particles.weighted
        cross = by_name["cross"]
        assert cross.particles_b is not None
        assert cross.particles.box == cross.particles_b.box

    def test_case_roundtrips_through_json(self):
        for seed in (2, 9, 31):
            case = generate_case(seed)
            body = json.loads(json.dumps(case.to_dict()))
            back = FuzzCase.from_dict(body)
            assert back.name == case.name and back.seed == case.seed
            assert np.array_equal(
                back.particles.positions, case.particles.positions
            )
            assert np.allclose(
                np.asarray(back.particles.box.lo),
                np.asarray(case.particles.box.lo),
            )
            if case.particles.types is None:
                assert back.particles.types is None
            else:
                assert np.array_equal(
                    back.particles.types, case.particles.types
                )
            assert back.request == case.request

    def test_weighted_and_cross_cases_roundtrip_exactly(self):
        cases = [generate_case(seed) for seed in range(len(FAMILIES))]
        picked = [c for c in cases if c.particles.weighted or c.cross]
        assert picked  # the new families must appear in one round-robin lap
        for case in picked:
            back = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
            assert _same_particles(back.particles, case.particles)
            if case.cross:
                assert _same_particles(back.particles_b, case.particles_b)
            else:
                assert back.particles_b is None
            assert back.request == case.request


def _same_particles(got, want) -> bool:
    # Bit-exact: repr-based JSON floats must round-trip every double,
    # including 1e-140-scale weights.
    if not np.array_equal(got.positions, want.positions):
        return False
    if (got.weights is None) != (want.weights is None):
        return False
    if got.weights is not None and not np.array_equal(
        got.weights, want.weights
    ):
        return False
    return got.box == want.box


class TestEvaluation:
    @pytest.mark.parametrize("seed", range(12))
    def test_healthy_engines_produce_no_discrepancies(self, seed):
        assert evaluate_case(generate_case(seed)) == []


class TestShrinking:
    def test_shrinks_to_minimal_particle_count(self):
        case = next(
            generate_case(s)
            for s in range(50)
            if generate_case(s).particles.size > 30
        )
        shrunk = shrink_case(case, fails=lambda c: c.particles.size >= 3)
        assert shrunk.particles.size == 3

    def test_non_failing_case_returned_unchanged(self):
        case = generate_case(1)
        assert shrink_case(case, fails=lambda c: False) is case

    def test_simplifies_request(self):
        case = generate_case(0).with_request(
            generate_case(0).request.replace(num_buckets=16)
        )

        def fails(candidate):
            return candidate.request.num_buckets is not None

        shrunk = shrink_case(case, fails=fails)
        assert shrunk.request.num_buckets == 1

    def test_erroring_predicate_not_shrunk_into(self):
        case = next(
            generate_case(s)
            for s in range(50)
            if generate_case(s).particles.size > 10
        )

        def fails(candidate):
            if candidate.particles.size < 5:
                raise RuntimeError("different bug")
            return candidate.particles.size >= 5

        shrunk = shrink_case(case, fails=fails)
        assert shrunk.particles.size == 5


class TestCorpus:
    def test_save_load_replay(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        case = generate_case(4)
        path = corpus.save(case, note="healthy case")
        assert path.exists()
        replayed, found = corpus.replay()
        assert replayed == 1 and found == []

    def test_name_collisions_get_suffixes(self, tmp_path):
        corpus = Corpus(tmp_path)
        case = generate_case(4)
        first = corpus.save(case)
        second = corpus.save(case)
        assert first != second and len(corpus.paths()) == 2

    def test_empty_directory_is_empty_corpus(self, tmp_path):
        corpus = Corpus(tmp_path / "missing")
        assert len(corpus) == 0
        assert corpus.replay() == (0, [])

    def test_committed_reproducers_replay_clean(self):
        # The corpus shipped with the repo: shrunk reproducers of bugs
        # that are now fixed.  Replay re-evaluates them from scratch —
        # no fuzzing involved — so a regression relights them.
        from pathlib import Path

        corpus = Corpus(Path(__file__).parent / "corpus")
        replayed, found = corpus.replay()
        assert replayed >= 1
        assert found == [], [d.to_dict() for d in found]

    def test_committed_corpus_covers_weighted_and_cross(self):
        # Guards the reproducers shipped for the weighted / cross-set
        # work: replay must keep exercising both code paths.
        from pathlib import Path

        cases = [
            case
            for _, case in Corpus(Path(__file__).parent / "corpus").cases()
        ]
        assert any(case.particles.weighted for case in cases)
        assert any(case.cross for case in cases)
        assert any(
            case.particles.weighted and case.request.type_pair is not None
            for case in cases
        )


class TestRunVerification:
    def test_clean_run_reports_ok(self):
        report = run_verification(seeds=4, adm=False)
        assert report.ok
        assert report.cases_run == 4
        assert report.seeds == [0, 1, 2, 3]
        body = report.to_dict()
        assert body["ok"] is True and body["discrepancies"] == []

    def test_seed_start_respected(self):
        report = run_verification(seeds=2, seed_start=10, adm=False)
        assert report.seeds == [10, 11]

    def test_counters_recorded(self):
        from repro.observability import get_registry

        registry = get_registry()
        before = _counter_total(registry, "verify_cases_total")
        run_verification(seeds=3, adm=False)
        after = _counter_total(registry, "verify_cases_total")
        assert after - before == 3

    def test_families_run_reported(self):
        # One full round-robin lap touches every family, so the JSON
        # report CI checks can assert the new families actually ran.
        report = run_verification(seeds=len(FAMILIES), adm=False)
        assert report.families_run == sorted(name for name, _ in FAMILIES)
        assert report.weighted_cases >= 1
        assert report.cross_cases >= 1
        body = report.to_dict()
        assert "weights" in body["families_run"]
        assert "cross" in body["families_run"]

    def test_corpus_replay_included(self, tmp_path):
        corpus = Corpus(tmp_path)
        corpus.save(generate_case(6))
        report = run_verification(seeds=1, corpus=corpus, adm=False)
        assert report.corpus_replayed == 1 and report.ok


def _counter_total(registry, name: str) -> float:
    return sum(registry.snapshot().get(name, {}).values())

"""Tests for repro.core.instrumentation (operation counters)."""

import pytest

from repro.core import SDHStats


class TestRecording:
    def test_record_batch_accumulates(self):
        stats = SDHStats()
        stats.record_batch(3, examined=10, resolved=4, resolved_distances=100.0)
        stats.record_batch(3, examined=5, resolved=1, resolved_distances=20.0)
        stats.record_batch(4, examined=7, resolved=7, resolved_distances=9.0)
        assert stats.resolve_calls == {3: 15, 4: 7}
        assert stats.resolved_pairs == {3: 5, 4: 7}
        assert stats.resolved_distances == {3: 120.0, 4: 9.0}
        assert stats.total_resolve_calls == 22
        assert stats.total_resolved_pairs == 12
        assert stats.total_operations == 22

    def test_total_operations_includes_distances(self):
        stats = SDHStats()
        stats.record_batch(0, 4, 2, 8.0)
        stats.distance_computations = 100
        assert stats.total_operations == 104

    def test_resolution_rate(self):
        stats = SDHStats()
        stats.record_batch(2, examined=8, resolved=4, resolved_distances=1.0)
        assert stats.resolution_rate(2) == pytest.approx(0.5)
        assert stats.resolution_rate(9) == 0.0

    def test_per_level_summary_sorted(self):
        stats = SDHStats()
        stats.record_batch(5, 10, 5, 0.0)
        stats.record_batch(3, 4, 1, 0.0)
        rows = stats.per_level_summary()
        assert [r[0] for r in rows] == [3, 5]
        assert rows[0] == (3, 4, 1, 0.25)

    def test_repr_smoke(self):
        stats = SDHStats()
        assert "SDHStats" in repr(stats)

"""Tests for repro.core.histogram (the result container)."""

import numpy as np
import pytest

from repro.core import DistanceHistogram, UniformBuckets
from repro.errors import QueryError


def make(counts, width=1.0):
    spec = UniformBuckets(width, len(counts))
    return DistanceHistogram(spec, np.asarray(counts, dtype=float))


class TestBasics:
    def test_empty_initialization(self):
        h = DistanceHistogram(UniformBuckets(1.0, 3))
        np.testing.assert_allclose(h.counts, 0.0)
        assert h.total == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QueryError):
            DistanceHistogram(UniformBuckets(1.0, 3), np.zeros(4))

    def test_counts_are_copied(self):
        source = np.array([1.0, 2.0])
        h = DistanceHistogram(UniformBuckets(1.0, 2), source)
        source[0] = 99.0
        assert h.counts[0] == 1.0

    def test_add_and_total(self):
        h = make([0, 0, 0])
        h.add(1, 5)
        h.add_counts(np.array([1.0, 1.0, 1.0]))
        assert h.total == 8.0
        np.testing.assert_allclose(h.counts, [1, 6, 1])

    def test_merge(self):
        a = make([1, 2])
        b = make([3, 4])
        merged = a.merge(b)
        np.testing.assert_allclose(merged.counts, [4, 6])
        # inputs untouched
        np.testing.assert_allclose(a.counts, [1, 2])

    def test_merge_spec_mismatch(self):
        with pytest.raises(QueryError):
            make([1, 2]).merge(make([1, 2, 3]))

    def test_centers_and_iteration(self):
        h = make([5, 7], width=2.0)
        np.testing.assert_allclose(h.centers, [1.0, 3.0])
        rows = list(h)
        assert rows == [(0.0, 2.0, 5.0), (2.0, 4.0, 7.0)]

    def test_equality(self):
        assert make([1, 2]) == make([1, 2])
        assert make([1, 2]) != make([1, 3])


class TestIntegerView:
    def test_integral_counts_pass(self):
        h = make([3.0, 4.0])
        np.testing.assert_array_equal(h.as_integers(), [3, 4])

    def test_fractional_counts_rejected(self):
        with pytest.raises(QueryError):
            make([1.5, 2.0]).as_integers()


class TestDensity:
    def test_density_integrates_to_one(self):
        h = make([2, 6, 2], width=0.5)
        total = (h.density() * h.spec.widths).sum()
        assert total == pytest.approx(1.0)

    def test_empty_histogram_density(self):
        h = make([0, 0])
        np.testing.assert_allclose(h.density(), 0.0)


class TestErrorMetric:
    """The paper's Sec. VI-B error rate: sum|h - h'| / sum h."""

    def test_identical_is_zero(self):
        assert make([5, 5]).error_rate(make([5, 5])) == 0.0

    def test_known_value(self):
        approx = make([4, 6])
        exact = make([5, 5])
        assert approx.error_rate(exact) == pytest.approx(0.2)

    def test_mass_moved_counts_twice(self):
        """Moving k counts between buckets costs 2k/total."""
        approx = make([10, 0])
        exact = make([5, 5])
        assert approx.error_rate(exact) == pytest.approx(1.0)

    def test_spec_mismatch(self):
        with pytest.raises(QueryError):
            make([1, 2]).error_rate(make([1, 2, 3]))

    def test_empty_reference(self):
        assert make([0, 0]).error_rate(make([0, 0])) == 0.0

    def test_max_bucket_deviation(self):
        approx = make([8, 2])
        exact = make([5, 5])
        assert approx.max_bucket_deviation(exact) == pytest.approx(0.3)

    def test_allclose(self):
        a = make([1.0, 2.0])
        b = make([1.0, 2.0 + 1e-12])
        assert a.allclose(b)
        assert not a.allclose(make([1.0, 3.0]))


class TestText:
    def test_to_text_contains_edges(self):
        text = make([1, 9]).to_text(width=10)
        assert "0.0000" in text
        assert "#" in text

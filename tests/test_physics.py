"""Tests for repro.physics (RDF, structure factor, thermodynamics)."""

import math

import numpy as np
import pytest
import scipy.special

from repro.core import UniformBuckets, adm_sdh, brute_force_sdh, compute_sdh
from repro.data import lattice, uniform
from repro.errors import QueryError
from repro.physics import (
    excess_internal_energy,
    lennard_jones,
    lennard_jones_derivative,
    rdf_from_histogram,
    structure_factor,
    virial_pressure,
)
from repro.physics.structure import _bessel_j0


def make_rdf(data, num_buckets=60):
    h = compute_sdh(data, num_buckets=num_buckets)
    return rdf_from_histogram(h, data)


class TestRDF:
    def test_ideal_gas_small_r(self):
        """Uniform data: g(r) ~ 1 at small r (before finite-box decay)."""
        data = uniform(8000, dim=3, rng=91)
        rdf = make_rdf(data)
        small = rdf.g[2:8]
        np.testing.assert_allclose(small, 1.0, atol=0.12)

    def test_2d_normalization(self):
        data = uniform(8000, dim=2, rng=92)
        rdf = make_rdf(data)
        np.testing.assert_allclose(rdf.g[2:8], 1.0, atol=0.12)

    def test_lattice_peak_at_spacing(self):
        """A jittered lattice must show its nearest-neighbour peak."""
        data = lattice(20, dim=2, jitter=0.05, rng=0)
        spacing = 1.0 / 20
        # Truncate just past the nearest-neighbour shell so the peak
        # finder isolates it from the (denser) higher shells.
        rdf = make_rdf(data, num_buckets=200).truncated(1.3 * spacing)
        peak_r, peak_g = rdf.first_peak()
        assert peak_r == pytest.approx(spacing, rel=0.15)
        assert peak_g > 2.0

    def test_total_metadata(self):
        data = uniform(500, dim=3, rng=93)
        rdf = make_rdf(data, num_buckets=10)
        assert rdf.num_particles == 500
        assert rdf.dim == 3
        assert rdf.density == pytest.approx(500 / data.box.volume)
        assert len(rdf) == 10

    def test_coordination_number_counts_neighbours(self):
        """For uniform data, n(r) ~ rho * sphere volume."""
        data = uniform(6000, dim=3, rng=94)
        rdf = make_rdf(data, num_buckets=80)
        r_cut = 0.2
        expected = rdf.density * 4 / 3 * math.pi * r_cut**3
        got = rdf.coordination_number(r_cut)
        assert got == pytest.approx(expected, rel=0.15)

    def test_rdf_from_approximate_histogram(self):
        """The paper's point: an approximate SDH is still a good RDF."""
        data = uniform(4000, dim=2, rng=95)
        spec = UniformBuckets.with_count(data.max_possible_distance, 40)
        exact_rdf = rdf_from_histogram(
            brute_force_sdh(data, spec=spec), data
        )
        approx_rdf = rdf_from_histogram(
            adm_sdh(data, spec=spec, levels=2, heuristic=3, rng=0), data
        )
        r_max = 0.75 * data.max_possible_distance
        np.testing.assert_allclose(
            approx_rdf.truncated(r_max).g[1:],
            exact_rdf.truncated(r_max).g[1:],
            atol=0.08,
        )


class TestStructureFactor:
    def test_bessel_j0_accuracy(self):
        x = np.linspace(0.01, 60.0, 2000)
        np.testing.assert_allclose(
            _bessel_j0(x), scipy.special.j0(x), atol=2e-6
        )

    def test_ideal_gas_sq_near_one(self):
        """Uncorrelated data: S(q) ~ 1 at large q."""
        data = uniform(6000, dim=3, rng=96)
        rdf = make_rdf(data, num_buckets=80).truncated(0.8)
        q = np.array([60.0, 90.0, 120.0])
        s = structure_factor(rdf, q)
        np.testing.assert_allclose(s, 1.0, atol=0.25)

    def test_lattice_shows_bragg_like_peak(self):
        data = lattice(24, dim=2, jitter=0.03, rng=1)
        rdf = make_rdf(data, num_buckets=120).truncated(0.6)
        spacing = 1.0 / 24
        q = np.linspace(0.5, 2.5, 60) * (2 * math.pi / spacing)
        s = structure_factor(rdf, q)
        q_peak = q[np.argmax(s)]
        assert q_peak == pytest.approx(2 * math.pi / spacing, rel=0.15)
        assert s.max() > 2.0

    def test_rejects_bad_q(self):
        data = uniform(200, dim=2, rng=97)
        rdf = make_rdf(data, num_buckets=10)
        with pytest.raises(QueryError):
            structure_factor(rdf, np.array([0.0]))


class TestThermo:
    def test_lj_minimum(self):
        r_min = 2 ** (1 / 6)
        assert lennard_jones(np.array([r_min]))[0] == pytest.approx(-1.0)
        assert lennard_jones_derivative(np.array([r_min]))[
            0
        ] == pytest.approx(0.0, abs=1e-10)

    def test_lj_rejects_zero(self):
        with pytest.raises(QueryError):
            lennard_jones(np.array([0.0]))

    def test_ideal_gas_pressure(self):
        """With u == 0 the virial pressure reduces to rho k T."""
        data = uniform(3000, dim=3, rng=98)
        rdf = make_rdf(data, num_buckets=40)
        p = virial_pressure(
            rdf,
            temperature=2.0,
            potential_derivative=lambda r: np.zeros_like(r),
        )
        assert p == pytest.approx(rdf.density * 2.0)

    def test_attractive_tail_lowers_energy(self):
        """With sigma far below the typical spacing, LJ is attractive
        nearly everywhere sampled, so the excess energy is negative."""
        data = uniform(3000, dim=3, rng=99)
        rdf = make_rdf(data, num_buckets=40)
        u = excess_internal_energy(
            rdf,
            potential=lambda r: lennard_jones(r, sigma=0.01),
            r_min=0.05,
        )
        assert u < 0

    def test_repulsive_potential_raises_pressure(self):
        data = uniform(3000, dim=2, rng=100)
        rdf = make_rdf(data, num_buckets=40)
        base = virial_pressure(
            rdf,
            temperature=1.0,
            potential_derivative=lambda r: np.zeros_like(r),
        )
        # Purely repulsive: u' < 0 everywhere.
        repulsive = virial_pressure(
            rdf,
            temperature=1.0,
            potential_derivative=lambda r: -1.0 / r**2,
        )
        assert repulsive > base

    def test_temperature_validation(self):
        data = uniform(500, dim=2, rng=101)
        rdf = make_rdf(data, num_buckets=20)
        with pytest.raises(QueryError):
            virial_pressure(rdf, temperature=-1.0)

"""Tests for repro.service.cache (the LRU plan cache)."""

import threading
import time

import pytest

from repro.core.query import SDHQuery, build_plan
from repro.core.request import SDHRequest
from repro.data import uniform
from repro.errors import ServiceError
from repro.service import PlanCache


@pytest.fixture
def datasets():
    return [uniform(60 + 10 * i, dim=2, rng=i) for i in range(4)]


class CountingBuilder:
    """A build_plan wrapper recording every invocation."""

    def __init__(self):
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, particles):
        with self.lock:
            self.calls.append(particles.fingerprint())
        return build_plan(particles)


class TestRequestVariants:
    def test_plain_requests_share_the_bare_key(self, datasets):
        cache = PlanCache(capacity=4)
        request = SDHRequest(num_buckets=8).normalize()
        plan = cache.get_or_build(datasets[0])
        same = cache.get_or_build(datasets[0], request)
        assert same is plan
        assert cache.keys() == [datasets[0].fingerprint()]

    def test_mbr_request_gets_its_own_variant(self, datasets):
        cache = PlanCache(capacity=4)
        fingerprint = datasets[0].fingerprint()
        plain = cache.get_or_build(datasets[0])
        mbr_request = SDHRequest(num_buckets=8, use_mbr=True).normalize()
        mbr = cache.get_or_build(datasets[0], mbr_request)
        assert mbr is not plain
        assert set(cache.keys()) == {fingerprint, f"{fingerprint}:mbr"}
        assert cache.get_or_build(datasets[0], mbr_request) is mbr
        assert cache.stats.builds == 2


class TestBasics:
    def test_build_on_miss_then_hit(self, datasets):
        builder = CountingBuilder()
        cache = PlanCache(capacity=4, builder=builder)
        plan = cache.get_or_build(datasets[0])
        assert isinstance(plan, SDHQuery)
        again = cache.get_or_build(datasets[0])
        assert again is plan
        assert builder.calls == [datasets[0].fingerprint()]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.builds == 1

    def test_fingerprint_keying_ignores_identity(self, datasets):
        # Equal content in a distinct object must hit, not rebuild.
        builder = CountingBuilder()
        cache = PlanCache(capacity=4, builder=builder)
        cache.get_or_build(uniform(100, dim=2, rng=42))
        cache.get_or_build(uniform(100, dim=2, rng=42))
        assert len(builder.calls) == 1
        assert cache.stats.hits == 1

    def test_distinct_datasets_get_distinct_plans(self, datasets):
        cache = PlanCache(capacity=4)
        plans = [cache.get_or_build(d) for d in datasets]
        assert len({id(p) for p in plans}) == len(datasets)
        assert cache.stats.builds == len(datasets)

    def test_capacity_validation(self):
        with pytest.raises(ServiceError):
            PlanCache(capacity=0)

    def test_contains_len_keys(self, datasets):
        cache = PlanCache(capacity=4)
        cache.get_or_build(datasets[0])
        assert datasets[0].fingerprint() in cache
        assert datasets[1].fingerprint() not in cache
        assert len(cache) == 1
        assert cache.keys() == [datasets[0].fingerprint()]


class TestEviction:
    def test_lru_eviction_order(self, datasets):
        builder = CountingBuilder()
        cache = PlanCache(capacity=2, builder=builder)
        cache.get_or_build(datasets[0])
        cache.get_or_build(datasets[1])
        cache.get_or_build(datasets[0])  # refresh 0; 1 is now LRU
        cache.get_or_build(datasets[2])  # evicts 1
        assert datasets[1].fingerprint() not in cache
        assert datasets[0].fingerprint() in cache
        assert cache.stats.evictions == 1
        # Re-requesting the evicted dataset rebuilds.
        cache.get_or_build(datasets[1])
        assert builder.calls.count(datasets[1].fingerprint()) == 2

    def test_explicit_evict_and_clear(self, datasets):
        cache = PlanCache(capacity=4)
        cache.get_or_build(datasets[0])
        cache.get_or_build(datasets[1])
        assert cache.evict(datasets[0].fingerprint())
        assert not cache.evict(datasets[0].fingerprint())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.evictions == 2

    def test_snapshot_shape(self, datasets):
        cache = PlanCache(capacity=3)
        cache.get_or_build(datasets[0])
        body = cache.snapshot()
        assert body["size"] == 1
        assert body["capacity"] == 3
        assert body["builds"] == 1
        key = datasets[0].fingerprint()
        assert body["plans"][key]["num_particles"] == datasets[0].size
        assert 0.0 <= body["hit_rate"] <= 1.0


class TestConcurrency:
    def test_racing_requests_build_once(self, datasets):
        """N threads racing on a cold key must trigger exactly one build."""
        builder = CountingBuilder()
        cache = PlanCache(capacity=4, builder=builder)
        barrier = threading.Barrier(8)
        plans = []
        plans_lock = threading.Lock()

        def worker():
            barrier.wait()
            plan = cache.get_or_build(datasets[0])
            with plans_lock:
                plans.append(plan)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builder.calls) == 1
        assert len({id(p) for p in plans}) == 1
        assert cache.stats.builds == 1

    def test_concurrent_mixed_keys_prune_build_locks(self, datasets):
        builder = CountingBuilder()
        cache = PlanCache(capacity=len(datasets), builder=builder)
        barrier = threading.Barrier(12)

        def worker(i):
            barrier.wait()
            cache.get_or_build(datasets[i % len(datasets)])

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(12)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # One build per distinct dataset, regardless of interleaving.
        assert sorted(builder.calls) == sorted(
            d.fingerprint() for d in datasets
        )
        assert cache.build_lock_count() == 0


class TestBuildLockHygiene:
    """Regression tests: the per-key build-lock table must track builds
    in flight, not every key ever seen (it used to grow forever)."""

    def test_locks_pruned_after_each_build(self, datasets):
        cache = PlanCache(capacity=len(datasets))
        for data in datasets:
            cache.get_or_build(data)
            assert cache.build_lock_count() == 0
        # Hits never touch the lock table at all.
        cache.get_or_build(datasets[0])
        assert cache.build_lock_count() == 0

    def test_evict_and_clear_leave_no_locks(self, datasets):
        cache = PlanCache(capacity=2)
        for data in datasets:  # forces LRU evictions along the way
            cache.get_or_build(data)
        cache.evict(datasets[-1].fingerprint())
        cache.clear()
        assert cache.build_lock_count() == 0
        assert len(cache._build_locks) == 0

    def test_racing_losers_release_their_refcounts(self, datasets):
        builder = CountingBuilder()
        cache = PlanCache(capacity=4, builder=builder)
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            cache.get_or_build(datasets[0])

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builder.calls) == 1
        assert cache.build_lock_count() == 0

    def test_lock_lives_exactly_while_build_is_in_flight(self, datasets):
        started = threading.Event()
        release = threading.Event()

        def slow_builder(particles):
            started.set()
            assert release.wait(timeout=5.0)
            return build_plan(particles)

        cache = PlanCache(capacity=2, builder=slow_builder)
        worker = threading.Thread(
            target=cache.get_or_build, args=(datasets[0],)
        )
        worker.start()
        assert started.wait(timeout=5.0)
        assert cache.build_lock_count() == 1
        # Clearing the plan table mid-build must not strand the lock …
        cache.clear()
        release.set()
        worker.join(timeout=5.0)
        # … and the builder drops it on the way out.
        assert cache.build_lock_count() == 0
        assert datasets[0].fingerprint() in cache

    def test_failed_build_still_releases_lock(self, datasets):
        calls = []

        def flaky_builder(particles):
            calls.append(particles.fingerprint())
            if len(calls) == 1:
                raise RuntimeError("transient build failure")
            return build_plan(particles)

        cache = PlanCache(capacity=2, builder=flaky_builder)
        with pytest.raises(RuntimeError, match="transient"):
            cache.get_or_build(datasets[0])
        assert cache.build_lock_count() == 0
        # The key is not poisoned: the next request simply rebuilds.
        assert cache.get_or_build(datasets[0]) is not None
        assert cache.build_lock_count() == 0


class _SlowDescribePlan:
    """A stand-in plan whose describe() blocks until released."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def describe(self):
        self.entered.set()
        assert self.release.wait(5.0)
        return {"slow": True}


class TestSnapshotDoesNotStallLookups:
    """Regression test: snapshot() must not hold the cache lock while
    calling plan.describe() — a slow describe would stall every lookup
    (and therefore every query) for the duration of a stats scrape."""

    def test_lookup_proceeds_while_describe_blocks(self):
        plan = _SlowDescribePlan()
        cache = PlanCache(capacity=2, builder=lambda particles: plan)
        particles = uniform(10, dim=2, rng=1)
        cache.get_or_build(particles)

        bodies = []
        scraper = threading.Thread(
            target=lambda: bodies.append(cache.snapshot())
        )
        scraper.start()
        try:
            assert plan.entered.wait(5.0)
            # describe() is blocked mid-snapshot; a lookup must still
            # complete immediately instead of queueing on the lock.
            start = time.monotonic()
            assert cache.get_or_build(particles) is plan
            assert time.monotonic() - start < 1.0
            assert cache.stats.hits == 1
        finally:
            plan.release.set()
            scraper.join(timeout=5.0)
        assert bodies and bodies[0]["plans"] != {}


class TestEvictionCallback:
    def test_capacity_eviction_notifies(self):
        evicted = []
        cache = PlanCache(
            capacity=1,
            builder=lambda particles: object(),
            on_evict=evicted.append,
        )
        a = uniform(10, dim=2, rng=1)
        b = uniform(12, dim=2, rng=2)
        cache.get_or_build(a)
        cache.get_or_build(b)
        assert evicted == [a.fingerprint()]

    def test_explicit_evict_and_clear_notify(self):
        evicted = []
        cache = PlanCache(
            capacity=4,
            builder=lambda particles: object(),
            on_evict=evicted.append,
        )
        a = uniform(10, dim=2, rng=1)
        b = uniform(12, dim=2, rng=2)
        cache.get_or_build(a)
        cache.get_or_build(b)
        assert cache.evict(a.fingerprint())
        assert not cache.evict(a.fingerprint())  # absent: no callback
        cache.clear()
        assert evicted == [a.fingerprint(), b.fingerprint()]

"""Engine registry: registration, lookup, capability gating."""

import numpy as np
import pytest

from repro import (
    QueryError,
    SDHRequest,
    available_engines,
    compute_sdh,
    get_engine,
    register_engine,
    resolve_engine_name,
    uniform,
    unregister_engine,
)
from repro.core.engines import EngineCapabilities


@pytest.fixture(scope="module")
def data():
    return uniform(200, dim=2, rng=3)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_engines()) >= {
            "brute",
            "tree",
            "grid",
            "parallel",
        }

    def test_get_engine_resolves(self):
        engine = get_engine("grid")
        assert engine.name == "grid"
        assert callable(engine.run)

    def test_get_engine_case_insensitive(self):
        assert get_engine("GRID") is get_engine("grid")

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(QueryError, match="unknown engine") as info:
            get_engine("warp")
        assert "grid" in str(info.value)
        assert "auto" in str(info.value)

    def test_register_and_unregister(self):
        calls = []

        def runner(particles, request, spec, *, stats=None, rng=None):
            calls.append(request)
            return get_engine("grid").run(
                particles, request.replace(engine="grid"), spec,
                stats=stats, rng=rng,
            )

        register_engine("custom-test", runner)
        try:
            assert "custom-test" in available_engines()
            assert get_engine("custom-test").run is runner
        finally:
            unregister_engine("custom-test")
        assert "custom-test" not in available_engines()

    def test_registered_engine_runs_queries(self, data):
        def runner(particles, request, spec, *, stats=None, rng=None):
            return get_engine("grid").run(
                particles, request, spec, stats=stats, rng=rng
            )

        register_engine("proxy", runner)
        try:
            hist = compute_sdh(data, SDHRequest(num_buckets=8, engine="proxy"))
            reference = compute_sdh(data, SDHRequest(num_buckets=8))
            np.testing.assert_array_equal(hist.counts, reference.counts)
        finally:
            unregister_engine("proxy")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(QueryError, match="already registered"):
            register_engine("grid", lambda *a, **k: None)

    def test_replace_allows_override(self):
        original = get_engine("grid")
        register_engine(
            "grid", original.run, original.capabilities, replace=True
        )
        assert get_engine("grid").run is original.run

    def test_auto_is_not_registrable(self):
        with pytest.raises(QueryError, match="auto"):
            register_engine("auto", lambda *a, **k: None)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(QueryError, match="not registered"):
            unregister_engine("nonexistent")


class TestCapabilities:
    def test_default_capabilities_deny_everything_optional(self):
        caps = EngineCapabilities()
        assert not caps.supports_periodic
        assert not caps.supports_region
        assert not caps.supports_type_filter
        assert not caps.supports_type_pair
        assert not caps.supports_approximate
        assert not caps.supports_mbr
        assert not caps.supports_workers
        assert caps.kernel_tiers == ("numpy",)

    def test_tree_rejects_periodic(self):
        engine = get_engine("tree")
        request = SDHRequest(num_buckets=4, periodic=True).normalize()
        with pytest.raises(QueryError, match="periodic boundaries"):
            engine.check(request)

    def test_brute_rejects_approximate(self):
        engine = get_engine("brute")
        request = SDHRequest(num_buckets=4, error_bound=0.1).normalize()
        with pytest.raises(QueryError, match="approximate mode"):
            engine.check(request)

    def test_parallel_rejects_mbr(self):
        engine = get_engine("parallel")
        request = SDHRequest(num_buckets=4, use_mbr=True).normalize()
        with pytest.raises(QueryError, match="MBR resolution"):
            engine.check(request)

    def test_grid_rejects_workers(self):
        engine = get_engine("grid")
        request = SDHRequest(num_buckets=4, workers=2).normalize()
        with pytest.raises(QueryError, match="multi-process workers"):
            engine.check(request)

    def test_check_names_every_missing_feature(self):
        engine = get_engine("tree")
        request = SDHRequest(
            num_buckets=4, periodic=True, workers=2
        ).normalize()
        with pytest.raises(QueryError) as info:
            engine.check(request)
        message = str(info.value)
        assert "periodic boundaries" in message
        assert "multi-process workers" in message

    def test_compute_sdh_enforces_capabilities(self, data):
        with pytest.raises(QueryError, match="does not support"):
            compute_sdh(
                data,
                SDHRequest(num_buckets=4, engine="tree", periodic=True),
            )

    def test_kernel_tiers_validated_at_registration(self):
        with pytest.raises(QueryError, match="unknown kernel tier"):
            EngineCapabilities(kernel_tiers=("numpy", "cuda"))
        with pytest.raises(QueryError, match="at least one tier"):
            EngineCapabilities(kernel_tiers=())
        with pytest.raises(QueryError, match="'numpy'"):
            EngineCapabilities(kernel_tiers=("numba",))


class TestLegacyCapabilityShims:
    """One-release compatibility for the pre-kernel capability API."""

    def test_legacy_keywords_warn_and_expand(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            caps = EngineCapabilities(periodic=True, restricted=True)
        assert caps.supports_periodic
        assert caps.supports_region
        assert caps.supports_type_filter
        assert caps.supports_type_pair
        assert not caps.supports_mbr

    def test_legacy_properties_warn(self):
        caps = EngineCapabilities(
            supports_periodic=True,
            supports_region=True,
            supports_type_filter=True,
            supports_type_pair=True,
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert caps.periodic
        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert caps.restricted

    def test_legacy_string_set_registration_warns(self):
        with pytest.warns(DeprecationWarning, match="string set"):
            register_engine(
                "legacy-test",
                lambda *a, **k: None,
                capabilities={"periodic", "mbr"},
            )
        try:
            caps = get_engine("legacy-test").capabilities
            assert caps.supports_periodic
            assert caps.supports_mbr
            assert not caps.supports_workers
        finally:
            unregister_engine("legacy-test")

    def test_unknown_legacy_keyword_rejected(self):
        with pytest.raises(QueryError, match="unknown EngineCapabilities"):
            EngineCapabilities(warp_drive=True)

    def test_unknown_capability_string_rejected(self):
        with pytest.raises(QueryError, match="unknown capability"):
            register_engine(
                "bad-caps-test",
                lambda *a, **k: None,
                capabilities={"warp"},
            )


class TestAutoResolution:
    def test_auto_defaults_to_grid(self):
        request = SDHRequest(num_buckets=4).normalize()
        assert resolve_engine_name(request) == "grid"

    def test_auto_with_workers_picks_parallel(self):
        request = SDHRequest(num_buckets=4, workers=2).normalize()
        assert resolve_engine_name(request) == "parallel"

    def test_single_worker_stays_serial(self):
        request = SDHRequest(num_buckets=4, workers=1).normalize()
        assert resolve_engine_name(request) == "grid"

    def test_explicit_name_passes_through(self):
        request = SDHRequest(num_buckets=4, engine="brute").normalize()
        assert resolve_engine_name(request) == "brute"

    def test_approximate_with_workers_rejected(self, data):
        request = SDHRequest(num_buckets=4, error_bound=0.1, workers=2)
        with pytest.raises(QueryError, match="does not support"):
            compute_sdh(data, request)

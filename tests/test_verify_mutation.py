"""Mutation smoke-check: the harness must catch a planted bug.

A verify harness that never fires is worse than none — it certifies
broken code.  These tests perturb the system under test (a histogram
merge, a whole engine) and assert the harness *fails*, then remove the
perturbation and assert it passes.  If one of these tests breaks, the
harness has gone blind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engines import get_engine, register_engine, unregister_engine
from repro.core.histogram import DistanceHistogram
from repro.core.query import compute_sdh
from repro.core.request import SDHRequest
from repro.verify import (
    Corpus,
    FuzzCase,
    evaluate_case,
    generate_case,
    run_invariants,
    run_verification,
    shrink_case,
)


@pytest.fixture
def mutant_engine():
    """Register a grid clone that leaks one count into bucket 0."""

    def mutant_run(particles, request, spec, *, stats=None, rng=None):
        hist = compute_sdh(
            particles, request.replace(engine="grid"), stats=stats
        )
        hist.counts[0] += 1
        return hist

    register_engine("mutant", mutant_run, get_engine("grid").capabilities)
    yield "mutant"
    unregister_engine("mutant")


class TestMergeMutation:
    def test_perturbed_merge_caught_by_invariants(
        self, small_uniform_2d, monkeypatch
    ):
        request = SDHRequest(num_buckets=8)
        # Unperturbed: silence.
        assert run_invariants(small_uniform_2d, request, rng=0) == []

        real_merge = DistanceHistogram.merge

        def perturbed(self, other):
            merged = real_merge(self, other)
            merged.counts[0] += 1
            return merged

        monkeypatch.setattr(DistanceHistogram, "merge", perturbed)
        found = run_invariants(small_uniform_2d, request, rng=0)
        assert found, "harness missed a perturbed histogram merge"
        assert any("additivity" in d.detail for d in found)


class TestEngineMutation:
    def test_mutant_engine_fails_verification(self, mutant_engine):
        report = run_verification(
            seeds=3, engines=("grid", mutant_engine), adm=False
        )
        assert not report.ok
        assert any(
            d.kind == "engine_mismatch" for d in report.discrepancies
        )

    def test_clean_engines_pass_same_seeds(self):
        report = run_verification(
            seeds=3, engines=("grid", "brute"), adm=False
        )
        assert report.ok

    def test_full_pipeline_shrinks_and_replays(
        self, mutant_engine, tmp_path
    ):
        # End to end: detect -> shrink -> persist -> replay.
        engines = ("grid", mutant_engine)
        case = next(
            generate_case(seed)
            for seed in range(50)
            if generate_case(seed).particles.size > 20
            and generate_case(seed).plain
        )
        found = evaluate_case(case, engines=engines, invariants=False)
        assert found, "mutant engine must fail any exact case"

        shrunk = shrink_case(
            case, engines=engines, invariants=False
        )
        assert shrunk.particles.size < case.particles.size
        assert evaluate_case(shrunk, engines=engines, invariants=False)

        corpus = Corpus(tmp_path)
        path = corpus.save(shrunk, found, note="mutation pipeline test")
        assert path.exists()

        # Replay reproduces the failure while the mutant is live...
        replayed, refound = corpus.replay(engines=engines, invariants=False)
        assert replayed == 1 and refound
        assert refound[0].case == f"corpus:{path.name}"

        # ...and is silent once the planted bug is gone.
        replayed, refound = corpus.replay(
            engines=("grid", "brute"), invariants=False
        )
        assert replayed == 1 and refound == []

"""Tests for repro.physics.partial (partial RDFs g_ab)."""

import numpy as np
import pytest

from repro import uniform
from repro.data import random_types, synthetic_bilayer
from repro.errors import DatasetError, QueryError
from repro.physics import partial_rdfs


class TestPartialRDFs:
    def test_requires_types(self):
        with pytest.raises(DatasetError):
            partial_rdfs(uniform(100, rng=0), num_buckets=8)

    def test_matrix_keys(self, rng):
        data = random_types(
            uniform(600, dim=2, rng=rng), {"A": 1, "B": 1, "C": 1}, rng=rng
        )
        rdfs = partial_rdfs(data, num_buckets=10)
        assert set(rdfs) == {
            ("A", "A"), ("A", "B"), ("A", "C"),
            ("B", "B"), ("B", "C"), ("C", "C"),
        }

    def test_uncorrelated_mixture_is_flat(self, rng):
        """Randomly typed uniform data: every partial g ~ 1 everywhere
        (both same-type and cross)."""
        data = random_types(
            uniform(6000, dim=2, rng=123), {"A": 2, "B": 1}, rng=7
        )
        rdfs = partial_rdfs(data, num_buckets=25)
        for key, rdf in rdfs.items():
            trimmed = rdf.truncated(0.8 * data.max_possible_distance)
            np.testing.assert_allclose(
                trimmed.g[2:], 1.0, atol=0.25, err_msg=str(key)
            )

    def test_membrane_structure_detected(self):
        """Head-head pairs concentrate in the two planes, so their
        partial g is strongly non-flat, unlike water-water."""
        system = synthetic_bilayer(6000, dim=3, rng=9)
        rdfs = partial_rdfs(system, num_buckets=25)
        r_max = 0.7 * system.max_possible_distance

        def spread(key):
            g = rdfs[key].truncated(r_max).g[1:]
            return float(np.abs(g - 1.0).max())

        assert spread(("head", "head")) > 2 * spread(("water", "water"))

    def test_cross_rdf_mass(self, rng):
        """The underlying cross histogram holds N_a * N_b counts."""
        data = random_types(
            uniform(400, dim=2, rng=rng), {"A": 1, "B": 1}, rng=rng
        )
        rdfs = partial_rdfs(data, num_buckets=8)
        ab = rdfs[("A", "B")]
        # Reconstruct counts from g * expected and compare totals.
        from repro.physics.rdf import _box_distance_cdf_diffs

        fractions = _box_distance_cdf_diffs(data.box.sides, ab.edges)
        n_a = data.type_count("A")
        n_b = data.type_count("B")
        counts = ab.g * (n_a * n_b * fractions)
        assert counts.sum() == pytest.approx(n_a * n_b, rel=1e-9)

    def test_periodic_variant(self, rng):
        data = random_types(
            uniform(3000, dim=2, rng=321), {"A": 1, "B": 1}, rng=5
        )
        rdfs = partial_rdfs(data, num_buckets=15, periodic=True)
        for key, rdf in rdfs.items():
            np.testing.assert_allclose(
                rdf.g[1:12], 1.0, atol=0.3, err_msg=str(key)
            )

    def test_finite_size_validation(self, rng):
        data = random_types(
            uniform(50, dim=2, rng=rng), {"A": 1, "B": 1}, rng=rng
        )
        with pytest.raises(QueryError):
            partial_rdfs(data, num_buckets=4, finite_size="shell")

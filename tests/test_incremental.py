"""Tests for repro.incremental (frame-to-frame SDH maintenance)."""

import numpy as np
import pytest

from repro.core import UniformBuckets, brute_force_sdh
from repro.data import (
    ParticleSet,
    random_walk_trajectory,
    uniform,
)
from repro.errors import QueryError
from repro.incremental import (
    IncrementalSDH,
    sdh_over_trajectory,
    update_histogram,
)


@pytest.fixture
def setup(rng):
    initial = uniform(150, dim=2, rng=rng)
    spec = UniformBuckets.with_count(initial.max_possible_distance, 6)
    base = brute_force_sdh(initial, spec=spec)
    return initial, spec, base


class TestUpdateHistogram:
    def test_exactness_single_step(self, setup, rng):
        initial, spec, base = setup
        new_positions = initial.positions.copy()
        movers = rng.choice(150, size=10, replace=False)
        new_positions[movers] = rng.uniform(size=(10, 2)) * 0.9
        updated = update_histogram(base, initial.positions, new_positions)
        expected = brute_force_sdh(
            ParticleSet(new_positions, initial.box), spec=spec
        )
        np.testing.assert_allclose(
            updated.counts, expected.counts, atol=1e-9
        )

    def test_no_movement_is_identity(self, setup):
        initial, _spec, base = setup
        updated = update_histogram(
            base, initial.positions, initial.positions.copy()
        )
        np.testing.assert_array_equal(updated.counts, base.counts)

    def test_input_not_mutated(self, setup, rng):
        initial, _spec, base = setup
        before = base.counts.copy()
        new_positions = initial.positions.copy()
        new_positions[0] = [0.123, 0.456]
        update_histogram(base, initial.positions, new_positions)
        np.testing.assert_array_equal(base.counts, before)

    def test_shape_mismatch_rejected(self, setup):
        initial, _spec, base = setup
        with pytest.raises(QueryError):
            update_histogram(
                base, initial.positions, initial.positions[:-1]
            )

    def test_all_particles_moved(self, setup, rng):
        initial, spec, base = setup
        new_positions = rng.uniform(size=initial.positions.shape) * 0.9
        updated = update_histogram(base, initial.positions, new_positions)
        expected = brute_force_sdh(
            ParticleSet(new_positions, initial.box), spec=spec
        )
        np.testing.assert_allclose(
            updated.counts, expected.counts, atol=1e-9
        )


class TestIncrementalSDH:
    def test_tracks_trajectory_exactly(self, rng):
        initial = uniform(120, dim=2, rng=rng)
        spec = UniformBuckets.with_count(
            initial.max_possible_distance, 5
        )
        traj = random_walk_trajectory(
            initial, 6, move_fraction=0.1, rng=rng
        )
        inc = IncrementalSDH(spec, traj[0])
        for frame in traj.frames[1:]:
            inc.advance(frame)
        expected = brute_force_sdh(traj.frames[-1], spec=spec)
        np.testing.assert_allclose(
            inc.histogram.counts, expected.counts, atol=1e-9
        )
        assert inc.frames_processed == 6
        assert inc.moved_total > 0

    def test_base_histogram_reuse(self, setup):
        initial, spec, base = setup
        inc = IncrementalSDH(spec, initial, base_histogram=base)
        np.testing.assert_array_equal(inc.histogram.counts, base.counts)

    def test_base_spec_mismatch(self, setup):
        initial, _spec, base = setup
        other = UniformBuckets.with_count(
            initial.max_possible_distance, 9
        )
        with pytest.raises(QueryError):
            IncrementalSDH(other, initial, base_histogram=base)

    def test_histogram_is_a_copy(self, setup):
        initial, spec, base = setup
        inc = IncrementalSDH(spec, initial, base_histogram=base)
        inc.histogram.counts[0] = -99
        assert inc.histogram.counts[0] != -99

    def test_frame_shape_change_rejected(self, setup, rng):
        initial, spec, base = setup
        inc = IncrementalSDH(spec, initial, base_histogram=base)
        with pytest.raises(QueryError):
            inc.advance(uniform(10, rng=rng))


class TestTrajectoryHelper:
    def test_every_frame_exact(self, rng):
        initial = uniform(80, dim=2, rng=rng)
        spec = UniformBuckets.with_count(
            initial.max_possible_distance, 4
        )
        traj = random_walk_trajectory(
            initial, 4, move_fraction=0.2, rng=rng
        )
        histograms = sdh_over_trajectory(traj, spec)
        assert len(histograms) == 4
        for frame, got in zip(traj, histograms):
            expected = brute_force_sdh(frame, spec=spec)
            np.testing.assert_allclose(
                got.counts, expected.counts, atol=1e-9
            )

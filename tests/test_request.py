"""SDHRequest: validation, normalization, JSON round-trip, kwargs shim."""

import json
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AABB,
    BallRegion,
    OverflowPolicy,
    QueryError,
    RectRegion,
    SDHRequest,
    UnionRegion,
    UniformBuckets,
    compute_sdh,
    uniform,
)
from repro.core.buckets import CustomBuckets


@pytest.fixture(scope="module")
def data():
    return uniform(300, dim=2, rng=7)


class TestValidation:
    def test_exactly_one_parameterization_required(self):
        with pytest.raises(QueryError, match="exactly one of bucket_width"):
            SDHRequest().validate()
        with pytest.raises(QueryError, match="exactly one of bucket_width"):
            SDHRequest(bucket_width=1.0, num_buckets=4).validate()

    def test_plain_request_valid(self):
        request = SDHRequest(num_buckets=8).validate()
        assert not request.approximate
        assert not request.restricted

    def test_spec_type_checked(self):
        with pytest.raises(QueryError, match="BucketSpec"):
            SDHRequest(spec=[0.0, 1.0]).validate()

    def test_region_type_checked(self):
        with pytest.raises(QueryError, match="Region"):
            SDHRequest(num_buckets=4, region=(0, 1)).validate()

    def test_type_pair_arity(self):
        with pytest.raises(QueryError, match="exactly two"):
            SDHRequest(num_buckets=4, type_pair=(1, 2, 3)).validate()

    def test_approximate_restricted_rejected(self):
        with pytest.raises(QueryError, match="approximate restricted"):
            SDHRequest(
                num_buckets=4, error_bound=0.1, type_filter=0
            ).validate()

    def test_error_bound_positive(self):
        with pytest.raises(QueryError, match="error_bound"):
            SDHRequest(num_buckets=4, error_bound=0.0).validate()

    def test_workers_at_least_one(self):
        with pytest.raises(QueryError, match="workers"):
            SDHRequest(num_buckets=4, workers=0).validate()

    def test_mbr_periodic_rejected(self):
        with pytest.raises(QueryError, match="MBR"):
            SDHRequest(num_buckets=4, use_mbr=True, periodic=True).validate()

    def test_validate_returns_self(self):
        request = SDHRequest(num_buckets=4)
        assert request.validate() is request


class TestNormalize:
    def test_policy_string_coerced(self):
        request = SDHRequest(num_buckets=4, policy="clamp").normalize()
        assert request.policy is OverflowPolicy.CLAMP

    def test_unknown_policy_rejected(self):
        with pytest.raises(QueryError, match="overflow policy"):
            SDHRequest(num_buckets=4, policy="nope").normalize()

    def test_type_pair_list_coerced(self):
        request = SDHRequest(num_buckets=4, type_pair=[0, 1]).normalize()
        assert request.type_pair == (0, 1)

    def test_engine_lowercased(self):
        request = SDHRequest(num_buckets=4, engine="GRID").normalize()
        assert request.engine == "grid"

    def test_workers_coerced_to_int(self):
        request = SDHRequest(num_buckets=4, workers=2.0).normalize()
        assert request.workers == 2
        assert isinstance(request.workers, int)

    def test_frozen(self):
        request = SDHRequest(num_buckets=4)
        with pytest.raises(Exception):
            request.num_buckets = 8

    def test_replace_makes_new_request(self):
        base = SDHRequest(num_buckets=4)
        other = base.replace(workers=2)
        assert other.workers == 2
        assert base.workers is None


class TestResolvedSpec:
    def test_num_buckets_covers_diagonal(self, data):
        spec = SDHRequest(num_buckets=8).resolved_spec(data)
        assert spec.num_buckets == 8
        assert spec.edges[-1] >= data.max_possible_distance

    def test_periodic_uses_half_box_reach(self, data):
        plain = SDHRequest(num_buckets=8).resolved_spec(data)
        wrapped = SDHRequest(num_buckets=8, periodic=True).resolved_spec(data)
        assert wrapped.edges[-1] < plain.edges[-1]

    def test_explicit_spec_passed_through(self, data):
        spec = UniformBuckets(1.0, 5)
        assert SDHRequest(spec=spec).resolved_spec(data) is spec


class TestJsonRoundTrip:
    def test_minimal_round_trip(self):
        request = SDHRequest(num_buckets=16).normalize()
        body = json.loads(json.dumps(request.to_dict()))
        assert SDHRequest.from_dict(body) == request

    def test_defaults_omitted(self):
        body = SDHRequest(num_buckets=16).to_dict()
        assert body == {"num_buckets": 16}

    def test_uniform_spec_round_trip(self):
        request = SDHRequest(spec=UniformBuckets(0.5, 12)).normalize()
        body = json.loads(json.dumps(request.to_dict()))
        assert SDHRequest.from_dict(body) == request

    def test_custom_spec_round_trip(self):
        request = SDHRequest(
            spec=CustomBuckets([0.0, 0.5, 1.5, 4.0])
        ).normalize()
        body = json.loads(json.dumps(request.to_dict()))
        rebuilt = SDHRequest.from_dict(body)
        np.testing.assert_array_equal(
            rebuilt.spec.edges, request.spec.edges
        )

    def test_region_round_trip(self):
        region = UnionRegion(
            [
                RectRegion(AABB((0.0, 0.0), (0.5, 0.5))),
                BallRegion([0.7, 0.7], 0.2),
            ]
        )
        request = SDHRequest(num_buckets=8, region=region).normalize()
        body = json.loads(json.dumps(request.to_dict()))
        rebuilt = SDHRequest.from_dict(body)
        assert isinstance(rebuilt.region, UnionRegion)
        assert len(rebuilt.region.members) == 2

    def test_unknown_keys_rejected(self):
        with pytest.raises(QueryError, match="unknown query parameters"):
            SDHRequest.from_dict({"num_buckets": 8, "bandwidth": 2})

    def test_allocator_heuristic_not_serializable(self):
        from repro.core.heuristics import make_allocator

        request = SDHRequest(num_buckets=8, heuristic=make_allocator(1))
        with pytest.raises(QueryError, match="Allocator"):
            request.to_dict()

    @settings(max_examples=40, deadline=None)
    @given(
        num_buckets=st.integers(min_value=1, max_value=64),
        engine=st.sampled_from(["auto", "grid", "tree", "brute", "parallel"]),
        periodic=st.booleans(),
        policy=st.sampled_from(list(OverflowPolicy)),
        workers=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        heuristic=st.sampled_from([1, 2, 3, 4]),
    )
    def test_property_round_trip(
        self, num_buckets, engine, periodic, policy, workers, heuristic
    ):
        request = SDHRequest(
            num_buckets=num_buckets,
            engine=engine,
            periodic=periodic,
            policy=policy,
            workers=workers,
            heuristic=heuristic,
        ).normalize()
        wire = json.loads(json.dumps(request.to_dict()))
        assert SDHRequest.from_dict(wire) == request


class TestJsonEdgeCases:
    """Boundary parameterizations and hostile numeric payloads."""

    def test_boundary_bucket_width_round_trips(self):
        for width in (2.0**-40, 1.0, 2.0**40):
            request = SDHRequest(bucket_width=width).normalize()
            wire = json.loads(json.dumps(request.to_dict()))
            assert SDHRequest.from_dict(wire) == request

    def test_boundary_num_buckets_round_trips(self):
        for count in (1, 2, 4096):
            request = SDHRequest(num_buckets=count).normalize()
            wire = json.loads(json.dumps(request.to_dict()))
            assert SDHRequest.from_dict(wire) == request

    def test_nonpositive_bucket_width_rejected(self):
        from repro.errors import BucketSpecError

        for width in (0.0, -1.0):
            with pytest.raises(BucketSpecError, match="finite and positive"):
                SDHRequest(bucket_width=width).normalize()

    def test_nan_inf_bucket_width_rejected(self):
        from repro.errors import BucketSpecError

        for width in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(BucketSpecError, match="finite"):
                SDHRequest(bucket_width=width).normalize()

    def test_nonpositive_num_buckets_rejected(self):
        from repro.errors import BucketSpecError

        for count in (0, -2):
            with pytest.raises(BucketSpecError, match="at least one bucket"):
                SDHRequest(num_buckets=count).normalize()

    def test_nan_inf_error_bound_rejected(self):
        for bound in (float("nan"), float("inf")):
            with pytest.raises(QueryError, match="finite and positive"):
                SDHRequest(num_buckets=8, error_bound=bound).normalize()

    def test_nan_region_coordinates_rejected(self):
        # Python's json.loads accepts bare NaN, so the wire layer must
        # catch it — QueryError, which the HTTP server maps to 400.
        body = json.loads(
            '{"num_buckets": 4, "region": '
            '{"kind": "rect", "lo": [0, NaN], "hi": [1, 1]}}'
        )
        with pytest.raises(QueryError, match="finite"):
            SDHRequest.from_dict(body)

    def test_inf_ball_radius_rejected(self):
        with pytest.raises(QueryError, match="finite"):
            SDHRequest.from_dict(
                {
                    "num_buckets": 4,
                    "region": {
                        "kind": "ball",
                        "center": [0.5, 0.5],
                        "radius": float("inf"),
                    },
                }
            )

    def test_nan_spec_values_rejected(self):
        with pytest.raises(QueryError, match="finite"):
            SDHRequest.from_dict(
                {
                    "spec": {
                        "kind": "uniform",
                        "width": float("nan"),
                        "num_buckets": 4,
                    }
                }
            )
        with pytest.raises(QueryError, match="finite"):
            SDHRequest.from_dict(
                {"spec": {"kind": "custom", "edges": [0.0, float("inf")]}}
            )

    def test_non_numeric_region_values_rejected(self):
        with pytest.raises(QueryError, match="must be a number"):
            SDHRequest.from_dict(
                {
                    "num_buckets": 4,
                    "region": {
                        "kind": "rect",
                        "lo": ["a", 0],
                        "hi": [1, 1],
                    },
                }
            )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_seeded_random_requests_round_trip(self, seed):
        # Regions carry value equality, so the whole request — region
        # included — must survive serialize -> parse -> normalize.
        rng = np.random.default_rng(seed)
        region = None
        shape = rng.integers(0, 3)
        if shape == 1:
            lo = rng.uniform(0.0, 0.4, 2)
            hi = lo + rng.uniform(0.1, 0.5, 2)
            region = RectRegion(AABB(tuple(lo), tuple(hi)))
        elif shape == 2:
            region = BallRegion(
                rng.uniform(0.0, 1.0, 2).tolist(),
                float(rng.uniform(0.05, 0.5)),
            )
        request = SDHRequest(
            num_buckets=int(rng.integers(1, 100)),
            region=region,
            periodic=bool(region is None and rng.random() < 0.5),
            policy=list(OverflowPolicy)[rng.integers(len(OverflowPolicy))],
            workers=None if rng.random() < 0.5 else int(rng.integers(1, 8)),
        ).normalize()
        wire = json.loads(json.dumps(request.to_dict()))
        assert SDHRequest.from_dict(wire) == request


class TestComputeSdhShim:
    """compute_sdh accepts SDHRequest, bare kwargs, and mixtures."""

    def test_request_object(self, data):
        hist = compute_sdh(data, SDHRequest(num_buckets=8))
        assert hist.total == data.num_pairs

    def test_bare_kwargs_equivalent(self, data):
        via_request = compute_sdh(data, SDHRequest(num_buckets=8))
        with pytest.warns(DeprecationWarning, match="keyword-style"):
            via_kwargs = compute_sdh(data, num_buckets=8)
        np.testing.assert_array_equal(
            via_request.counts, via_kwargs.counts
        )

    def test_positional_spec_shorthand(self, data):
        spec = UniformBuckets.with_count(data.max_possible_distance, 8)
        hist = compute_sdh(data, spec)
        assert hist.counts.size == 8

    def test_positional_width_shorthand(self, data):
        width = data.max_possible_distance / 4
        hist = compute_sdh(data, width)
        assert hist.total == data.num_pairs

    def test_request_plus_kwargs_warns_and_overrides(self, data):
        request = SDHRequest(num_buckets=8, engine="grid")
        with pytest.warns(DeprecationWarning, match="request.replace"):
            hist = compute_sdh(data, request, engine="brute")
        assert hist.total == data.num_pairs

    def test_override_round_trips_to_same_answer(self, data):
        request = SDHRequest(num_buckets=8)
        with pytest.warns(DeprecationWarning):
            overridden = compute_sdh(data, request, engine="brute")
        direct = compute_sdh(data, request.replace(engine="brute"))
        np.testing.assert_array_equal(overridden.counts, direct.counts)


class TestPlannerFields:
    """The planner-facing request fields: SLO budget + routing switch."""

    def test_defaults(self):
        request = SDHRequest(num_buckets=8).normalize()
        assert request.planner == "auto"
        assert request.latency_budget_ms is None

    def test_round_trip(self):
        request = SDHRequest(
            num_buckets=8, latency_budget_ms=250.0
        ).normalize()
        wire = json.loads(json.dumps(request.to_dict()))
        assert SDHRequest.from_dict(wire) == request
        assert wire["latency_budget_ms"] == 250.0

    def test_planner_off_round_trip(self):
        request = SDHRequest(num_buckets=8, planner="off").normalize()
        wire = json.loads(json.dumps(request.to_dict()))
        assert SDHRequest.from_dict(wire) == request

    def test_defaults_omitted_from_wire(self):
        body = SDHRequest(num_buckets=8).to_dict()
        assert "planner" not in body
        assert "latency_budget_ms" not in body

    def test_planner_value_validated(self):
        with pytest.raises(QueryError, match="planner"):
            SDHRequest(num_buckets=8, planner="maybe").normalize()

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("nan"), float("inf")])
    def test_budget_must_be_finite_positive(self, bad):
        with pytest.raises(QueryError, match="latency_budget_ms"):
            SDHRequest(num_buckets=8, latency_budget_ms=bad).normalize()

    def test_budget_requires_planner(self):
        with pytest.raises(QueryError, match="planner"):
            SDHRequest(
                num_buckets=8, planner="off", latency_budget_ms=100.0
            ).normalize()

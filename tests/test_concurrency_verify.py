"""Concurrency regression: the service primitives under verify load.

PR 4 fixed refcount and permit leaks in the plan cache's build locks
and the executor's admission semaphore.  This test hammers both from
many threads *while a verify run streams differential requests through
the engines*, then asserts every resource returns to its resting
state: zero live build locks, zero in-flight queries, and the full
admission capacity reacquirable (no leaked permits).
"""

from __future__ import annotations

import threading

import pytest

from repro.core.request import SDHRequest
from repro.data.generators import uniform
from repro.service.cache import PlanCache
from repro.service.executor import QueryExecutor
from repro.verify import generate_case, evaluate_case

THREADS = 10
ROUNDS = 12


def test_cache_and_executor_under_verify_load():
    datasets = [uniform(60 + 20 * i, dim=2, rng=i) for i in range(6)]
    cache = PlanCache(capacity=3)
    executor = QueryExecutor(max_workers=4, max_queue=THREADS * ROUNDS)
    start = threading.Barrier(THREADS + 1)
    errors: list[BaseException] = []

    def hammer(worker: int) -> None:
        try:
            start.wait(timeout=30)
            for round_no in range(ROUNDS):
                data = datasets[(worker + round_no) % len(datasets)]
                request = SDHRequest(num_buckets=4 + round_no % 5)

                def query(data=data, request=request):
                    plan = cache.get_or_build(data, request)
                    return plan.run(request)

                histogram = executor.submit(query, timeout=60)
                assert histogram.total == data.num_pairs
                if round_no % 4 == 3:
                    # Evictions force rebuilds, keeping the build-lock
                    # table hot instead of letting it settle.
                    cache.evict(data.fingerprint())
        except BaseException as exc:  # noqa: BLE001 - collected for report
            errors.append(exc)

    workers = [
        threading.Thread(target=hammer, args=(i,)) for i in range(THREADS)
    ]
    for thread in workers:
        thread.start()

    # Meanwhile the verify harness streams requests through every
    # engine on the main thread — the realistic "verify run during
    # service load" interleaving.
    start.wait(timeout=30)
    for seed in range(4):
        assert evaluate_case(generate_case(seed), workers=2) == []

    for thread in workers:
        thread.join(timeout=120)
        assert not thread.is_alive(), "hammer thread hung"
    assert errors == []

    # Resting state: no refcounted build locks left behind...
    assert cache.build_lock_count() == 0
    # ...no queries still admitted...
    assert executor.in_flight == 0
    # ...and the full admission capacity is reacquirable, which fails
    # if any code path leaked a permit.
    capacity = executor.max_workers + executor.max_queue
    acquired = 0
    try:
        for _ in range(capacity):
            assert executor._admission.acquire(blocking=False)
            acquired += 1
        assert not executor._admission.acquire(blocking=False)
    finally:
        for _ in range(acquired):
            executor._admission.release()
    executor.shutdown()


def test_plan_cache_build_lock_settles_after_exceptions():
    """A builder that throws must still drop its build-lock entry."""

    class Boom(RuntimeError):
        pass

    calls = {"n": 0}

    def failing_builder(particles, request=None):
        calls["n"] += 1
        raise Boom("planted build failure")

    cache = PlanCache(capacity=2, builder=failing_builder)
    data = uniform(30, dim=2, rng=0)
    for _ in range(3):
        with pytest.raises(Boom):
            cache.get_or_build(data)
    assert calls["n"] == 3
    assert cache.build_lock_count() == 0

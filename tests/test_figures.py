"""Reproduction tests for the paper's worked example (Fig. 1, Table II).

These tests pin the library to the paper's published numbers: the cell
counts of Fig. 1, the inter-cell distance ranges of Table II (including
exactly which six of the sixteen XA-ZB sub-cell pairs resolve at bucket
width 3), and the case-study arithmetic of Sec. III-B.
"""

import math

import numpy as np
import pytest

from repro.core import UniformBuckets
from repro.data import (
    FIG1_BUCKET_WIDTH,
    FIG1_COARSE_COUNTS,
    FIG1_FINE_COUNTS,
    fig1_cell,
    fig1_fine_cell,
    figure1_dataset,
    table2_expected,
)


class TestFig1Counts:
    def test_coarse_counts_sum(self):
        assert sum(FIG1_COARSE_COUNTS.values()) == 104

    def test_fine_counts_sum(self):
        assert sum(FIG1_FINE_COUNTS.values()) == 104

    def test_fine_cells_partition_coarse(self):
        """Each coarse cell's four children sum to its count."""
        for coarse, count in FIG1_COARSE_COUNTS.items():
            row, col = coarse
            children = sum(
                FIG1_FINE_COUNTS[f"{row}{r}{col}{c}"]
                for r in (0, 1)
                for c in (0, 1)
            )
            assert children == count, coarse

    def test_cell_geometry(self):
        assert fig1_cell("XA").sides == (2.0, 2.0)
        assert fig1_fine_cell("X0A0").sides == (1.0, 1.0)
        # X0A0 is the upper-left quarter of XA.
        xa = fig1_cell("XA")
        x0a0 = fig1_fine_cell("X0A0")
        assert xa.contains_box(x0a0)
        assert x0a0.lo[0] == xa.lo[0]
        assert x0a0.hi[1] == xa.hi[1]


class TestTable2:
    """The sixteen XA x ZB sub-cell distance ranges."""

    def setup_method(self):
        self.table = table2_expected()

    def test_sixteen_entries(self):
        assert len(self.table) == 16

    def test_exactly_six_resolvable(self):
        """'Out of the 16 pairs of cells, six can be resolved.'"""
        resolvable = [k for k, v in self.table.items() if v[2]]
        assert len(resolvable) == 6

    def test_the_six_resolvable_pairs(self):
        resolvable = {k for k, v in self.table.items() if v[2]}
        assert resolvable == {
            ("X0A0", "Z0B0"),
            ("X0A1", "Z0B0"),
            ("X0A1", "Z0B1"),
            ("X1A0", "Z1B0"),
            ("X1A1", "Z1B0"),
            ("X1A1", "Z1B1"),
        }

    def test_published_radicals(self):
        """Spot-check ranges quoted verbatim in the paper."""
        u, v, resolvable = self.table[("X0A0", "Z0B0")]
        assert u == pytest.approx(math.sqrt(10))
        assert v == pytest.approx(math.sqrt(34))
        assert resolvable

        u, v, resolvable = self.table[("X0A0", "Z1B1")]
        assert u == pytest.approx(math.sqrt(20))
        assert v == pytest.approx(math.sqrt(52))
        assert not resolvable

        u, v, resolvable = self.table[("X0A1", "Z0B0")]
        assert u == pytest.approx(3.0)
        assert v == pytest.approx(math.sqrt(29))
        assert resolvable

    def test_resolvable_ranges_fit_buckets(self):
        spec = UniformBuckets(FIG1_BUCKET_WIDTH, 4)
        for (xa, zb), (u, v, resolvable) in self.table.items():
            got = spec.resolve_range(u, v)
            assert (got is not None) == resolvable, (xa, zb)

    def test_x0a0_z0b0_contribution(self):
        """'We increment the count of the second bucket by 5 x 4 = 20.'"""
        n1 = FIG1_FINE_COUNTS["X0A0"]
        n2 = FIG1_FINE_COUNTS["Z0B0"]
        assert n1 * n2 == 20


class TestFigure1Dataset:
    def test_realizes_published_counts(self):
        ps = figure1_dataset(rng=0)
        assert ps.size == 104
        for label, count in FIG1_FINE_COUNTS.items():
            cell = fig1_fine_cell(label)
            inside = int(cell.contains_points(ps.positions).sum())
            assert inside == count, label

    def test_intra_cell_shortcut_arithmetic(self):
        """'Increase the count of the first bucket by 14 x 13 / 2 = 91.'"""
        n = FIG1_COARSE_COUNTS["XA"]
        assert n * (n - 1) // 2 == 91

    def test_square_box_option(self):
        square = figure1_dataset(rng=0, square_box=True)
        tight = figure1_dataset(rng=0, square_box=False)
        assert square.box.sides == (6.0, 6.0)
        assert tight.box.sides == (4.0, 6.0)
        np.testing.assert_array_equal(square.positions, tight.positions)

    def test_engines_agree_on_figure1_data(self):
        """End-to-end: the Fig. 1 dataset through all three engines."""
        from repro.core import brute_force_sdh, dm_sdh_grid, dm_sdh_tree

        ps = figure1_dataset(rng=0)
        spec = UniformBuckets.cover(
            ps.max_possible_distance, FIG1_BUCKET_WIDTH
        )
        hb = brute_force_sdh(ps, spec=spec)
        hg = dm_sdh_grid(ps, spec=spec)
        ht = dm_sdh_tree(ps, spec=spec)
        assert hb.total == ps.num_pairs
        np.testing.assert_array_equal(hb.counts, hg.counts)
        np.testing.assert_array_equal(hb.counts, ht.counts)

"""Tests for repro.data.generators (synthetic workloads)."""

import numpy as np
import pytest

from repro.data import (
    gaussian_clusters,
    lattice,
    random_types,
    uniform,
    zipf_clustered,
)
from repro.errors import DatasetError


class TestUniform:
    def test_shape_and_box(self):
        ps = uniform(500, dim=2, box_side=3.0, rng=0)
        assert ps.size == 500
        assert ps.dim == 2
        assert ps.box.sides == (3.0, 3.0)
        assert bool(ps.box.contains_points(ps.positions).all())

    def test_reproducible(self):
        a = uniform(50, rng=9)
        b = uniform(50, rng=9)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_roughly_uniform_occupancy(self):
        ps = uniform(4000, dim=2, rng=1)
        # Quadrant occupancy should be near 1000 each.
        quadrant = (ps.positions[:, 0] > 0.5).astype(int) * 2 + (
            ps.positions[:, 1] > 0.5
        ).astype(int)
        counts = np.bincount(quadrant, minlength=4)
        assert counts.min() > 800

    def test_rejects_bad_n(self):
        with pytest.raises(DatasetError):
            uniform(0)


class TestZipf:
    def test_is_heavily_skewed(self):
        ps = zipf_clustered(4000, dim=2, grid=16, rng=2)
        # Bin back onto the generator grid; the top cell should hold far
        # more than the uniform share.
        idx = np.clip((ps.positions * 16).astype(int), 0, 15)
        flat = idx[:, 0] * 16 + idx[:, 1]
        counts = np.bincount(flat, minlength=256)
        assert counts.max() > 5 * 4000 / 256

    def test_many_empty_cells(self):
        """The skew that speeds DM-SDH up (Sec. VI-A): on fine density
        maps, clustered data leaves far more cells empty than uniform
        data of the same size."""
        n, grid = 2000, 32
        zipf = zipf_clustered(n, dim=2, grid=grid, exponent=1.0, rng=3)
        flat_u = uniform(n, dim=2, rng=3)

        def empty_cells(ps):
            idx = np.clip((ps.positions * grid).astype(int), 0, grid - 1)
            flat = idx[:, 0] * grid + idx[:, 1]
            return int(
                (np.bincount(flat, minlength=grid * grid) == 0).sum()
            )

        assert empty_cells(zipf) > 1.5 * empty_cells(flat_u)

    def test_3d(self):
        ps = zipf_clustered(300, dim=3, grid=4, rng=0)
        assert ps.dim == 3
        assert bool(ps.box.contains_points(ps.positions).all())

    def test_exponent_zero_is_uniformish(self):
        ps = zipf_clustered(4000, dim=2, grid=4, exponent=0.0, rng=5)
        idx = np.clip((ps.positions * 4).astype(int), 0, 3)
        flat = idx[:, 0] * 4 + idx[:, 1]
        counts = np.bincount(flat, minlength=16)
        assert counts.max() < 2.0 * 4000 / 16

    def test_rejects_bad_grid(self):
        with pytest.raises(DatasetError):
            zipf_clustered(10, grid=0)


class TestGaussianClusters:
    def test_in_box(self):
        ps = gaussian_clusters(1000, dim=2, rng=4)
        assert bool(ps.box.contains_points(ps.positions).all())

    def test_clustering_visible(self):
        ps = gaussian_clusters(
            2000, dim=2, num_clusters=2, spread=0.02, rng=4
        )
        idx = np.clip((ps.positions * 8).astype(int), 0, 7)
        flat = idx[:, 0] * 8 + idx[:, 1]
        counts = np.bincount(flat, minlength=64)
        assert counts.max() > 5 * 2000 / 64


class TestLattice:
    def test_count_and_spacing(self):
        ps = lattice(4, dim=2, box_side=1.0)
        assert ps.size == 16
        xs = np.unique(ps.positions[:, 0])
        np.testing.assert_allclose(np.diff(xs), 0.25)

    def test_3d_count(self):
        assert lattice(3, dim=3).size == 27

    def test_jitter_bounded(self):
        ps = lattice(4, dim=2, jitter=0.1, rng=0)
        assert bool(ps.box.contains_points(ps.positions).all())


class TestRandomTypes:
    def test_proportions(self, rng):
        ps = uniform(3000, rng=rng)
        typed = random_types(ps, {"A": 2.0, "B": 1.0}, rng=rng)
        assert typed.type_count("A") > typed.type_count("B")
        assert typed.type_count("A") + typed.type_count("B") == 3000

    def test_rejects_empty(self, rng):
        with pytest.raises(DatasetError):
            random_types(uniform(10, rng=rng), {})

    def test_rejects_zero_weights(self, rng):
        with pytest.raises(DatasetError):
            random_types(uniform(10, rng=rng), {"A": 0.0})

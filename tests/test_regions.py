"""Tests for repro.geometry.regions (query-region classification)."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    AABB,
    BallRegion,
    RectRegion,
    Relation,
    UnionRegion,
)


class TestRectRegion:
    def setup_method(self):
        self.region = RectRegion(AABB((1.0, 1.0), (3.0, 3.0)))

    def test_classify_inside(self):
        assert (
            self.region.classify(AABB((1.5, 1.5), (2.0, 2.0)))
            is Relation.INSIDE
        )

    def test_classify_outside(self):
        assert (
            self.region.classify(AABB((4.0, 4.0), (5.0, 5.0)))
            is Relation.OUTSIDE
        )

    def test_classify_partial(self):
        assert (
            self.region.classify(AABB((0.0, 0.0), (2.0, 2.0)))
            is Relation.PARTIAL
        )

    def test_contains_points(self):
        pts = np.array([[2.0, 2.0], [0.0, 0.0], [3.0, 3.0]])
        assert list(self.region.contains_points(pts)) == [True, False, True]

    def test_count_inside(self):
        pts = np.array([[2.0, 2.0], [0.0, 0.0]])
        assert self.region.count_inside(pts) == 1


class TestBallRegion:
    def setup_method(self):
        self.region = BallRegion((0.0, 0.0), 2.0)

    def test_rejects_bad_radius(self):
        with pytest.raises(GeometryError):
            BallRegion((0.0, 0.0), 0.0)

    def test_classify_inside(self):
        # Farthest corner of this cell is at distance sqrt(2) < 2.
        assert (
            self.region.classify(AABB((0.0, 0.0), (1.0, 1.0)))
            is Relation.INSIDE
        )

    def test_classify_outside(self):
        assert (
            self.region.classify(AABB((3.0, 3.0), (4.0, 4.0)))
            is Relation.OUTSIDE
        )

    def test_classify_partial(self):
        assert (
            self.region.classify(AABB((1.0, 1.0), (3.0, 3.0)))
            is Relation.PARTIAL
        )

    def test_boundary_cell_is_inside(self):
        # Farthest corner exactly on the sphere counts as inside.
        region = BallRegion((0.0, 0.0), np.sqrt(2.0))
        assert (
            region.classify(AABB((0.0, 0.0), (1.0, 1.0))) is Relation.INSIDE
        )

    def test_contains_points_includes_boundary(self):
        pts = np.array([[2.0, 0.0], [2.1, 0.0]])
        assert list(self.region.contains_points(pts)) == [True, False]

    def test_3d(self):
        region = BallRegion((0.0, 0.0, 0.0), 1.0)
        assert region.dim == 3
        pts = np.array([[0.5, 0.5, 0.5], [1.0, 1.0, 1.0]])
        assert list(region.contains_points(pts)) == [True, False]

    def test_dim_mismatch_raises(self):
        with pytest.raises(GeometryError):
            self.region.classify(AABB.cube(1.0, 3))


class TestUnionRegion:
    def setup_method(self):
        self.union = UnionRegion(
            [
                RectRegion(AABB((0.0, 0.0), (1.0, 1.0))),
                BallRegion((3.0, 3.0), 1.0),
            ]
        )

    def test_needs_members(self):
        with pytest.raises(GeometryError):
            UnionRegion([])

    def test_rejects_mixed_dims(self):
        with pytest.raises(GeometryError):
            UnionRegion(
                [
                    RectRegion(AABB.cube(1.0, 2)),
                    BallRegion((0.0, 0.0, 0.0), 1.0),
                ]
            )

    def test_inside_any_member(self):
        cell = AABB((0.2, 0.2), (0.8, 0.8))
        assert self.union.classify(cell) is Relation.INSIDE

    def test_outside_all_members(self):
        cell = AABB((10.0, 10.0), (11.0, 11.0))
        assert self.union.classify(cell) is Relation.OUTSIDE

    def test_partial(self):
        cell = AABB((0.5, 0.5), (1.5, 1.5))
        assert self.union.classify(cell) is Relation.PARTIAL

    def test_contains_points_or_semantics(self):
        pts = np.array([[0.5, 0.5], [3.0, 3.5], [5.0, 5.0]])
        assert list(self.union.contains_points(pts)) == [True, True, False]

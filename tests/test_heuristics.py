"""Tests for repro.core.heuristics (the Sec.-V distribution heuristics)."""

import numpy as np
import pytest

from repro.core import (
    AllocationContext,
    DistributionModelAllocator,
    EvenSplitAllocator,
    ProportionalAllocator,
    SingleBucketAllocator,
    UniformBuckets,
    make_allocator,
)
from repro.errors import QueryError

SPEC = UniformBuckets(1.0, 5)  # buckets [0,1) ... [4,5]


def _alloc(allocator, u, v, w, context=None):
    return allocator.allocate(
        SPEC,
        np.asarray(u, dtype=float),
        np.asarray(v, dtype=float),
        np.asarray(w, dtype=float),
        context,
    )


class TestMassConservation:
    """Every heuristic must conserve total counts exactly."""

    @pytest.mark.parametrize("heuristic", [1, 2, 3, 4])
    def test_random_ranges(self, heuristic, rng):
        u = rng.uniform(0, 4, size=200)
        v = u + rng.uniform(0, 1.5, size=200)
        v = np.minimum(v, 5.0)
        w = rng.integers(1, 50, size=200).astype(float)
        context = AllocationContext(
            offsets=rng.integers(0, 6, size=(200, 2)),
            cell_sides=np.array([0.3, 0.3]),
            rng=rng,
        )
        out = _alloc(make_allocator(heuristic), u, v, w, context)
        assert out.sum() == pytest.approx(w.sum())
        assert (out >= -1e-12).all()


class TestSingleBucket:
    def test_first_choice(self):
        out = _alloc(SingleBucketAllocator("first"), [1.5], [3.5], [10.0])
        np.testing.assert_allclose(out, [0, 10, 0, 0, 0])

    def test_random_choice_in_span(self, rng):
        allocator = SingleBucketAllocator("random")
        context = AllocationContext(rng=rng)
        out = _alloc(allocator, [1.5], [3.5], [10.0], context)
        assert out.sum() == pytest.approx(10.0)
        assert out[[0, 4]].sum() == 0  # only buckets 1..3 eligible

    def test_unknown_choice(self):
        with pytest.raises(QueryError):
            SingleBucketAllocator("median")


class TestEvenSplit:
    def test_three_bucket_span(self):
        """Fig. 7's example: each bucket gets n1*n2/3."""
        out = _alloc(EvenSplitAllocator(), [1.5], [3.5], [9.0])
        np.testing.assert_allclose(out, [0, 3, 3, 3, 0])

    def test_single_bucket_span(self):
        out = _alloc(EvenSplitAllocator(), [2.2], [2.8], [7.0])
        np.testing.assert_allclose(out, [0, 0, 7, 0, 0])

    def test_many_pairs(self):
        out = _alloc(
            EvenSplitAllocator(), [0.5, 3.2], [1.5, 4.9], [4.0, 6.0]
        )
        np.testing.assert_allclose(out, [2, 2, 0, 3, 3])


class TestProportional:
    def test_fig7_overlap_shares(self):
        """The paper's formula: [(i+1)p - u, p, v - (i+2)p] / (v - u)."""
        u, v, w = 1.5, 3.75, 9.0
        out = _alloc(ProportionalAllocator(), [u], [v], [w])
        length = v - u
        np.testing.assert_allclose(
            out,
            [0, w * 0.5 / length, w * 1.0 / length, w * 0.75 / length, 0],
        )

    def test_uniform_distance_distribution_is_exact(self, rng):
        """For genuinely uniform distances the heuristic is unbiased."""
        u, v = 1.0, 4.0
        distances = rng.uniform(u, v, size=200000)
        empirical = SPEC.bin_counts(distances)
        out = _alloc(ProportionalAllocator(), [u], [v], [distances.size])
        np.testing.assert_allclose(out, empirical, rtol=0.02, atol=1.0)

    def test_degenerate_range(self):
        out = _alloc(ProportionalAllocator(), [2.0], [2.0], [5.0])
        np.testing.assert_allclose(out, [0, 0, 5, 0, 0])

    def test_wide_span(self):
        out = _alloc(ProportionalAllocator(), [0.0], [5.0], [10.0])
        np.testing.assert_allclose(out, [2, 2, 2, 2, 2])

    def test_custom_widths(self):
        from repro.core import CustomBuckets

        spec = CustomBuckets([0.0, 1.0, 3.0, 4.0])
        out = ProportionalAllocator().allocate(
            spec,
            np.array([0.5]),
            np.array([3.5]),
            np.array([6.0]),
        )
        np.testing.assert_allclose(out, [1.0, 4.0, 1.0])


class TestDistributionModel:
    def test_adjacent_cells_profile(self, rng):
        """For two adjacent unit cells the sampled distance profile must
        match a direct Monte-Carlo estimate."""
        allocator = DistributionModelAllocator(samples=4096)
        context = AllocationContext(
            offsets=np.array([[1, 0]]),
            cell_sides=np.array([1.0, 1.0]),
            rng=rng,
        )
        out = _alloc(allocator, [0.0], [np.sqrt(5.0)], [1000.0], context)

        a = rng.uniform(size=(200000, 2))
        b = rng.uniform(size=(200000, 2)) + np.array([1.0, 0.0])
        d = np.sqrt(((a - b) ** 2).sum(axis=1))
        reference = SPEC.bin_counts(d) / 200000.0 * 1000.0
        np.testing.assert_allclose(out, reference, atol=25.0)

    def test_cache_reuse(self, rng):
        allocator = DistributionModelAllocator(samples=128)
        context = AllocationContext(
            offsets=np.array([[2, 1], [2, 1], [1, 2]]),
            cell_sides=np.array([0.5, 0.5]),
            rng=rng,
        )
        _alloc(
            allocator, [0.5, 0.5, 0.5], [2.0, 2.0, 2.0],
            [1.0, 1.0, 1.0], context,
        )
        assert len(allocator._cache) == 2  # (2,1) and (1,2)

    def test_fallback_without_context(self):
        out = _alloc(
            DistributionModelAllocator(), [1.5], [3.5], [9.0]
        )
        assert out.sum() == pytest.approx(9.0)

    def test_rejects_bad_samples(self):
        with pytest.raises(QueryError):
            DistributionModelAllocator(samples=0)


class TestFactory:
    def test_by_number_and_name(self):
        assert isinstance(make_allocator(1), SingleBucketAllocator)
        assert isinstance(make_allocator("even"), EvenSplitAllocator)
        assert isinstance(make_allocator(3), ProportionalAllocator)
        assert isinstance(
            make_allocator("model"), DistributionModelAllocator
        )

    def test_passthrough(self):
        allocator = ProportionalAllocator()
        assert make_allocator(allocator) is allocator

    def test_kwargs_forwarded(self):
        allocator = make_allocator(4, samples=7)
        assert allocator.samples == 7

    def test_unknown(self):
        with pytest.raises(QueryError):
            make_allocator(9)

"""Parallel DM-SDH engine: bit-identical results, shm hygiene.

The whole value proposition of ``engine="parallel"`` is that its merge
is *exact*: every partial count is an integral float64 far below 2^53,
so summing per-worker histograms in any order reproduces the serial
grid engine bit for bit.  These tests pin that across data families,
periodic boundaries, restricted varieties, and the start==leaf
(triangle-sharded) code path — and verify that no run, successful or
failed, leaks a shared-memory segment.
"""

import numpy as np
import pytest

from repro import (
    BallRegion,
    DistanceOverflowError,
    OverflowPolicy,
    QueryError,
    SDHRequest,
    SDHStats,
    UniformBuckets,
    compute_sdh,
    build_plan,
    dm_sdh_grid,
    gaussian_clusters,
    parallel_sdh,
    random_types,
    uniform,
    zipf_clustered,
)
from repro.parallel import SharedArrayBundle, live_segments
from repro.parallel.shm import attach
from repro.quadtree import GridPyramid

WORKERS = 2


def _assert_same_stats(serial: SDHStats, parallel: SDHStats) -> None:
    assert parallel.start_level == serial.start_level
    assert parallel.levels_visited == serial.levels_visited
    assert parallel.resolve_calls == serial.resolve_calls
    assert parallel.resolved_pairs == serial.resolved_pairs
    assert parallel.resolved_distances == serial.resolved_distances
    assert parallel.distance_computations == serial.distance_computations


class TestBitIdentical:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: uniform(1500, dim=3, rng=11),
            lambda: uniform(1200, dim=2, rng=12),
            lambda: zipf_clustered(1000, dim=2, rng=13),
            lambda: gaussian_clusters(900, dim=3, rng=14),
        ],
        ids=["uniform3d", "uniform2d", "zipf2d", "gauss3d"],
    )
    def test_across_data_families(self, maker):
        data = maker()
        pyramid = GridPyramid(data)
        spec = UniformBuckets.with_count(data.max_possible_distance, 12)
        serial_stats, parallel_stats = SDHStats(), SDHStats()
        reference = dm_sdh_grid(pyramid, spec=spec, stats=serial_stats)
        hist = parallel_sdh(
            pyramid, spec=spec, workers=WORKERS, stats=parallel_stats
        )
        np.testing.assert_array_equal(reference.counts, hist.counts)
        _assert_same_stats(serial_stats, parallel_stats)

    def test_periodic(self):
        data = uniform(1000, dim=3, rng=21)
        reference = compute_sdh(
            data, SDHRequest(num_buckets=10, periodic=True)
        )
        hist = compute_sdh(
            data,
            SDHRequest(num_buckets=10, periodic=True, workers=WORKERS),
        )
        np.testing.assert_array_equal(reference.counts, hist.counts)

    def test_triangle_path_when_start_is_leaf(self):
        """Many narrow buckets force the start map down to the leaf map,
        exercising the worker-enumerated triangle shards."""
        data = uniform(800, dim=2, rng=22)
        pyramid = GridPyramid(data)
        spec = UniformBuckets.with_count(data.max_possible_distance, 96)
        reference = dm_sdh_grid(pyramid, spec=spec)
        hist = parallel_sdh(pyramid, spec=spec, workers=WORKERS)
        np.testing.assert_array_equal(reference.counts, hist.counts)

    def test_restricted_region_and_types(self):
        data = random_types(
            uniform(1200, dim=2, rng=23), {"A": 0.6, "B": 0.4}, rng=23
        )
        for extra in (
            {"type_filter": "A"},
            {"type_pair": ("A", "B")},
            {"region": BallRegion([0.5, 0.5], 0.35)},
        ):
            reference = compute_sdh(data, SDHRequest(num_buckets=8, **extra))
            hist = compute_sdh(
                data, SDHRequest(num_buckets=8, workers=WORKERS, **extra)
            )
            np.testing.assert_array_equal(reference.counts, hist.counts)

    def test_plan_run_parallel_request(self):
        data = uniform(1000, dim=2, rng=24)
        plan = build_plan(data)
        reference = plan.run(SDHRequest(num_buckets=8))
        hist = plan.run(SDHRequest(num_buckets=8, workers=WORKERS))
        np.testing.assert_array_equal(reference.counts, hist.counts)

    def test_explicit_parallel_engine_name(self):
        data = uniform(600, dim=2, rng=25)
        reference = compute_sdh(data, SDHRequest(num_buckets=8))
        hist = compute_sdh(
            data,
            SDHRequest(num_buckets=8, engine="parallel", workers=WORKERS),
        )
        np.testing.assert_array_equal(reference.counts, hist.counts)

    def test_worker_count_does_not_change_counts(self):
        data = uniform(900, dim=3, rng=26)
        pyramid = GridPyramid(data)
        spec = UniformBuckets.with_count(data.max_possible_distance, 12)
        reference = dm_sdh_grid(pyramid, spec=spec)
        for workers in (2, 3):
            hist = parallel_sdh(pyramid, spec=spec, workers=workers)
            np.testing.assert_array_equal(reference.counts, hist.counts)


class TestInlineFallback:
    def test_single_worker_runs_without_pool(self):
        data = uniform(500, dim=2, rng=31)
        pyramid = GridPyramid(data)
        spec = UniformBuckets.with_count(data.max_possible_distance, 8)
        hist = parallel_sdh(pyramid, spec=spec, workers=1)
        np.testing.assert_array_equal(
            dm_sdh_grid(pyramid, spec=spec).counts, hist.counts
        )
        assert live_segments() == set()

    def test_invalid_workers_rejected(self):
        data = uniform(100, dim=2, rng=32)
        with pytest.raises(QueryError, match="workers"):
            parallel_sdh(GridPyramid(data), bucket_width=0.5, workers=0)


class TestSharedMemoryHygiene:
    def test_no_leak_after_success(self):
        data = uniform(800, dim=2, rng=41)
        parallel_sdh(
            GridPyramid(data), bucket_width=0.25, workers=WORKERS
        )
        assert live_segments() == set()

    def test_no_leak_after_worker_error(self):
        """A too-short spec with the RAISE policy blows up inside the
        workers; the parent must still unlink the segment."""
        data = uniform(800, dim=2, rng=42)
        spec = UniformBuckets(0.05, 3)  # reach 0.15 << box diagonal
        with pytest.raises(DistanceOverflowError):
            parallel_sdh(
                GridPyramid(data),
                spec=spec,
                workers=WORKERS,
                policy=OverflowPolicy.RAISE,
            )
        assert live_segments() == set()

    def test_bundle_round_trip(self):
        positions = np.random.default_rng(43).random((64, 3))
        starts = np.arange(10, dtype=np.int64)
        bundle = SharedArrayBundle(
            {"positions": positions, "leaf_starts": starts}
        )
        try:
            assert bundle.descriptor().segment in live_segments()
            views, handle = attach(bundle.descriptor())
            np.testing.assert_array_equal(views["positions"], positions)
            np.testing.assert_array_equal(views["leaf_starts"], starts)
            assert not views["positions"].flags.writeable
            del views
            handle.close()
        finally:
            bundle.unlink()
        assert live_segments() == set()

    def test_unlink_idempotent(self):
        bundle = SharedArrayBundle({"x": np.zeros(8)})
        bundle.unlink()
        bundle.unlink()
        assert live_segments() == set()

    def test_no_leak_under_repeated_midflight_failures(self):
        """Stress: several back-to-back runs that die inside the workers
        must each unlink their segment — one leaked permit-equivalent
        per failure would show up as a growing live set."""
        data = uniform(600, dim=2, rng=44)
        pyramid = GridPyramid(data)
        spec = UniformBuckets(0.05, 3)  # reach 0.15 << box diagonal
        for _ in range(3):
            with pytest.raises(DistanceOverflowError):
                parallel_sdh(
                    pyramid,
                    spec=spec,
                    workers=WORKERS,
                    policy=OverflowPolicy.RAISE,
                )
            assert live_segments() == set()
        # And a healthy run straight after still works and stays clean.
        parallel_sdh(pyramid, bucket_width=0.25, workers=WORKERS)
        assert live_segments() == set()

    def test_live_segment_gauge_returns_to_zero(self):
        from repro.observability import get_registry

        data = uniform(400, dim=2, rng=45)
        parallel_sdh(GridPyramid(data), bucket_width=0.3, workers=WORKERS)
        gauge = get_registry().get("sdh_shm_live_segments")
        assert gauge is not None
        assert gauge.value == 0

"""Leaf-resolution kernel tier: backends, eligibility, capability wiring.

The numpy backend is the bit-identical reference; the numba tests run
only where numba is installed (the CI kernel job) and assert exact
equality against it.  Engine-integration parity pins ``kernel=`` through
``compute_sdh`` and checks the histograms never move.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CustomBuckets,
    QueryError,
    SDHRequest,
    UniformBuckets,
    available_engines,
    compute_sdh,
    get_engine,
    lattice,
    uniform,
    zipf_clustered,
)
from repro.kernels import (
    KERNEL_TIERS,
    NUMBA_AVAILABLE,
    available_kernel_tiers,
    fast_uniform_width,
    get_backend,
    resolve_kernel,
)
from repro.kernels import exact

NBINS = 12

numba_only = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba is not installed"
)


def _dataset(family: str):
    if family == "uniform2d":
        return uniform(160, dim=2, rng=11)
    if family == "uniform3d":
        return uniform(120, dim=3, rng=12)
    if family == "zipf":
        return zipf_clustered(150, dim=2, rng=13)
    return lattice(12, dim=2)


FAMILIES = ("uniform2d", "uniform3d", "zipf", "lattice")


def _spec_for(data):
    return UniformBuckets.with_count(data.max_possible_distance, NBINS)


def _reference_self(positions, width, nbins, box_lengths=None):
    """Unchunked O(n^2) reference with the contract's op sequence."""
    n = positions.shape[0]
    idx_a, idx_b = np.triu_indices(n, k=1)
    delta = positions[idx_a] - positions[idx_b]
    if box_lengths is not None:
        lengths = np.asarray(box_lengths, dtype=np.float64)
        delta = delta - lengths * np.round(delta / lengths)
    distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
    bins = np.minimum((distances / width).astype(np.int64), nbins - 1)
    return np.bincount(bins, minlength=nbins).astype(np.int64), distances.size


class TestResolution:
    def test_numpy_always_available(self):
        tiers = available_kernel_tiers()
        assert tiers[0] == "numpy"
        assert set(tiers) <= set(KERNEL_TIERS)

    def test_auto_resolves_to_available_tier(self):
        assert resolve_kernel("auto") in available_kernel_tiers()

    def test_explicit_names_pass_through(self):
        assert resolve_kernel("numpy") == "numpy"
        assert resolve_kernel("NumPy") == "numpy"
        # Explicit numba resolves even when absent (the planner prices
        # it); get_backend is what enforces availability.
        assert resolve_kernel("numba") == "numba"

    def test_unknown_tier_rejected(self):
        with pytest.raises(QueryError, match="unknown kernel tier"):
            resolve_kernel("fortran")

    def test_get_backend_names(self):
        assert get_backend("numpy").NAME == "numpy"
        assert get_backend("auto").NAME == resolve_kernel("auto")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_missing_numba_backend_rejected(self):
        with pytest.raises(QueryError, match="numba is not installed"):
            get_backend("numba")


class TestFastUniformWidth:
    def test_covering_uniform_spec_is_eligible(self):
        spec = UniformBuckets.with_count(10.0, 5)
        assert fast_uniform_width(spec, 10.0) == spec.width
        assert fast_uniform_width(spec, 9.0) == spec.width

    def test_short_spec_is_ineligible(self):
        spec = UniformBuckets.with_count(5.0, 5)
        assert fast_uniform_width(spec, 10.0) is None

    def test_custom_buckets_are_ineligible(self):
        spec = CustomBuckets([0.0, 1.0, 2.0, 4.0])
        assert fast_uniform_width(spec, 2.0) is None

    def test_edge_tolerance(self):
        # A reach epsilon past the top edge still qualifies.
        spec = UniformBuckets.with_count(10.0, 5)
        assert fast_uniform_width(spec, 10.0 * (1 + 1e-12)) == spec.width


class TestNumpyBackend:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_dense_self_matches_unchunked_reference(self, family):
        data = _dataset(family)
        spec = _spec_for(data)
        expected, npairs = _reference_self(
            data.positions, spec.width, NBINS
        )
        backend = get_backend("numpy")
        for chunk in (7, 64, 4096):
            hist, total = backend.bin_dense_self(
                data.positions, spec.width, NBINS, chunk=chunk
            )
            np.testing.assert_array_equal(hist, expected)
            assert total == npairs == data.num_pairs

    def test_periodic_minimum_image(self):
        data = uniform(130, dim=3, rng=21)
        spec = UniformBuckets.with_count(data.max_periodic_distance, NBINS)
        lengths = np.asarray(data.box.sides)
        expected, npairs = _reference_self(
            data.positions, spec.width, NBINS, box_lengths=lengths
        )
        hist, total = get_backend("numpy").bin_dense_self(
            data.positions, spec.width, NBINS, box_lengths=lengths,
            chunk=17,
        )
        np.testing.assert_array_equal(hist, expected)
        assert total == npairs

    def test_cross_plus_self_decomposition(self):
        # self(A ++ B) == self(A) + self(B) + cross(A, B): a metamorphic
        # identity that is not circular with the implementation.
        a = uniform(90, dim=2, rng=31).positions
        b = uniform(70, dim=2, rng=32).positions
        both = np.vstack((a, b))
        reach = float(
            np.sqrt(((both.max(0) - both.min(0)) ** 2).sum())
        )
        spec = UniformBuckets.with_count(reach, NBINS)
        backend = get_backend("numpy")
        whole, n_whole = backend.bin_dense_self(both, spec.width, NBINS)
        ha, na = backend.bin_dense_self(a, spec.width, NBINS)
        hb, nb = backend.bin_dense_self(b, spec.width, NBINS)
        hab, nab = backend.bin_dense_cross(a, b, spec.width, NBINS)
        np.testing.assert_array_equal(whole, ha + hb + hab)
        assert n_whole == na + nb + nab == both.shape[0] * (
            both.shape[0] - 1
        ) // 2

    def test_gathered_pairs_match_dense_self(self):
        data = uniform(80, dim=2, rng=41)
        spec = _spec_for(data)
        backend = get_backend("numpy")
        idx_a, idx_b = np.triu_indices(data.size, k=1)
        gathered, n_gathered = backend.bin_gathered_pairs(
            data.positions, idx_a, idx_b, spec.width, NBINS
        )
        dense, n_dense = backend.bin_dense_self(
            data.positions, spec.width, NBINS
        )
        np.testing.assert_array_equal(gathered, dense)
        assert n_gathered == n_dense

    def test_empty_and_singleton_inputs(self):
        backend = get_backend("numpy")
        empty_idx = np.zeros(0, dtype=np.int64)
        one = np.zeros((1, 3))
        hist, total = backend.bin_gathered_pairs(
            one, empty_idx, empty_idx, 1.0, NBINS
        )
        assert total == 0 and not hist.any()
        hist, total = backend.bin_dense_self(one, 1.0, NBINS)
        assert total == 0 and not hist.any()
        hist, total = backend.bin_dense_cross(
            np.zeros((0, 3)), one, 1.0, NBINS
        )
        assert total == 0 and not hist.any()


@numba_only
class TestNumbaParity:
    """Bit-identity of the compiled tier against the numpy reference."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_dense_self_identical(self, family):
        data = _dataset(family)
        spec = _spec_for(data)
        ref, n_ref = get_backend("numpy").bin_dense_self(
            data.positions, spec.width, NBINS
        )
        hist, total = get_backend("numba").bin_dense_self(
            data.positions, spec.width, NBINS
        )
        np.testing.assert_array_equal(hist, ref)
        assert total == n_ref

    def test_dense_cross_identical(self):
        a = uniform(90, dim=3, rng=51).positions
        b = uniform(60, dim=3, rng=52).positions
        reach = float(np.sqrt(27.0))  # unit-cube pair, generous cover
        spec = UniformBuckets.with_count(max(reach, 1.0) * 4, NBINS)
        ref, n_ref = get_backend("numpy").bin_dense_cross(
            a, b, spec.width, NBINS
        )
        hist, total = get_backend("numba").bin_dense_cross(
            a, b, spec.width, NBINS
        )
        np.testing.assert_array_equal(hist, ref)
        assert total == n_ref

    def test_periodic_identical(self):
        data = uniform(110, dim=3, rng=53)
        spec = UniformBuckets.with_count(data.max_periodic_distance, NBINS)
        lengths = np.asarray(data.box.sides)
        ref, _ = get_backend("numpy").bin_dense_self(
            data.positions, spec.width, NBINS, box_lengths=lengths
        )
        hist, _ = get_backend("numba").bin_dense_self(
            data.positions, spec.width, NBINS, box_lengths=lengths
        )
        np.testing.assert_array_equal(hist, ref)

    def test_gathered_pairs_identical(self):
        data = zipf_clustered(140, dim=2, rng=54)
        spec = _spec_for(data)
        idx_a, idx_b = np.triu_indices(data.size, k=1)
        ref, _ = get_backend("numpy").bin_gathered_pairs(
            data.positions, idx_a, idx_b, spec.width, NBINS
        )
        hist, _ = get_backend("numba").bin_gathered_pairs(
            data.positions, idx_a, idx_b, spec.width, NBINS
        )
        np.testing.assert_array_equal(hist, ref)


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def data(self):
        return uniform(220, dim=2, rng=61)

    @pytest.mark.parametrize("engine", ("brute", "tree", "grid"))
    def test_pinned_numpy_matches_auto(self, data, engine):
        base = compute_sdh(
            data, SDHRequest(num_buckets=NBINS, engine=engine)
        )
        pinned = compute_sdh(
            data,
            SDHRequest(num_buckets=NBINS, engine=engine, kernel="numpy"),
        )
        np.testing.assert_array_equal(base.counts, pinned.counts)
        assert base.total == data.num_pairs

    def test_all_tiers_agree_across_engines(self, data):
        reference = None
        for engine in ("brute", "tree", "grid"):
            for tier in available_kernel_tiers():
                hist = compute_sdh(
                    data,
                    SDHRequest(
                        num_buckets=NBINS, engine=engine, kernel=tier
                    ),
                )
                if reference is None:
                    reference = hist.counts
                np.testing.assert_array_equal(hist.counts, reference)

    def test_custom_buckets_ignore_kernel_pin(self, data):
        # Ineligible specs fall back to the inline binning path; the
        # pin must be accepted and the result unchanged.
        edges = CustomBuckets(
            [0.0, 0.1, 0.5, data.max_possible_distance]
        )
        base = compute_sdh(data, SDHRequest(spec=edges))
        pinned = compute_sdh(
            data, SDHRequest(spec=edges, kernel="numpy")
        )
        np.testing.assert_array_equal(base.counts, pinned.counts)

    def test_unavailable_tier_is_rejected(self, data):
        request = SDHRequest(
            num_buckets=NBINS, engine="grid", kernel="numba"
        )
        if "numba" in available_kernel_tiers():
            hist = compute_sdh(data, request)
            reference = compute_sdh(
                data,
                SDHRequest(
                    num_buckets=NBINS, engine="grid", kernel="numpy"
                ),
            )
            np.testing.assert_array_equal(hist.counts, reference.counts)
        else:
            with pytest.raises(QueryError, match="kernel tier"):
                compute_sdh(data, request)


# ----------------------------------------------------------------------
# Weighted variants.  The weighted kernels return exact fixed-point limb
# arrays; `exact.limbs_to_ints` recovers exact product-scale integers,
# so equality below is bit-exact by construction — any drift is a bug in
# a backend's op sequence, not floating-point noise.
# ----------------------------------------------------------------------
_wcoord = st.integers(min_value=0, max_value=64).map(lambda k: k / 64.0)
_weight = st.one_of(
    st.just(0.0),
    st.floats(
        min_value=-4.0, max_value=4.0,
        allow_nan=False, allow_infinity=False,
    ),
    st.sampled_from([1e-140, -1e140, 1e100, -2.5e-100, 1e-300]),
)


@st.composite
def _weighted_cloud(draw, min_size=2, max_size=18):
    dim = draw(st.sampled_from([2, 3]))
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    points = draw(
        st.lists(
            st.tuples(*[_wcoord] * dim), min_size=n, max_size=n
        )
    )
    weights = draw(st.lists(_weight, min_size=n, max_size=n))
    return (
        np.asarray(points, dtype=np.float64),
        np.asarray(weights, dtype=np.float64),
    )


def _finalized(limbs):
    return exact.finalize(exact.limbs_to_ints(limbs))


class TestWeightedKernelProperties:
    """Metamorphic properties of the numpy weighted reference."""

    @settings(max_examples=30, deadline=None)
    @given(_weighted_cloud())
    def test_unit_weights_match_unweighted_counts(self, cloud):
        positions, _ = cloud
        backend = get_backend("numpy")
        ones = np.ones(positions.shape[0])
        limbs, n_w = backend.bin_dense_self_weighted(
            positions, ones, 0.25, NBINS, chunk=5
        )
        hist, n_u = backend.bin_dense_self(positions, 0.25, NBINS)
        np.testing.assert_array_equal(
            _finalized(limbs), hist.astype(np.float64)
        )
        assert n_w == n_u

    @settings(max_examples=30, deadline=None)
    @given(_weighted_cloud(), st.integers(min_value=1, max_value=20))
    def test_power_of_two_scaling_is_exact(self, cloud, exponent):
        # Bilinearity on an exactly-representable scalar: scaling the
        # weights by 2^j scales every bucket by 2^(2j), bit for bit.
        positions, weights = cloud
        factor = float(2.0**exponent)
        backend = get_backend("numpy")
        base, _ = backend.bin_dense_self_weighted(
            positions, weights, 0.25, NBINS
        )
        scaled, _ = backend.bin_dense_self_weighted(
            positions, weights * factor, 0.25, NBINS
        )
        np.testing.assert_array_equal(
            _finalized(scaled), _finalized(base) * factor * factor
        )

    @settings(max_examples=30, deadline=None)
    @given(_weighted_cloud(min_size=4))
    def test_self_cross_decomposition_is_exact(self, cloud):
        # self(A ++ B) == self(A) + self(B) + cross(A, B) at the exact
        # integer layer — chunk boundaries and pair order cannot move it.
        positions, weights = cloud
        cut = positions.shape[0] // 2
        backend = get_backend("numpy")
        whole, _ = backend.bin_dense_self_weighted(
            positions, weights, 0.25, NBINS, chunk=3
        )
        ha, _ = backend.bin_dense_self_weighted(
            positions[:cut], weights[:cut], 0.25, NBINS
        )
        hb, _ = backend.bin_dense_self_weighted(
            positions[cut:], weights[cut:], 0.25, NBINS
        )
        hab, _ = backend.bin_dense_cross_weighted(
            positions[:cut], positions[cut:],
            weights[:cut], weights[cut:], 0.25, NBINS,
        )
        np.testing.assert_array_equal(
            exact.limbs_to_ints(whole),
            exact.limbs_to_ints(ha)
            + exact.limbs_to_ints(hb)
            + exact.limbs_to_ints(hab),
        )

    @settings(max_examples=20, deadline=None)
    @given(_weighted_cloud())
    def test_gathered_pairs_match_dense_self(self, cloud):
        positions, weights = cloud
        backend = get_backend("numpy")
        idx_a, idx_b = np.triu_indices(positions.shape[0], k=1)
        gathered, _ = backend.bin_gathered_pairs_weighted(
            positions, weights, idx_a, idx_b, 0.25, NBINS, chunk=4
        )
        dense, _ = backend.bin_dense_self_weighted(
            positions, weights, 0.25, NBINS
        )
        np.testing.assert_array_equal(
            exact.limbs_to_ints(gathered), exact.limbs_to_ints(dense)
        )


@numba_only
class TestNumbaWeightedParity:
    """Compiled weighted kernels must match numpy limb-for-limb."""

    @settings(max_examples=25, deadline=None)
    @given(_weighted_cloud())
    def test_dense_self_identical(self, cloud):
        positions, weights = cloud
        ref, n_ref = get_backend("numpy").bin_dense_self_weighted(
            positions, weights, 0.25, NBINS
        )
        limbs, total = get_backend("numba").bin_dense_self_weighted(
            positions, weights, 0.25, NBINS
        )
        np.testing.assert_array_equal(
            exact.limbs_to_ints(limbs), exact.limbs_to_ints(ref)
        )
        assert total == n_ref

    @settings(max_examples=25, deadline=None)
    @given(_weighted_cloud(min_size=4))
    def test_dense_cross_identical(self, cloud):
        positions, weights = cloud
        cut = positions.shape[0] // 2
        args = (
            positions[:cut], positions[cut:],
            weights[:cut], weights[cut:], 0.25, NBINS,
        )
        ref, n_ref = get_backend("numpy").bin_dense_cross_weighted(*args)
        limbs, total = get_backend("numba").bin_dense_cross_weighted(*args)
        np.testing.assert_array_equal(
            exact.limbs_to_ints(limbs), exact.limbs_to_ints(ref)
        )
        assert total == n_ref

    @settings(max_examples=25, deadline=None)
    @given(_weighted_cloud())
    def test_gathered_pairs_identical_periodic(self, cloud):
        positions, weights = cloud
        idx_a, idx_b = np.triu_indices(positions.shape[0], k=1)
        lengths = np.ones(positions.shape[1])
        args = (positions, weights, idx_a, idx_b, 0.25, NBINS)
        ref, _ = get_backend("numpy").bin_gathered_pairs_weighted(
            *args, box_lengths=lengths
        )
        limbs, _ = get_backend("numba").bin_gathered_pairs_weighted(
            *args, box_lengths=lengths
        )
        np.testing.assert_array_equal(
            exact.limbs_to_ints(limbs), exact.limbs_to_ints(ref)
        )


class TestCapabilityMatrix:
    def test_every_engine_declares_tiers(self):
        for name, caps in available_engines().items():
            assert isinstance(caps.kernel_tiers, tuple), name
            assert "numpy" in caps.kernel_tiers, name
            assert set(caps.kernel_tiers) <= set(KERNEL_TIERS), name

    def test_builtins_advertise_available_tiers(self):
        for name in ("brute", "tree", "grid", "parallel"):
            caps = get_engine(name).capabilities
            assert caps.kernel_tiers == available_kernel_tiers()


class TestRequestKernelField:
    def test_default_is_auto_and_omitted_from_json(self):
        request = SDHRequest(num_buckets=4)
        assert request.kernel == "auto"
        assert "kernel" not in request.to_dict()

    def test_explicit_kernel_round_trips(self):
        request = SDHRequest(num_buckets=4, kernel="numpy").normalize()
        body = request.to_dict()
        assert body["kernel"] == "numpy"
        assert SDHRequest.from_dict(body) == request

    def test_normalize_lowercases(self):
        assert SDHRequest(num_buckets=4, kernel="NUMBA").normalize(
        ).kernel == "numba"

    def test_bad_kernel_rejected(self):
        with pytest.raises(QueryError, match="kernel"):
            SDHRequest(num_buckets=4, kernel="cuda").validate()

"""Tests for the differential engine runner (repro.verify.differential)."""

from __future__ import annotations

import numpy as np

from repro.core.engines import register_engine, unregister_engine
from repro.core.query import compute_sdh
from repro.core.request import SDHRequest
from repro.data.particles import ParticleSet
from repro.verify import (
    check_adm_bounds,
    compare_engines,
    exact_engines,
    run_engines,
)


class TestRunEngines:
    def test_all_builtin_engines_answer_plain_request(self, small_uniform_2d):
        outcomes = run_engines(small_uniform_2d, SDHRequest(num_buckets=8))
        ran = [o for o in outcomes if o.ran]
        assert {o.engine for o in ran} == set(exact_engines())
        assert all(o.histogram is not None for o in ran)

    def test_incapable_engine_is_skipped_not_failed(self, small_uniform_2d):
        # The tree engine cannot do periodic boundaries.
        outcomes = run_engines(
            small_uniform_2d, SDHRequest(num_buckets=8, periodic=True)
        )
        by_name = {o.engine: o for o in outcomes}
        assert not by_name["tree"].ran
        assert by_name["grid"].ran
        assert by_name["grid"].histogram is not None

    def test_rejected_request_recorded_as_error(self, small_uniform_2d):
        # An empty query region is a QueryError on every engine.
        from repro.geometry import AABB, RectRegion

        region = RectRegion(AABB.from_arrays([2.0, 2.0], [3.0, 3.0]))
        outcomes = run_engines(
            small_uniform_2d, SDHRequest(num_buckets=8, region=region)
        )
        ran = [o for o in outcomes if o.ran]
        assert ran and all(o.error == "QueryError" for o in ran)


class TestCompareEngines:
    def test_no_discrepancies_on_plain_request(self, small_uniform_2d):
        _, found = compare_engines(
            small_uniform_2d, SDHRequest(num_buckets=16)
        )
        assert found == []

    def test_no_discrepancies_on_agreed_rejection(self, small_uniform_2d):
        # All engines must reject a same-type pair the same way; uniform
        # rejection is agreement, not a discrepancy.
        typed = small_uniform_2d.with_types(
            np.zeros(small_uniform_2d.size, dtype=np.int32)
        )
        _, found = compare_engines(
            typed, SDHRequest(num_buckets=8, type_pair=(0, 0))
        )
        assert found == []

    def test_detects_count_divergence(self, small_uniform_2d):
        def mutant_run(particles, request, spec, *, stats=None, rng=None):
            hist = compute_sdh(
                particles, request.replace(engine="grid"), stats=stats
            )
            hist.counts[0] += 1  # the planted bug
            return hist

        from repro.core.engines import get_engine

        register_engine(
            "mutant", mutant_run, get_engine("grid").capabilities
        )
        try:
            _, found = compare_engines(
                small_uniform_2d,
                SDHRequest(num_buckets=8),
                engines=("grid", "mutant"),
            )
        finally:
            unregister_engine("mutant")
        assert len(found) == 1
        assert found[0].kind == "engine_mismatch"
        assert "bucket 0" in found[0].detail

    def test_detects_outcome_divergence(self, small_uniform_2d):
        from repro.core.engines import get_engine
        from repro.errors import QueryError

        def refusing_run(particles, request, spec, *, stats=None, rng=None):
            raise QueryError("planted refusal")

        register_engine(
            "refuser", refusing_run, get_engine("grid").capabilities
        )
        try:
            _, found = compare_engines(
                small_uniform_2d,
                SDHRequest(num_buckets=8),
                engines=("grid", "refuser"),
            )
        finally:
            unregister_engine("refuser")
        assert len(found) == 1
        assert found[0].kind == "outcome_mismatch"
        assert "refuser" in found[0].detail

    def test_discrepancy_serializes(self, small_uniform_2d):
        _, found = compare_engines(
            small_uniform_2d, SDHRequest(num_buckets=4), case="x", seed=3
        )
        assert found == []  # healthy engines; shape check via Discrepancy
        from repro.verify import Discrepancy

        d = Discrepancy("invariant", "detail", case="c", seed=9)
        assert d.to_dict() == {
            "kind": "invariant", "detail": "detail", "case": "c", "seed": 9
        }


class TestADMBounds:
    def test_heuristics_stay_inside_model_envelope(self):
        assert check_adm_bounds() == []

    def test_broken_allocator_escapes_envelope(self, monkeypatch):
        # Simulate an allocator bug: heuristic 3 degrades to heuristic 1
        # (all mass into one bucket of the resolvable range).
        import repro.verify.differential as differential

        real = differential.adm_sdh

        def degraded(data, spec=None, levels=None, heuristic=3, rng=None):
            return real(
                data, spec=spec, levels=levels, heuristic=1, rng=rng
            )

        monkeypatch.setattr(differential, "adm_sdh", degraded)
        found = check_adm_bounds(heuristics=(3,))
        assert found, "a degraded heuristic 3 must escape the envelope"
        assert all(f.kind == "adm_bound" for f in found)


def test_parallel_engine_gets_workers(small_uniform_2d):
    # run_engines must actually exercise the multiprocess merge path.
    outcomes = run_engines(
        small_uniform_2d, SDHRequest(num_buckets=8), engines=("parallel",)
    )
    (outcome,) = outcomes
    assert outcome.ran and outcome.histogram is not None


def test_duplicate_heavy_data_agrees():
    rng = np.random.default_rng(5)
    base = rng.uniform(0.0, 1.0, (30, 2))
    positions = np.vstack([base, base[rng.integers(0, 30, 40)]])
    particles = ParticleSet(positions)
    _, found = compare_engines(particles, SDHRequest(num_buckets=8))
    assert found == []

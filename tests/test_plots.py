"""Tests for repro.bench.plots (ASCII log-log charts)."""

import pytest

from repro.bench import loglog_chart
from repro.errors import QueryError


class TestLogLogChart:
    def test_basic_structure(self):
        chart = loglog_chart(
            [10, 100, 1000],
            {"a": [1.0, 10.0, 100.0]},
            width=30,
            height=10,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert any("o a" in line for line in lines)  # legend
        assert any("+" in line and "-" in line for line in lines)  # axis

    def test_markers_distinct_per_series(self):
        chart = loglog_chart(
            [1, 10],
            {"first": [1.0, 2.0], "second": [3.0, 4.0]},
            width=20,
            height=8,
        )
        assert "o first" in chart
        assert "x second" in chart

    def test_power_law_renders_as_diagonal(self):
        """A slope-1 law on log-log axes fills the diagonal: marker
        column indices must increase with row from bottom to top."""
        xs = [1, 10, 100, 1000, 10000]
        chart = loglog_chart(
            xs, {"s": [float(x) for x in xs]}, width=40, height=10
        )
        rows = [
            (idx, line.index("o"))
            for idx, line in enumerate(chart.splitlines())
            if "o" in line and "|" in line
        ]
        cols = [col for _idx, col in rows]
        assert cols == sorted(cols, reverse=True)

    def test_nan_points_skipped(self):
        chart = loglog_chart(
            [1, 10, 100],
            {"s": [1.0, float("nan"), 100.0]},
            width=20,
            height=8,
        )
        assert chart.count("o") >= 2

    def test_guide_slope_drawn(self):
        chart = loglog_chart(
            [1, 10, 100],
            {"s": [1.0, 31.6, 1000.0]},
            width=30,
            height=10,
            guide_slope=1.5,
        )
        assert "." in chart
        assert "guide slope 1.5" in chart

    def test_rejects_nonpositive_data(self):
        with pytest.raises(QueryError):
            loglog_chart([1, 10], {"s": [0.0, 1.0]}, width=20, height=8)

    def test_rejects_length_mismatch(self):
        with pytest.raises(QueryError):
            loglog_chart([1, 10], {"s": [1.0]}, width=20, height=8)

    def test_rejects_tiny_canvas(self):
        with pytest.raises(QueryError):
            loglog_chart([1, 10], {"s": [1.0, 2.0]}, width=4, height=2)

    def test_all_nan_rejected(self):
        with pytest.raises(QueryError):
            loglog_chart(
                [1, 10],
                {"s": [float("nan"), float("nan")]},
                width=20,
                height=8,
            )

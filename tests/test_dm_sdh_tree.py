"""Tests for repro.core.dm_sdh (the node-recursive reference engine),
including the Sec. III-C.3 query varieties."""

import numpy as np
import pytest

from repro.core import (
    SDHStats,
    UniformBuckets,
    brute_force_cross_sdh,
    brute_force_sdh,
    dm_sdh_tree,
)
from repro.data import random_types, uniform, zipf_clustered
from repro.errors import QueryError
from repro.geometry import AABB, BallRegion, RectRegion
from repro.quadtree import DensityMapTree


class TestBasics:
    def test_accepts_particleset_directly(self):
        data = uniform(120, dim=2, rng=0)
        h = dm_sdh_tree(data, bucket_width=0.3)
        assert h.total == data.num_pairs

    def test_spec_and_width_exclusive(self):
        data = uniform(50, rng=0)
        with pytest.raises(QueryError):
            dm_sdh_tree(
                data, spec=UniformBuckets(1.0, 2), bucket_width=0.5
            )
        with pytest.raises(QueryError):
            dm_sdh_tree(data)

    def test_mbr_requires_mbr_tree(self):
        tree = DensityMapTree(uniform(50, rng=0))
        with pytest.raises(QueryError):
            dm_sdh_tree(tree, bucket_width=0.5, use_mbr=True)

    def test_stats_populated(self):
        data = uniform(400, dim=2, rng=1)
        stats = SDHStats()
        spec = UniformBuckets.with_count(data.max_possible_distance, 4)
        dm_sdh_tree(data, spec=spec, stats=stats)
        assert stats.start_level is not None
        assert stats.total_resolve_calls > 0
        assert stats.total_resolved_pairs > 0


class TestRegionQueries:
    """First variety: SDH of a sub-region of the simulated space."""

    def setup_method(self):
        self.data = uniform(400, dim=2, rng=31)
        self.spec = UniformBuckets.with_count(
            self.data.max_possible_distance, 6
        )

    def _reference(self, region):
        mask = region.contains_points(self.data.positions)
        subset = self.data.select(mask)
        return brute_force_sdh(subset, spec=self.spec)

    @pytest.mark.parametrize(
        "region",
        [
            RectRegion(AABB((0.1, 0.1), (0.6, 0.7))),
            RectRegion(AABB((0.0, 0.0), (0.5, 1.0))),
            BallRegion((0.5, 0.5), 0.3),
        ],
        ids=["rect", "half", "ball"],
    )
    def test_matches_filtered_brute_force(self, region):
        got = dm_sdh_tree(self.data, spec=self.spec, region=region)
        expected = self._reference(region)
        np.testing.assert_array_equal(expected.counts, got.counts)

    def test_region_covering_everything(self):
        region = RectRegion(AABB((-1.0, -1.0), (2.0, 2.0)))
        got = dm_sdh_tree(self.data, spec=self.spec, region=region)
        expected = brute_force_sdh(self.data, spec=self.spec)
        np.testing.assert_array_equal(expected.counts, got.counts)

    def test_region_with_mbr(self):
        tree = DensityMapTree(self.data, with_mbr=True)
        region = BallRegion((0.4, 0.6), 0.25)
        got = dm_sdh_tree(
            tree, spec=self.spec, region=region, use_mbr=True
        )
        expected = self._reference(region)
        np.testing.assert_array_equal(expected.counts, got.counts)

    def test_region_dim_mismatch(self):
        with pytest.raises(QueryError):
            dm_sdh_tree(
                self.data,
                spec=self.spec,
                region=BallRegion((0.0, 0.0, 0.0), 1.0),
            )


class TestTypeQueries:
    """Second variety: SDH of particles of a specific type."""

    def setup_method(self):
        base = uniform(350, dim=2, rng=41)
        self.data = random_types(
            base, {"C": 3.0, "O": 1.0, "H": 1.0}, rng=5
        )
        self.spec = UniformBuckets.with_count(
            self.data.max_possible_distance, 6
        )
        self.tree = DensityMapTree(self.data)

    def test_single_type_matches_filtered_brute_force(self):
        got = dm_sdh_tree(self.tree, spec=self.spec, type_filter="C")
        expected = brute_force_sdh(self.data.of_type("C"), spec=self.spec)
        np.testing.assert_array_equal(expected.counts, got.counts)

    def test_single_type_by_code(self):
        by_name = dm_sdh_tree(self.tree, spec=self.spec, type_filter="O")
        code = self.data.resolve_type("O")
        by_code = dm_sdh_tree(self.tree, spec=self.spec, type_filter=code)
        np.testing.assert_array_equal(by_name.counts, by_code.counts)

    def test_cross_type_matches_brute_force(self):
        got = dm_sdh_tree(
            self.tree, spec=self.spec, type_pair=("C", "O")
        )
        expected = brute_force_cross_sdh(
            self.data.of_type("C"), self.data.of_type("O"), self.spec
        )
        np.testing.assert_array_equal(expected.counts, got.counts)
        assert got.total == self.data.type_count("C") * self.data.type_count(
            "O"
        )

    def test_cross_type_symmetric(self):
        co = dm_sdh_tree(self.tree, spec=self.spec, type_pair=("C", "O"))
        oc = dm_sdh_tree(self.tree, spec=self.spec, type_pair=("O", "C"))
        np.testing.assert_array_equal(co.counts, oc.counts)

    def test_type_pair_same_type_rejected(self):
        with pytest.raises(QueryError):
            dm_sdh_tree(
                self.tree, spec=self.spec, type_pair=("C", "C")
            )

    def test_filter_and_pair_exclusive(self):
        with pytest.raises(QueryError):
            dm_sdh_tree(
                self.tree,
                spec=self.spec,
                type_filter="C",
                type_pair=("C", "O"),
            )

    def test_typed_query_on_untyped_tree(self):
        plain = uniform(50, rng=0)
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            dm_sdh_tree(plain, bucket_width=0.5, type_filter=0)


class TestCombinedRestrictions:
    def test_region_plus_type(self):
        base = zipf_clustered(300, dim=2, rng=51)
        data = random_types(base, {"A": 1.0, "B": 1.0}, rng=6)
        spec = UniformBuckets.with_count(data.max_possible_distance, 5)
        region = RectRegion(AABB((0.0, 0.0), (0.7, 0.7)))

        got = dm_sdh_tree(
            data, spec=spec, region=region, type_filter="A"
        )
        mask = region.contains_points(data.positions)
        subset = data.select(mask).of_type("A")
        expected = brute_force_sdh(subset, spec=spec)
        np.testing.assert_array_equal(expected.counts, got.counts)

    def test_region_plus_type_pair(self):
        base = uniform(300, dim=2, rng=52)
        data = random_types(base, {"A": 1.0, "B": 1.0}, rng=7)
        spec = UniformBuckets.with_count(data.max_possible_distance, 5)
        region = BallRegion((0.5, 0.5), 0.35)

        got = dm_sdh_tree(
            data, spec=spec, region=region, type_pair=("A", "B")
        )
        subset = data.select(region.contains_points(data.positions))
        expected = brute_force_cross_sdh(
            subset.of_type("A"), subset.of_type("B"), spec
        )
        np.testing.assert_array_equal(expected.counts, got.counts)

"""Tests for the result cache + request coalescing serving tier."""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.request import SDHRequest
from repro.errors import QueryTimeout, ServiceError
from repro.service import (
    ResultCache,
    SDHClient,
    SDHService,
    ServiceConfig,
    result_cache_key,
)


def _req(**kwargs):
    kwargs.setdefault("num_buckets", 8)
    return SDHRequest(**kwargs).normalize()


class TestKey:
    def test_identical_requests_share_a_key(self):
        a = result_cache_key("sdh", "fp", _req())
        b = result_cache_key("sdh", "fp", _req())
        assert a == b == ("fp", a[1])

    def test_normalized_spellings_share_a_key(self):
        loose = SDHRequest.from_dict(
            {"num_buckets": 8, "engine": "GRID", "policy": "raise"}
        )
        assert result_cache_key("sdh", "fp", loose) == result_cache_key(
            "sdh", "fp", _req(engine="grid")
        )

    def test_different_requests_differ(self):
        base = result_cache_key("sdh", "fp", _req())
        assert result_cache_key("sdh", "fp", _req(num_buckets=9)) != base
        assert result_cache_key("rdf", "fp", _req()) != base
        assert result_cache_key("sdh", "other", _req()) != base
        assert result_cache_key("sdh", "fp", _req(use_mbr=True)) != base

    def test_exact_queries_ignore_rng(self):
        assert result_cache_key("sdh", "fp", _req(), 7) == result_cache_key(
            "sdh", "fp", _req(), None
        )

    def test_seeded_approximate_keys_on_rng(self):
        approx = _req(levels=2)
        a = result_cache_key("sdh", "fp", approx, 7)
        b = result_cache_key("sdh", "fp", approx, 8)
        assert a is not None and b is not None and a != b

    def test_unseeded_approximate_is_uncacheable(self):
        assert result_cache_key("sdh", "fp", _req(levels=2), None) is None


class TestStorage:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(("a", "q"), 1)
        cache.put(("b", "q"), 2)
        assert cache.get(("a", "q")) == 1  # refresh 'a'
        cache.put(("c", "q"), 3)  # evicts 'b'
        assert cache.get(("b", "q")) is None
        assert cache.get(("a", "q")) == 1
        assert cache.stats.evictions == 1

    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = ResultCache(capacity=4, ttl=10.0, clock=lambda: now[0])
        cache.put(("a", "q"), "v")
        now[0] = 9.0
        assert cache.get(("a", "q")) == "v"
        now[0] = 10.5
        assert cache.get(("a", "q")) is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_invalidate_dataset_is_per_fingerprint(self):
        cache = ResultCache(capacity=8)
        cache.put(("a", "q1"), 1)
        cache.put(("a", "q2"), 2)
        cache.put(("b", "q1"), 3)
        assert cache.invalidate_dataset("a") == 2
        assert cache.get(("a", "q1")) is None
        assert cache.get(("b", "q1")) == 3
        assert cache.stats.invalidations == 2

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(capacity=0)
        cache.put(("a", "q"), 1)
        assert cache.get(("a", "q")) is None
        assert len(cache) == 0

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=-1)
        with pytest.raises(ServiceError):
            ResultCache(ttl=0.0)


class TestSingleflight:
    def test_fetch_outcomes(self):
        cache = ResultCache(capacity=4)
        value, outcome = cache.fetch(("a", "q"), lambda: 41)
        assert (value, outcome) == (41, "miss")
        value, outcome = cache.fetch(("a", "q"), lambda: 42)
        assert (value, outcome) == (41, "hit")
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_concurrent_identical_fetches_compute_once(self):
        cache = ResultCache(capacity=4)
        computes = []
        entered = threading.Event()
        n = 8

        def compute():
            computes.append(1)
            entered.set()
            # Hold the computation until every follower is waiting on
            # the in-flight entry, so the coalesce count is exact.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with cache._lock:
                    flight = cache._inflight.get(("a", "q"))
                    if flight is not None and flight.followers == n - 1:
                        break
                time.sleep(0.002)
            return 99

        results = []
        errors = []

        def fetch():
            try:
                results.append(cache.fetch(("a", "q"), compute))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert errors == []
        assert len(computes) == 1
        assert sorted(r[1] for r in results).count("miss") == 1
        assert sum(1 for r in results if r[1] == "coalesced") == n - 1
        assert all(r[0] == 99 for r in results)
        assert cache.stats.coalesced == n - 1
        assert cache._inflight == {}

    def test_leader_error_propagates_to_followers(self):
        cache = ResultCache(capacity=4)
        started = threading.Event()
        release = threading.Event()

        def compute():
            started.set()
            assert release.wait(5.0)
            raise ValueError("shared failure")

        caught = []

        def leader():
            with pytest.raises(ValueError):
                cache.fetch(("a", "q"), compute)

        def follower():
            try:
                cache.fetch(("a", "q"), compute)
            except Exception as exc:
                caught.append(exc)

        lead = threading.Thread(target=leader)
        lead.start()
        assert started.wait(5.0)
        follow = threading.Thread(target=follower)
        follow.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with cache._lock:
                flight = cache._inflight.get(("a", "q"))
                if flight is not None and flight.followers == 1:
                    break
            time.sleep(0.002)
        release.set()
        lead.join(timeout=5.0)
        follow.join(timeout=5.0)
        assert len(caught) == 1
        assert isinstance(caught[0], ValueError)
        # Errors are never cached: the next fetch recomputes.
        assert cache.fetch(("a", "q"), lambda: 7) == (7, "miss")

    def test_follower_wait_timeout(self):
        cache = ResultCache(capacity=4)
        started = threading.Event()
        release = threading.Event()

        def compute():
            started.set()
            release.wait(5.0)
            return 1

        lead = threading.Thread(
            target=lambda: cache.fetch(("a", "q"), compute)
        )
        lead.start()
        try:
            assert started.wait(5.0)
            with pytest.raises(QueryTimeout):
                cache.fetch(("a", "q"), lambda: 2, wait_timeout=0.05)
        finally:
            release.set()
            lead.join(timeout=5.0)

    def test_zero_capacity_still_coalesces(self):
        cache = ResultCache(capacity=0)
        started = threading.Event()
        release = threading.Event()
        results = []

        def compute():
            started.set()
            assert release.wait(5.0)
            return 5

        lead = threading.Thread(
            target=lambda: results.append(cache.fetch(("a", "q"), compute))
        )
        lead.start()
        assert started.wait(5.0)
        follow = threading.Thread(
            target=lambda: results.append(
                cache.fetch(("a", "q"), lambda: 6, wait_timeout=5.0)
            )
        )
        follow.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            with cache._lock:
                flight = cache._inflight.get(("a", "q"))
                if flight is not None and flight.followers == 1:
                    break
            time.sleep(0.002)
        release.set()
        lead.join(timeout=5.0)
        follow.join(timeout=5.0)
        assert sorted(r[1] for r in results) == ["coalesced", "miss"]
        assert all(r[0] == 5 for r in results)
        assert len(cache) == 0  # nothing stored

    def test_snapshot_shape(self):
        cache = ResultCache(capacity=3, ttl=60.0)
        cache.fetch(("a", "q"), lambda: 1)
        body = cache.snapshot()
        assert body["size"] == 1
        assert body["capacity"] == 3
        assert body["ttl_seconds"] == 60.0
        assert body["misses"] == 1
        assert body["in_flight"] == 0
        assert body["hit_rate"] == 0.0


# ----------------------------------------------------------------------
# End-to-end over HTTP
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dataset():
    from repro.data import uniform

    return uniform(400, dim=2, rng=17)


class TestServerIntegration:
    def test_identical_cold_requests_compute_once(self, dataset):
        """The acceptance criterion: N concurrent identical cold
        requests trigger exactly one histogram computation (coalesce
        counter = N-1), bit-identical to uncached execution."""
        from repro import compute_sdh
        from repro.core.request import SDHRequest as Req

        n = 6
        with SDHService(max_workers=2, max_queue=16) as service:
            state = service.state
            original = state.cache.get_or_build
            computes = []

            def gated_get_or_build(particles, request=None):
                computes.append(1)
                # Hold the one computation until all followers have
                # joined the in-flight entry, so the coalesce count is
                # deterministic, then proceed.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    with state.results._lock:
                        flights = list(state.results._inflight.values())
                    if flights and flights[0].followers == n - 1:
                        break
                    time.sleep(0.005)
                return original(particles, request)

            state.cache.get_or_build = gated_get_or_build
            client = SDHClient(service.url)
            key = client.register(dataset)
            barrier = threading.Barrier(n)
            results = []
            errors = []

            def fire():
                try:
                    barrier.wait(timeout=10.0)
                    results.append(client.sdh(key, num_buckets=32))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert errors == []
            assert len(computes) == 1
            stats = client.stats()
            assert stats["results"]["coalesced"] == n - 1
            assert stats["results"]["misses"] == 1
            assert stats["executor"]["submitted"] == 1
            expected = compute_sdh(
                dataset, request=Req(num_buckets=32).normalize()
            )
            for hist in results:
                np.testing.assert_array_equal(hist.counts, expected.counts)

    def test_repeat_requests_hit_the_result_cache(self, dataset):
        with SDHService(max_workers=2) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            first = client._request(
                "POST", "/v1/sdh", {"dataset": key, "num_buckets": 8}
            )
            again = client._request(
                "POST", "/v1/sdh", {"dataset": key, "num_buckets": 8}
            )
            assert first["result_source"] == "miss"
            assert again["result_source"] == "hit"
            assert again["counts"] == first["counts"]
            stats = client.stats()
            assert stats["results"]["hits"] == 1
            assert stats["executor"]["submitted"] == 1

    def test_reregistration_invalidates_results(self, dataset):
        with SDHService(max_workers=2) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            client.sdh(key, num_buckets=8)
            assert len(service.state.results) == 1
            client.register(dataset)  # re-register same content
            stats = client.stats()
            assert stats["results"]["invalidations"] == 1
            payload = client._request(
                "POST", "/v1/sdh", {"dataset": key, "num_buckets": 8}
            )
            assert payload["result_source"] == "miss"

    def test_plan_eviction_invalidates_results(self, dataset):
        from repro.data import uniform

        other = uniform(150, dim=2, rng=23)
        config = ServiceConfig(cache_capacity=1, max_workers=2)
        with SDHService(config) as service:
            client = SDHClient(service.url)
            key_a = client.register(dataset)
            client.sdh(key_a, num_buckets=8)
            key_b = client.register(other)
            client.sdh(key_b, num_buckets=8)  # evicts A's plan
            stats = client.stats()
            assert stats["cache"]["evictions"] == 1
            assert stats["results"]["invalidations"] == 1
            resident = list(service.state.results._entries)
            assert all(fp != key_a for fp, _ in resident)

    def test_result_ttl_expires_server_side(self, dataset):
        config = ServiceConfig(max_workers=2, result_ttl=0.05)
        with SDHService(config) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            client.sdh(key, num_buckets=8)
            time.sleep(0.1)
            payload = client._request(
                "POST", "/v1/sdh", {"dataset": key, "num_buckets": 8}
            )
            assert payload["result_source"] == "miss"
            assert client.stats()["results"]["expirations"] == 1

    def test_unseeded_approximate_bypasses_cache(self, dataset):
        with SDHService(max_workers=2) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            body = {"dataset": key, "num_buckets": 8, "levels": 1}
            first = client._request("POST", "/v1/sdh", body)
            second = client._request("POST", "/v1/sdh", body)
            assert first["result_source"] == "bypass"
            assert second["result_source"] == "bypass"
            stats = client.stats()
            assert stats["results"]["bypassed"] == 2
            assert stats["executor"]["submitted"] == 2
            # A seeded approximate query caches normally.
            seeded = dict(body, rng=11)
            assert client._request(
                "POST", "/v1/sdh", seeded
            )["result_source"] == "miss"
            assert client._request(
                "POST", "/v1/sdh", seeded
            )["result_source"] == "hit"

    def test_batch_shares_the_result_cache(self, dataset):
        with SDHService(max_workers=2) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            single = client.sdh(key, num_buckets=8)
            before = client.stats()["executor"]["submitted"]
            batch = client.sdh_batch(
                key, [{"num_buckets": 8}, {"num_buckets": 12}]
            )
            np.testing.assert_array_equal(batch[0].counts, single.counts)
            stats = client.stats()
            # The batch consumed one executor slot but re-used the
            # cached num_buckets=8 result; only num_buckets=12 computed.
            assert stats["executor"]["submitted"] == before + 1
            assert stats["results"]["hits"] == 1
            # ...and the batch-computed result serves later singles.
            assert client._request(
                "POST", "/v1/sdh", {"dataset": key, "num_buckets": 12}
            )["result_source"] == "hit"

    def test_rdf_results_are_cached(self, dataset):
        with SDHService(max_workers=2) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            first = client._request(
                "POST", "/v1/rdf", {"dataset": key, "num_buckets": 16}
            )
            again = client._request(
                "POST", "/v1/rdf", {"dataset": key, "num_buckets": 16}
            )
            assert first["result_source"] == "miss"
            assert again["result_source"] == "hit"
            assert again["g"] == first["g"]
            # Different finite-size normalization is a different key.
            shell = client._request(
                "POST", "/v1/rdf",
                {"dataset": key, "num_buckets": 16, "finite_size": "shell"},
            )
            assert shell["result_source"] == "miss"

    def test_disabled_result_cache_still_serves(self, dataset):
        config = ServiceConfig(max_workers=2, result_cache_capacity=0)
        with SDHService(config) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            client.sdh(key, num_buckets=8)
            client.sdh(key, num_buckets=8)
            stats = client.stats()
            assert stats["results"]["hits"] == 0
            assert stats["results"]["misses"] == 2
            assert stats["executor"]["submitted"] == 2


# ----------------------------------------------------------------------
# Client socket-timeout regression (satellite bugfix)
# ----------------------------------------------------------------------
class _FakeResponse:
    def __init__(self, body: dict):
        self._body = json.dumps(body).encode("utf-8")

    def read(self) -> bytes:
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class TestClientTimeoutStretch:
    def test_socket_timeout_helper(self):
        client = SDHClient("http://localhost:1", timeout=60.0)
        assert client._socket_timeout({}) == 60.0
        # A small server budget never *shrinks* the socket timeout...
        assert client._socket_timeout({"timeout": 1}) == 60.0
        # ...a large one stretches it past the budget (plus slack)...
        assert client._socket_timeout({"timeout": 120}) == 125.0
        # ...and an unlimited budget waits forever.
        assert client._socket_timeout({"timeout": None}) is None

    @pytest.mark.parametrize("endpoint", ["sdh", "batch", "rdf"])
    def test_requests_carry_the_stretched_timeout(
        self, monkeypatch, endpoint
    ):
        """A per-request server budget beyond the socket default must
        stretch the socket timeout — otherwise the client gives up
        first with an opaque URLError instead of QueryTimeout."""
        seen = {}
        hist_body = {
            "edges": [0.0, 1.0],
            "counts": [0],
            "total": 0,
            "num_buckets": 1,
            "approximate": False,
            "engine": "grid",
        }
        bodies = {
            "sdh": dict(hist_body, dataset="fp"),
            "batch": {"dataset": "fp", "count": 1, "results": [hist_body]},
            "rdf": {
                "dataset": "fp", "r": [0.5], "g": [1.0],
                "edges": [0.0, 1.0], "density": 1.0,
                "num_particles": 2, "dim": 2,
            },
        }

        def fake_urlopen(request, timeout=None):
            seen["timeout"] = timeout
            return _FakeResponse(bodies[endpoint])

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = SDHClient("http://localhost:1", timeout=10.0)
        if endpoint == "sdh":
            client.sdh("fp", num_buckets=1, timeout=300)
        elif endpoint == "batch":
            client.sdh_batch("fp", [{"num_buckets": 1}], timeout=300)
        else:
            client.rdf("fp", num_buckets=1, timeout=300)
        assert seen["timeout"] == 305.0

"""Tests for repro.data.particles (the dataset container)."""

import numpy as np
import pytest

from repro.data import ParticleSet
from repro.errors import DatasetError
from repro.geometry import AABB


class TestConstruction:
    def test_basic(self):
        pts = np.array([[0.1, 0.2], [0.8, 0.9]])
        ps = ParticleSet(pts)
        assert ps.size == 2
        assert ps.dim == 2
        assert ps.num_pairs == 1
        assert len(ps) == 2

    def test_default_box_is_cube(self):
        pts = np.array([[0.0, 0.0], [2.0, 1.0]])
        ps = ParticleSet(pts)
        sides = ps.box.sides
        assert sides[0] == pytest.approx(sides[1])
        assert bool(ps.box.contains_points(pts, closed=True).all())

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            ParticleSet(np.empty((0, 2)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(DatasetError):
            ParticleSet(np.zeros(5))
        with pytest.raises(DatasetError):
            ParticleSet(np.zeros((5, 4)))

    def test_rejects_non_finite(self):
        with pytest.raises(DatasetError):
            ParticleSet(np.array([[0.0, np.nan]]))

    def test_rejects_points_outside_box(self):
        with pytest.raises(DatasetError):
            ParticleSet(
                np.array([[2.0, 2.0]]), box=AABB((0.0, 0.0), (1.0, 1.0))
            )

    def test_positions_read_only(self):
        ps = ParticleSet(np.array([[0.5, 0.5]]))
        with pytest.raises(ValueError):
            ps.positions[0, 0] = 1.0

    def test_rejects_type_length_mismatch(self):
        with pytest.raises(DatasetError):
            ParticleSet(
                np.array([[0.5, 0.5]]), types=np.array([0, 1], np.int32)
            )

    def test_rejects_negative_type_codes(self):
        with pytest.raises(DatasetError):
            ParticleSet(
                np.array([[0.5, 0.5]]), types=np.array([-1], np.int32)
            )


class TestTypes:
    def setup_method(self):
        self.ps = ParticleSet(
            np.array([[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]]),
            types=np.array([0, 1, 0], np.int32),
            type_names={0: "C", 1: "O"},
        )

    def test_of_type_by_code(self):
        assert self.ps.of_type(0).size == 2

    def test_of_type_by_name(self):
        assert self.ps.of_type("O").size == 1

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            self.ps.of_type("H")

    def test_unknown_code(self):
        with pytest.raises(DatasetError):
            self.ps.of_type(7)

    def test_type_count(self):
        assert self.ps.type_count("C") == 2

    def test_untyped_dataset_raises(self):
        plain = ParticleSet(np.array([[0.1, 0.1]]))
        with pytest.raises(DatasetError):
            plain.of_type(0)


class TestSelection:
    def test_select_mask(self):
        ps = ParticleSet(np.array([[0.1, 0.1], [0.9, 0.9]]))
        sub = ps.select(np.array([True, False]))
        assert sub.size == 1
        assert sub.box == ps.box

    def test_empty_selection_raises(self):
        ps = ParticleSet(np.array([[0.1, 0.1]]))
        with pytest.raises(DatasetError):
            ps.select(np.array([False]))


class TestScaling:
    """The paper's duplication-scaling protocol (Sec. VI-A)."""

    def test_grow_by_duplication(self, rng):
        ps = ParticleSet(rng.uniform(size=(100, 2)))
        big = ps.scale_to(250, rng=rng)
        assert big.size == 250
        # Every grown particle coincides with an original one.
        original = {tuple(row) for row in ps.positions}
        grown = {tuple(row) for row in big.positions}
        assert grown <= original

    def test_grow_with_jitter_stays_in_box(self, rng):
        ps = ParticleSet(rng.uniform(size=(50, 2)))
        big = ps.scale_to(200, rng=rng, jitter=0.01)
        assert big.size == 200
        assert bool(
            big.box.contains_points(big.positions, closed=True).all()
        )

    def test_shrink(self, rng):
        ps = ParticleSet(rng.uniform(size=(100, 2)))
        small = ps.scale_to(30, rng=rng)
        assert small.size == 30

    def test_grow_preserves_types(self, rng):
        ps = ParticleSet(
            rng.uniform(size=(10, 2)),
            types=np.arange(10, dtype=np.int32) % 2,
        )
        big = ps.scale_to(40, rng=rng)
        assert big.types is not None
        assert big.types.size == 40

    def test_rejects_bad_target(self, rng):
        ps = ParticleSet(rng.uniform(size=(10, 2)))
        with pytest.raises(DatasetError):
            ps.scale_to(0)


class TestFingerprint:
    def test_stable_and_deterministic(self):
        pts = np.array([[0.1, 0.2], [0.8, 0.9], [0.4, 0.5]])
        a = ParticleSet(pts)
        b = ParticleSet(pts.copy())
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() == a.fingerprint()  # cached path
        assert len(a.fingerprint()) == 64  # hex SHA-256
        int(a.fingerprint(), 16)

    def test_sensitive_to_coordinates(self):
        pts = np.array([[0.1, 0.2], [0.8, 0.9]])
        moved = pts.copy()
        moved[0, 0] += 1e-12
        box = AABB.from_arrays([0.0, 0.0], [2.0, 2.0])
        assert (
            ParticleSet(pts, box).fingerprint()
            != ParticleSet(moved, box).fingerprint()
        )

    def test_sensitive_to_order(self):
        pts = np.array([[0.1, 0.2], [0.8, 0.9]])
        assert (
            ParticleSet(pts).fingerprint()
            != ParticleSet(pts[::-1]).fingerprint()
        )

    def test_sensitive_to_box(self):
        pts = np.array([[0.1, 0.2], [0.8, 0.9]])
        small = AABB.from_arrays([0.0, 0.0], [1.0, 1.0])
        large = AABB.from_arrays([0.0, 0.0], [2.0, 2.0])
        assert (
            ParticleSet(pts, small).fingerprint()
            != ParticleSet(pts, large).fingerprint()
        )

    def test_sensitive_to_types_and_names(self):
        pts = np.array([[0.1, 0.2], [0.8, 0.9]])
        plain = ParticleSet(pts)
        typed = ParticleSet(pts, types=np.array([0, 1]))
        named = ParticleSet(
            pts, types=np.array([0, 1]), type_names={0: "C", 1: "O"}
        )
        renamed = ParticleSet(
            pts, types=np.array([0, 1]), type_names={0: "C", 1: "N"}
        )
        prints = {
            p.fingerprint() for p in (plain, typed, named, renamed)
        }
        assert len(prints) == 4

    def test_derived_sets_fingerprint_differently(self):
        pts = np.random.default_rng(0).uniform(size=(20, 3))
        ps = ParticleSet(pts)
        subset = ps.select(np.arange(10))
        grown = ps.scale_to(30, rng=np.random.default_rng(1))
        assert len({ps.fingerprint(), subset.fingerprint(),
                    grown.fingerprint()}) == 3

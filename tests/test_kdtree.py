"""Tests for repro.partition.kdtree (alternative partitioning plan)."""

import numpy as np
import pytest

from repro import UniformBuckets, brute_force_sdh, uniform, zipf_clustered
from repro.core import OverflowPolicy, SDHStats
from repro.data import ParticleSet, gaussian_clusters
from repro.errors import DistanceOverflowError, QueryError, TreeError
from repro.partition import KDPartition, kd_sdh


class TestBuild:
    def test_structure_valid(self):
        data = uniform(500, dim=2, rng=201)
        tree = KDPartition(data, leaf_capacity=8)
        tree.validate()
        assert tree.root.count == 500

    def test_leaf_capacity_respected(self):
        data = uniform(300, dim=2, rng=202)
        tree = KDPartition(data, leaf_capacity=5)

        def walk(node):
            if node.is_leaf:
                assert node.count <= 5
            else:
                walk(node.left)
                walk(node.right)

        walk(tree.root)

    def test_balanced_on_skewed_data(self):
        """Median splits keep depth logarithmic even on clustered data
        — the adaptive advantage over the fixed grid."""
        data = zipf_clustered(1024, dim=2, rng=203)
        tree = KDPartition(data, leaf_capacity=8)
        assert tree.depth() <= int(np.ceil(np.log2(1024 / 8))) + 2

    def test_coincident_points_terminate(self, rng):
        pts = np.tile(rng.uniform(size=(1, 2)), (50, 1))
        data = ParticleSet(pts)
        tree = KDPartition(data, leaf_capacity=4)
        tree.validate()  # zero-span node becomes a (fat) leaf

    def test_rejects_bad_capacity(self):
        with pytest.raises(TreeError):
            KDPartition(uniform(10, rng=0), leaf_capacity=0)

    def test_3d(self):
        data = uniform(300, dim=3, rng=204)
        tree = KDPartition(data)
        tree.validate()


class TestExactness:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: uniform(350, dim=2, rng=205),
            lambda: zipf_clustered(350, dim=2, rng=205),
            lambda: gaussian_clusters(350, dim=2, rng=205),
            lambda: uniform(250, dim=3, rng=205),
        ],
        ids=["uniform2d", "zipf2d", "clusters2d", "uniform3d"],
    )
    @pytest.mark.parametrize("num_buckets", [1, 4, 13])
    def test_matches_brute_force(self, factory, num_buckets):
        data = factory()
        spec = UniformBuckets.with_count(
            data.max_possible_distance, num_buckets
        )
        expected = brute_force_sdh(data, spec=spec)
        got = kd_sdh(data, spec=spec)
        np.testing.assert_array_equal(expected.counts, got.counts)

    def test_leaf_capacity_does_not_change_result(self):
        data = uniform(300, dim=2, rng=206)
        spec = UniformBuckets.with_count(data.max_possible_distance, 6)
        reference = kd_sdh(data, spec=spec, leaf_capacity=4)
        for capacity in (1, 16, 64):
            got = kd_sdh(data, spec=spec, leaf_capacity=capacity)
            np.testing.assert_array_equal(reference.counts, got.counts)

    def test_nonzero_r0(self):
        from repro.core import CustomBuckets

        data = uniform(250, dim=2, rng=207)
        diag = data.max_possible_distance
        spec = CustomBuckets([0.2 * diag, 0.5 * diag, diag])
        expected = brute_force_sdh(data, spec=spec)
        got = kd_sdh(data, spec=spec)
        np.testing.assert_array_equal(expected.counts, got.counts)

    def test_overflow_policies(self):
        data = uniform(200, dim=2, rng=208)
        short = UniformBuckets(data.max_possible_distance / 6, 3)
        with pytest.raises(DistanceOverflowError):
            kd_sdh(data, spec=short)
        clamped = kd_sdh(
            data, spec=short, policy=OverflowPolicy.CLAMP
        )
        expected = brute_force_sdh(
            data, spec=short, policy=OverflowPolicy.CLAMP
        )
        np.testing.assert_array_equal(expected.counts, clamped.counts)

    def test_argument_validation(self):
        data = uniform(50, rng=0)
        with pytest.raises(QueryError):
            kd_sdh(data)
        with pytest.raises(QueryError):
            kd_sdh(
                data,
                spec=UniformBuckets(1.0, 2),
                bucket_width=0.5,
            )


class TestAdaptivity:
    def test_stats_populated(self):
        data = uniform(800, dim=2, rng=209)
        stats = SDHStats()
        kd_sdh(data, bucket_width=0.2, stats=stats)
        assert stats.total_resolve_calls > 0
        assert stats.total_resolved_pairs > 0
        resolved = sum(stats.resolved_distances.values())
        assert resolved + stats.distance_computations == data.num_pairs

    def test_reuse_partition_across_queries(self):
        data = uniform(400, dim=2, rng=210)
        tree = KDPartition(data)
        for l in (2, 8):
            spec = UniformBuckets.with_count(
                data.max_possible_distance, l
            )
            got = tree.histogram(spec=spec)
            expected = brute_force_sdh(data, spec=spec)
            np.testing.assert_array_equal(expected.counts, got.counts)

    def test_skew_costs_less_than_for_grid_partition(self):
        """On heavily clustered data the adaptive partition needs fewer
        total operations than it needs on uniform data of the same size
        (the tight boxes shrink with the clusters)."""
        spec_for = lambda d: UniformBuckets.with_count(
            d.max_possible_distance, 8
        )
        flat = uniform(1500, dim=2, rng=211)
        skew = zipf_clustered(1500, dim=2, rng=211)
        stats_flat, stats_skew = SDHStats(), SDHStats()
        kd_sdh(flat, spec=spec_for(flat), stats=stats_flat)
        kd_sdh(skew, spec=spec_for(skew), stats=stats_skew)
        assert (
            stats_skew.total_operations
            < 1.2 * stats_flat.total_operations
        )

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import UniformBuckets, uniform, zipf_clustered


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_uniform_2d():
    """A small 2D uniform dataset shared by engine tests."""
    return uniform(400, dim=2, rng=7)


@pytest.fixture
def small_uniform_3d():
    """A small 3D uniform dataset shared by engine tests."""
    return uniform(300, dim=3, rng=7)


@pytest.fixture
def small_zipf_2d():
    """A small clustered dataset (many empty cells)."""
    return zipf_clustered(400, dim=2, rng=7)


@pytest.fixture
def spec_for():
    """Factory: standard bucket spec with l buckets over a dataset."""

    def make(particles, num_buckets: int) -> UniformBuckets:
        return UniformBuckets.with_count(
            particles.max_possible_distance, num_buckets
        )

    return make

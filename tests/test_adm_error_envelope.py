"""ADM-SDH heuristic error envelopes against Table III of the paper.

The paper reports (Sec. VI-B, Table III) that the proportional and
model-based distribution heuristics keep the approximation error in
the low single-digit percent range, while the naive "everything into
one bucket of the resolvable range" heuristic 1 is markedly worse.
These tests pin that ordering and per-heuristic envelopes on seeded
uniform and Zipf-clustered workloads:

* heuristics 3 and 4 stay inside the paper's < 3% envelope;
* heuristic 2 (proportional by cell counts) stays under 7%;
* heuristic 1 stays under 25% — and is the *worst* of the four on
  every workload, which is the paper's qualitative claim.

The envelopes are calibrated with head-room against the deterministic
seeds below (observed maxima: h4 0.7%, h3 2.0%, h2 4.4%, h1 17.1%),
so a regression that degrades an allocator shows up long before it
reaches the next tier.
"""

from __future__ import annotations

import pytest

from repro.core.approximate import adm_sdh
from repro.core.query import compute_sdh
from repro.core.request import SDHRequest
from repro.data.generators import uniform, zipf_clustered

N = 3000
BUCKET_COUNTS = (16, 32)

#: Per-heuristic error ceilings (paper: <3% for the good allocators).
ENVELOPE = {1: 0.25, 2: 0.07, 3: 0.03, 4: 0.03}


@pytest.fixture(scope="module")
def workloads():
    """Datasets plus exact reference histograms, computed once."""
    table = {}
    for name, gen in (("uniform", uniform), ("zipf", zipf_clustered)):
        data = gen(N, dim=2, rng=0)
        for num_buckets in BUCKET_COUNTS:
            request = SDHRequest(num_buckets=num_buckets)
            spec = request.resolved_spec(data)
            exact = compute_sdh(data, request.replace(engine="grid"))
            table[name, num_buckets] = (data, spec, exact)
    return table


def _error(workloads, name, num_buckets, heuristic):
    data, spec, exact = workloads[name, num_buckets]
    approx = adm_sdh(data, spec=spec, levels=1, heuristic=heuristic, rng=0)
    return approx.error_rate(exact)


@pytest.mark.parametrize("heuristic", (1, 2, 3, 4))
@pytest.mark.parametrize("workload", ("uniform", "zipf"))
@pytest.mark.parametrize("num_buckets", BUCKET_COUNTS)
def test_heuristic_error_within_envelope(
    workloads, workload, num_buckets, heuristic
):
    observed = _error(workloads, workload, num_buckets, heuristic)
    assert observed <= ENVELOPE[heuristic], (
        f"heuristic {heuristic} error {observed:.4f} exceeds "
        f"{ENVELOPE[heuristic]:.2f} on {workload} (l={num_buckets})"
    )


@pytest.mark.parametrize("workload", ("uniform", "zipf"))
@pytest.mark.parametrize("num_buckets", BUCKET_COUNTS)
def test_heuristic_one_is_worst(workloads, workload, num_buckets):
    errors = {
        heuristic: _error(workloads, workload, num_buckets, heuristic)
        for heuristic in (1, 2, 3, 4)
    }
    assert errors[1] == max(errors.values()), errors


@pytest.mark.parametrize("workload", ("uniform", "zipf"))
def test_mass_conserved_by_every_heuristic(workloads, workload):
    data, spec, _ = workloads[workload, 16]
    for heuristic in (1, 2, 3, 4):
        approx = adm_sdh(
            data, spec=spec, levels=1, heuristic=heuristic, rng=0
        )
        assert approx.total == pytest.approx(data.num_pairs, rel=1e-9)

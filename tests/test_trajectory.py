"""Tests for repro.data.trajectory (frames and synthetic dynamics)."""

import numpy as np
import pytest

from repro.data import (
    ParticleSet,
    Trajectory,
    random_walk_trajectory,
    uniform,
)
from repro.errors import DatasetError


class TestTrajectory:
    def test_basic(self, rng):
        frames = [uniform(20, rng=1)]
        frames.append(
            ParticleSet(frames[0].positions.copy(), frames[0].box)
        )
        traj = Trajectory(frames)
        assert traj.num_frames == 2
        assert traj.size == 20
        assert len(traj) == 2
        assert traj[0] is frames[0]
        assert list(iter(traj)) == frames

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            Trajectory([])

    def test_rejects_size_mismatch(self):
        a = uniform(10, rng=1)
        b = uniform(11, rng=1)
        with pytest.raises(DatasetError):
            Trajectory([a, b])

    def test_rejects_box_mismatch(self):
        a = uniform(10, box_side=1.0, rng=1)
        b = uniform(10, box_side=2.0, rng=1)
        with pytest.raises(DatasetError):
            Trajectory([a, b])

    def test_moved_mask(self, rng):
        initial = uniform(30, rng=rng)
        traj = random_walk_trajectory(
            initial, 3, move_fraction=0.2, rng=rng
        )
        mask = traj.moved_mask(1)
        assert mask.sum() == max(1, round(0.2 * 30))
        with pytest.raises(DatasetError):
            traj.moved_mask(0)


class TestRandomWalk:
    def test_frame_count(self, rng):
        traj = random_walk_trajectory(uniform(25, rng=rng), 5, rng=rng)
        assert traj.num_frames == 5

    def test_only_fraction_moves(self, rng):
        initial = uniform(100, rng=rng)
        traj = random_walk_trajectory(
            initial, 2, move_fraction=0.1, rng=rng
        )
        moved = traj.moved_mask(1)
        assert moved.sum() <= 11

    def test_stays_in_box(self, rng):
        initial = uniform(50, rng=rng)
        traj = random_walk_trajectory(
            initial, 10, move_fraction=0.5, step_scale=0.3, rng=rng
        )
        for frame in traj:
            assert bool(
                frame.box.contains_points(frame.positions).all()
            )

    def test_types_preserved(self, rng):
        from repro.data import random_types

        initial = random_types(
            uniform(40, rng=rng), {"A": 1, "B": 1}, rng=rng
        )
        traj = random_walk_trajectory(initial, 3, rng=rng)
        for frame in traj:
            np.testing.assert_array_equal(frame.types, initial.types)

    def test_bad_parameters(self, rng):
        initial = uniform(10, rng=rng)
        with pytest.raises(DatasetError):
            random_walk_trajectory(initial, 0, rng=rng)
        with pytest.raises(DatasetError):
            random_walk_trajectory(initial, 2, move_fraction=0.0, rng=rng)
        with pytest.raises(DatasetError):
            random_walk_trajectory(initial, 2, move_fraction=1.5, rng=rng)

"""Tests for repro.quadtree.grid (the array density-map pyramid)."""

import numpy as np
import pytest

from repro.data import uniform, zipf_clustered
from repro.errors import TreeError
from repro.quadtree import DensityMapTree, GridPyramid


class TestCounts:
    def setup_method(self):
        self.data = uniform(500, dim=2, rng=21)
        self.pyramid = GridPyramid(self.data)

    def test_level_sums(self):
        for level in range(self.pyramid.height):
            assert self.pyramid.counts(level).sum() == 500

    def test_level_sizes(self):
        for level in range(self.pyramid.height):
            assert self.pyramid.counts(level).size == 4**level

    def test_root_level(self):
        assert self.pyramid.counts(0)[0] == 500

    def test_pooling_consistency(self):
        """Each parent's count equals the sum of its children."""
        for level in range(self.pyramid.height - 1):
            parents = self.pyramid.counts(level)
            ids = np.arange(parents.size, dtype=np.int64)
            children = self.pyramid.children_of(level, ids)
            child_counts = self.pyramid.counts(level + 1)[children]
            np.testing.assert_array_equal(
                child_counts.sum(axis=1), parents
            )

    def test_level_range_checked(self):
        with pytest.raises(TreeError):
            self.pyramid.counts(self.pyramid.height)

    def test_matches_node_tree(self):
        """The pyramid and the linked tree are the same density maps.

        The tree stores cells in Z-order, the pyramid row-major, so the
        comparison matches multisets per level and exact values through
        coordinates.
        """
        tree = DensityMapTree(self.data, height=self.pyramid.height)
        for level in range(self.pyramid.height):
            grid_counts = self.pyramid.counts(level)
            tree_cells = tree.density_map(level).cells
            sides = self.pyramid.cell_sides(level)
            lo = np.asarray(self.data.box.lo)
            for node in tree_cells:
                idx = np.floor(
                    (np.asarray(node.bounds.lo) - lo) / sides + 0.5
                ).astype(np.int64)
                flat = self.pyramid.encode(level, idx[None, :])[0]
                assert grid_counts[flat] == node.p_count


class TestEncodeDecode:
    def test_roundtrip(self, rng):
        pyramid = GridPyramid(uniform(100, dim=3, rng=2), height=4)
        flat = rng.integers(0, 8**3, size=50)
        idx = pyramid.decode(3, flat)
        back = pyramid.encode(3, idx)
        np.testing.assert_array_equal(back, flat)

    def test_children_of_geometry(self):
        pyramid = GridPyramid(uniform(100, dim=2, rng=2), height=3)
        children = pyramid.children_of(0, np.array([0]))[0]
        idx = pyramid.decode(1, children)
        assert {tuple(i) for i in idx} == {
            (0, 0), (1, 0), (0, 1), (1, 1)
        }

    def test_children_at_leaf_raises(self):
        pyramid = GridPyramid(uniform(100, dim=2, rng=2), height=2)
        with pytest.raises(TreeError):
            pyramid.children_of(1, np.array([0]))


class TestCSRLayout:
    def test_leaf_slices_partition_particles(self):
        data = zipf_clustered(400, dim=2, rng=8)
        pyramid = GridPyramid(data)
        leaf = pyramid.leaf_level
        counts = pyramid.counts(leaf)
        seen = []
        for cell in range(counts.size):
            idx = pyramid.leaf_slice(cell)
            assert idx.size == counts[cell]
            seen.append(idx)
        all_idx = np.sort(np.concatenate(seen))
        np.testing.assert_array_equal(all_idx, np.arange(400))

    def test_particles_in_their_cells(self):
        data = uniform(300, dim=2, rng=9)
        pyramid = GridPyramid(data)
        leaf = pyramid.leaf_level
        sides = pyramid.cell_sides(leaf)
        lo = np.asarray(data.box.lo)
        grid = pyramid.cells_per_axis(leaf)
        for cell in np.flatnonzero(pyramid.counts(leaf)):
            pts = data.positions[pyramid.leaf_slice(cell)]
            idx = pyramid.decode(leaf, np.asarray([cell]))[0]
            cell_lo = lo + idx * sides
            cell_hi = cell_lo + sides
            assert bool((pts >= cell_lo - 1e-12).all())
            # Upper-face particles are clipped into the last cell.
            strict = (pts < cell_hi).all(axis=1) | (idx == grid - 1).any()
            assert bool(np.all(strict))

    def test_sorted_positions_match_order(self):
        data = uniform(200, dim=2, rng=10)
        pyramid = GridPyramid(data)
        np.testing.assert_array_equal(
            pyramid.sorted_positions, data.positions[pyramid.order]
        )


class TestMBRArrays:
    def test_requires_flag(self):
        pyramid = GridPyramid(uniform(50, rng=1))
        with pytest.raises(TreeError):
            pyramid.mbr_lo(0)

    def test_mbrs_bound_particles(self):
        data = uniform(300, dim=2, rng=12)
        pyramid = GridPyramid(data, with_mbr=True)
        leaf = pyramid.leaf_level
        lo = pyramid.mbr_lo(leaf)
        hi = pyramid.mbr_hi(leaf)
        for cell in np.flatnonzero(pyramid.counts(leaf)):
            pts = data.positions[pyramid.leaf_slice(cell)]
            assert bool((pts >= lo[cell] - 1e-12).all())
            assert bool((pts <= hi[cell] + 1e-12).all())

    def test_root_mbr_is_global(self):
        data = uniform(300, dim=2, rng=12)
        pyramid = GridPyramid(data, with_mbr=True)
        np.testing.assert_allclose(
            pyramid.mbr_lo(0)[0], data.positions.min(axis=0)
        )
        np.testing.assert_allclose(
            pyramid.mbr_hi(0)[0], data.positions.max(axis=0)
        )

    def test_empty_cells_are_infinite(self):
        data = zipf_clustered(100, dim=2, rng=3)
        pyramid = GridPyramid(data, with_mbr=True)
        leaf = pyramid.leaf_level
        counts = pyramid.counts(leaf)
        empty = np.flatnonzero(counts == 0)
        if empty.size:
            assert np.isinf(pyramid.mbr_lo(leaf)[empty]).all()


class TestStartLevel:
    def test_agrees_with_tree(self):
        data = uniform(800, dim=2, rng=4)
        pyramid = GridPyramid(data)
        tree = DensityMapTree(data, height=pyramid.height)
        for l_buckets in (2, 4, 8, 32):
            p = data.max_possible_distance / l_buckets
            assert pyramid.start_level_for(p) == tree.start_level_for(p)

    def test_diagonal_values(self):
        data = uniform(100, dim=3, rng=4)
        pyramid = GridPyramid(data, height=3)
        d0 = pyramid.cell_diagonal(0)
        assert pyramid.cell_diagonal(1) == pytest.approx(d0 / 2)
        assert pyramid.cell_diagonal(2) == pytest.approx(d0 / 4)

"""Cross-engine equality: tree == grid == brute force, exactly.

DM-SDH is an exact algorithm — every pair is either resolved into the
bucket its whole distance range provably occupies, or its distances are
computed directly.  So all engines must produce *identical integer*
histograms, on every data family, in 2D and 3D, with and without MBRs.
This is the single strongest correctness statement in the suite.
"""

import numpy as np
import pytest

from repro.core import (
    UniformBuckets,
    brute_force_sdh,
    dm_sdh_grid,
    dm_sdh_tree,
)
from repro.data import (
    figure1_dataset,
    gaussian_clusters,
    lattice,
    synthetic_bilayer,
    uniform,
    zipf_clustered,
)
from repro.quadtree import DensityMapTree, GridPyramid


def _check_all(data, num_buckets, use_mbr=False):
    spec = UniformBuckets.with_count(
        data.max_possible_distance, num_buckets
    )
    reference = brute_force_sdh(data, spec=spec)
    assert reference.total == data.num_pairs

    pyramid = GridPyramid(data, with_mbr=use_mbr)
    grid_hist = dm_sdh_grid(pyramid, spec=spec, use_mbr=use_mbr)
    np.testing.assert_array_equal(reference.counts, grid_hist.counts)

    tree = DensityMapTree(data, with_mbr=use_mbr)
    tree_hist = dm_sdh_tree(tree, spec=spec, use_mbr=use_mbr)
    np.testing.assert_array_equal(reference.counts, tree_hist.counts)


FAMILIES_2D = [
    ("uniform", lambda: uniform(350, dim=2, rng=100)),
    ("zipf", lambda: zipf_clustered(350, dim=2, rng=100)),
    ("clusters", lambda: gaussian_clusters(350, dim=2, rng=100)),
    ("membrane", lambda: synthetic_bilayer(350, dim=2, rng=100)),
    ("lattice", lambda: lattice(18, dim=2, jitter=0.2, rng=100)),
    ("figure1", lambda: figure1_dataset(rng=100)),
]

FAMILIES_3D = [
    ("uniform", lambda: uniform(250, dim=3, rng=200)),
    ("zipf", lambda: zipf_clustered(250, dim=3, rng=200)),
    ("membrane", lambda: synthetic_bilayer(250, dim=3, rng=200)),
]


@pytest.mark.parametrize(
    "name,factory", FAMILIES_2D, ids=[f[0] for f in FAMILIES_2D]
)
@pytest.mark.parametrize("num_buckets", [1, 2, 7, 16])
def test_2d_engines_agree(name, factory, num_buckets):
    _check_all(factory(), num_buckets)


@pytest.mark.parametrize(
    "name,factory", FAMILIES_3D, ids=[f[0] for f in FAMILIES_3D]
)
@pytest.mark.parametrize("num_buckets", [2, 8])
def test_3d_engines_agree(name, factory, num_buckets):
    _check_all(factory(), num_buckets)


@pytest.mark.parametrize("dim", [2, 3])
def test_engines_agree_with_mbr(dim):
    data = zipf_clustered(300, dim=dim, rng=77)
    _check_all(data, 8, use_mbr=True)


def test_engines_agree_large_bucket_count():
    """l large enough that the start map is the leaf map (the paper's
    degenerate small-N regime)."""
    data = uniform(200, dim=2, rng=5)
    _check_all(data, 64)


def test_engines_agree_single_bucket():
    """l = 1: everything lands in one bucket without any recursion."""
    data = uniform(100, dim=2, rng=6)
    _check_all(data, 1)


def test_engines_agree_with_duplicate_points(rng):
    """Duplication scaling creates exactly coincident particles."""
    base = uniform(120, dim=2, rng=8)
    data = base.scale_to(300, rng=rng)
    _check_all(data, 8)


def test_engines_agree_on_collinear_data():
    """Degenerate geometry: all particles on one line."""
    import numpy as np

    from repro.data import ParticleSet

    x = np.linspace(0.01, 0.99, 150)
    pts = np.stack([x, np.full_like(x, 0.5)], axis=1)
    data = ParticleSet(pts)
    _check_all(data, 8)


def test_engines_agree_explicit_heights():
    """Non-default tree heights must not change results."""
    data = uniform(300, dim=2, rng=9)
    spec = UniformBuckets.with_count(data.max_possible_distance, 8)
    reference = brute_force_sdh(data, spec=spec)
    for height in (1, 2, 3, 5):
        pyramid = GridPyramid(data, height=height)
        np.testing.assert_array_equal(
            reference.counts, dm_sdh_grid(pyramid, spec=spec).counts
        )
        tree = DensityMapTree(data, height=height)
        np.testing.assert_array_equal(
            reference.counts, dm_sdh_tree(tree, spec=spec).counts
        )

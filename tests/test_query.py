"""Tests for repro.core.query (compute_sdh facade and SDHQuery plans)."""

import numpy as np
import pytest

from repro.core import (
    SDHQuery,
    SDHStats,
    UniformBuckets,
    brute_force_sdh,
    compute_sdh,
)
from repro.data import random_types, uniform
from repro.errors import QueryError
from repro.geometry import AABB, BallRegion, RectRegion


@pytest.fixture(scope="module")
def data():
    return random_types(
        uniform(400, dim=2, rng=81), {"A": 1.0, "B": 2.0}, rng=8
    )


@pytest.fixture(scope="module")
def reference(data):
    spec = UniformBuckets.with_count(data.max_possible_distance, 8)
    return spec, brute_force_sdh(data, spec=spec)


class TestComputeSDH:
    def test_engine_variants_agree(self, data, reference):
        spec, ref = reference
        for engine in ("auto", "grid", "tree", "brute"):
            h = compute_sdh(data, spec=spec, engine=engine)
            np.testing.assert_array_equal(ref.counts, h.counts)

    def test_num_buckets_parameterization(self, data):
        """The paper's 'l' parameterization: p = diagonal / l."""
        h = compute_sdh(data, num_buckets=8)
        assert h.spec.num_buckets == 8
        assert h.spec.high == pytest.approx(data.max_possible_distance)
        assert h.total == data.num_pairs

    def test_bucket_width_parameterization(self, data):
        h = compute_sdh(data, bucket_width=0.3)
        assert h.spec.high >= data.max_possible_distance

    def test_exactly_one_spec_argument(self, data):
        with pytest.raises(QueryError):
            compute_sdh(data)
        with pytest.raises(QueryError):
            compute_sdh(data, bucket_width=0.3, num_buckets=8)

    def test_unknown_engine(self, data):
        with pytest.raises(QueryError):
            compute_sdh(data, num_buckets=4, engine="gpu")

    def test_region_routes_to_tree(self, data):
        region = RectRegion(AABB((0.2, 0.2), (0.8, 0.8)))
        h = compute_sdh(data, num_buckets=8, region=region)
        subset = data.select(region.contains_points(data.positions))
        expected = brute_force_sdh(subset, spec=h.spec)
        np.testing.assert_array_equal(expected.counts, h.counts)

    def test_region_brute_agrees(self, data):
        region = BallRegion((0.5, 0.5), 0.3)
        h_tree = compute_sdh(data, num_buckets=8, region=region)
        h_brute = compute_sdh(
            data, num_buckets=8, region=region, engine="brute"
        )
        np.testing.assert_array_equal(h_tree.counts, h_brute.counts)

    def test_region_grid_subset_route(self, data):
        """engine='grid' (and 'auto') answer restricted queries by
        filtering the qualifying particles and running the plain
        vectorized algorithm — equivalent to the in-index pruning."""
        region = BallRegion((0.5, 0.5), 0.3)
        h_grid = compute_sdh(
            data, num_buckets=8, region=region, engine="grid"
        )
        h_tree = compute_sdh(
            data, num_buckets=8, region=region, engine="tree"
        )
        np.testing.assert_array_equal(h_grid.counts, h_tree.counts)

    def test_type_filter_all_engines(self, data):
        histograms = [
            compute_sdh(
                data, num_buckets=8, type_filter="B", engine=engine
            )
            for engine in ("auto", "grid", "tree", "brute")
        ]
        for other in histograms[1:]:
            np.testing.assert_array_equal(
                histograms[0].counts, other.counts
            )

    def test_type_pair_all_engines(self, data):
        """The cross-type identity h(AxB) = h(AuB) - h(A) - h(B) must
        agree exactly with the in-index and brute-force routes."""
        histograms = [
            compute_sdh(
                data, num_buckets=8, type_pair=("A", "B"), engine=engine
            )
            for engine in ("auto", "grid", "tree", "brute")
        ]
        for other in histograms[1:]:
            np.testing.assert_array_equal(
                histograms[0].counts, other.counts
            )

    def test_approximate_route(self, data, reference):
        spec, ref = reference
        h = compute_sdh(data, spec=spec, levels=2, rng=0)
        assert h.total == pytest.approx(data.num_pairs)
        assert h.error_rate(ref) < 0.1

    def test_approximate_restricted_rejected(self, data):
        with pytest.raises(QueryError):
            compute_sdh(
                data,
                num_buckets=8,
                levels=2,
                region=BallRegion((0.5, 0.5), 0.2),
            )

    def test_approximate_on_tree_engine_rejected(self, data):
        with pytest.raises(QueryError):
            compute_sdh(data, num_buckets=8, levels=2, engine="tree")

    def test_empty_region_rejected(self, data):
        region = RectRegion(AABB((5.0, 5.0), (6.0, 6.0)))
        with pytest.raises(QueryError):
            compute_sdh(
                data, num_buckets=4, region=region, engine="brute"
            )


class TestSDHQueryPlan:
    def test_reuse_across_widths(self, data, reference):
        spec, ref = reference
        plan = SDHQuery(data)
        h8 = plan.histogram(spec=spec)
        np.testing.assert_array_equal(ref.counts, h8.counts)
        h4 = plan.histogram(num_buckets=4)
        assert h4.total == data.num_pairs

    def test_pyramid_shared(self, data):
        plan = SDHQuery(data)
        assert plan.pyramid is plan.pyramid
        assert plan.particles is data

    def test_restricted_routes_agree(self, data):
        plan = SDHQuery(data)
        region = RectRegion(AABB((0.0, 0.0), (0.5, 0.5)))
        # Default: subset + grid; the tree stays unbuilt.
        h = plan.histogram(num_buckets=4, region=region)
        assert plan._tree is None
        # in_index=True runs the paper's pruning on the (lazy) tree.
        h_index = plan.histogram(
            num_buckets=4, region=region, in_index=True
        )
        assert plan._tree is not None
        subset = data.select(region.contains_points(data.positions))
        expected = brute_force_sdh(subset, spec=h.spec)
        np.testing.assert_array_equal(expected.counts, h.counts)
        np.testing.assert_array_equal(expected.counts, h_index.counts)

    def test_approximate_via_plan(self, data, reference):
        spec, ref = reference
        plan = SDHQuery(data)
        h = plan.histogram(spec=spec, error_bound=0.05, rng=0)
        assert h.error_rate(ref) < 0.05

    def test_restricted_approximate_rejected(self, data):
        plan = SDHQuery(data)
        with pytest.raises(QueryError):
            plan.histogram(
                num_buckets=4,
                levels=1,
                type_filter="A",
            )

    def test_mbr_plan(self, data, reference):
        spec, ref = reference
        plan = SDHQuery(data, use_mbr=True)
        h = plan.histogram(spec=spec)
        np.testing.assert_array_equal(ref.counts, h.counts)

    def test_stats_flow_through(self, data):
        plan = SDHQuery(data)
        stats = SDHStats()
        plan.histogram(num_buckets=4, stats=stats)
        assert stats.total_resolve_calls > 0

"""Smoke tests: every example script must run to completion.

Examples are the public face of the library; these tests execute each
one in a subprocess (so import-time and ``__main__`` behaviour are both
covered) and sanity-check the printed output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
)

EXPECTED_SNIPPETS = {
    "quickstart.py": ["DM-SDH (exact)", "error rate vs exact"],
    "membrane_rdf.py": ["g(r), all atoms", "virial pressure"],
    "nbody_approximate.py": ["m=5", "err h3"],
    "region_queries.py": ["verified against filtered brute force"],
    "trajectory_incremental.py": ["speedup", "max bucket deviation"],
    "periodic_md_analysis.py": [
        "matches min-image brute force",
        "coordination number",
    ],
    "service_quickstart.py": [
        "identical to direct compute_sdh",
        "plan cache: 1 build",
    ],
    "parallel_requests.py": [
        "available engines",
        "bit-identical to the serial grid engine",
    ],
}


def _run(script: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script):
    stdout = _run(script)
    for snippet in EXPECTED_SNIPPETS[script]:
        assert snippet in stdout, (script, snippet, stdout[-2000:])


def test_all_examples_are_covered():
    """Every example on disk has a smoke test (and vice versa)."""
    on_disk = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    assert on_disk == set(EXPECTED_SNIPPETS)

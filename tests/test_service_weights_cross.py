"""Wire-path tests for the weighted / cross-set request axes.

The service accepts ``weights`` (per-particle masses riding on the
request) and ``dataset_b`` (a second registered dataset for cross-set
pair counting).  These tests pin down the JSON vocabulary, the 400/404
edges, and the result-cache semantics: cross entries are keyed on BOTH
operand fingerprints and drop when either operand is re-registered.
"""

import json

import numpy as np
import pytest

from repro import compute_sdh
from repro.core.request import SDHRequest
from repro.data import uniform
from repro.errors import DatasetNotFound, QueryError
from repro.service import SDHClient, SDHService


@pytest.fixture(scope="module")
def dataset():
    return uniform(120, dim=2, rng=11)


@pytest.fixture(scope="module")
def dataset_b():
    return uniform(90, dim=2, rng=12)


@pytest.fixture()
def service():
    with SDHService(max_workers=2, max_queue=8) as running:
        yield running


@pytest.fixture()
def client(service):
    return SDHClient(service.url)


class TestRequestJsonRoundTrip:
    def test_weights_round_trip(self):
        weights = (1.5, -0.25, 0.0, 1e-140, 1e140)
        request = SDHRequest(num_buckets=4, weights=weights).normalize()
        body = json.loads(json.dumps(request.to_dict()))
        assert body["weights"] == list(weights)
        back = SDHRequest.from_dict(body)
        assert back == request
        assert back.weights == weights

    def test_dataset_b_round_trip(self):
        request = SDHRequest(num_buckets=4, dataset_b="other").normalize()
        body = json.loads(json.dumps(request.to_dict()))
        assert body["dataset_b"] == "other"
        back = SDHRequest.from_dict(body)
        assert back == request and back.cross

    def test_defaults_stay_off_the_wire(self):
        body = SDHRequest(num_buckets=4).normalize().to_dict()
        assert "weights" not in body and "dataset_b" not in body

    def test_nan_weights_rejected_at_validation(self):
        with pytest.raises(QueryError, match="finite"):
            SDHRequest(num_buckets=4, weights=(1.0, float("nan"))).normalize()

    def test_empty_weights_rejected_at_validation(self):
        with pytest.raises(QueryError, match="non-empty"):
            SDHRequest(num_buckets=4, weights=()).normalize()


class TestWirePath:
    def test_weighted_query_matches_direct(self, client, dataset):
        key = client.register(dataset)
        weights = np.linspace(-1.0, 2.0, dataset.size)
        hist = client.sdh(key, num_buckets=6, weights=weights)
        direct = compute_sdh(
            dataset.with_weights(weights), num_buckets=6
        )
        np.testing.assert_array_equal(hist.counts, direct.counts)

    def test_cross_query_matches_direct(self, client, dataset, dataset_b):
        key_a = client.register(dataset)
        key_b = client.register(dataset_b)
        hist = client.sdh(key_a, num_buckets=6, dataset_b=key_b)
        direct = compute_sdh(dataset, num_buckets=6, b=dataset_b)
        np.testing.assert_array_equal(hist.counts, direct.counts)
        assert hist.total == dataset.size * dataset_b.size

    def test_cross_by_alias(self, client, dataset, dataset_b):
        client.register(dataset, name="left")
        client.register(dataset_b, name="right")
        payload = client._request(
            "POST",
            "/v1/sdh",
            {"dataset": "left", "num_buckets": 5, "dataset_b": "right"},
        )
        assert payload["dataset"] == dataset.fingerprint()
        assert payload["dataset_b"] == dataset_b.fingerprint()

    def test_nan_and_inf_weights_are_400(self, service, client, dataset):
        key = client.register(dataset)
        for bad in (float("nan"), float("inf")):
            body = {
                "dataset": key,
                "num_buckets": 4,
                "weights": [1.0] * (dataset.size - 1) + [bad],
            }
            with pytest.raises(QueryError, match="finite"):
                client._request("POST", "/v1/sdh", body)

    def test_mismatched_weights_are_400(self, client, dataset):
        key = client.register(dataset)
        with pytest.raises(QueryError, match="weight"):
            client._request(
                "POST",
                "/v1/sdh",
                {"dataset": key, "num_buckets": 4, "weights": [1.0, 2.0]},
            )

    def test_unknown_dataset_b_is_404(self, client, dataset):
        key = client.register(dataset)
        with pytest.raises(DatasetNotFound):
            client.sdh(key, num_buckets=4, dataset_b="no-such-dataset")

    def test_batch_rejects_cross_items(self, client, dataset, dataset_b):
        key_a = client.register(dataset)
        key_b = client.register(dataset_b)
        results = client.sdh_batch(
            key_a,
            [{"num_buckets": 4}, {"num_buckets": 4, "dataset_b": key_b}],
            return_errors=True,
        )
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], Exception)
        assert "dataset_b" in str(results[1])


class TestParallelThresholdShim:
    def test_weighted_queries_stay_serial(self, dataset):
        # The deprecated static threshold must not pin workers on a
        # weighted request — the parallel engine cannot serve it.
        with SDHService(
            max_workers=2, parallel_threshold=1, parallel_workers=2
        ) as service:
            client = SDHClient(service.url)
            key = client.register(dataset)
            weights = np.ones(dataset.size)
            hist = client.sdh(key, num_buckets=5, weights=weights)
            direct = compute_sdh(
                dataset.with_weights(weights), num_buckets=5
            )
            np.testing.assert_array_equal(hist.counts, direct.counts)


class TestCrossResultCache:
    def test_cross_hits_and_dual_fingerprint_key(
        self, service, client, dataset, dataset_b
    ):
        key_a = client.register(dataset)
        key_b = client.register(dataset_b)
        body = {"dataset": key_a, "num_buckets": 8, "dataset_b": key_b}
        first = client._request("POST", "/v1/sdh", body)
        again = client._request("POST", "/v1/sdh", body)
        assert first["result_source"] == "miss"
        assert again["result_source"] == "hit"
        assert again["counts"] == first["counts"]
        assert first["dataset"] == key_a and first["dataset_b"] == key_b
        # The cache entry is keyed on the compound "<fp_a>+<fp_b>".
        resident = list(service.state.results._entries)
        assert any(fp == f"{key_a}+{key_b}" for fp, _ in resident)

    def test_self_and_cross_results_do_not_collide(
        self, client, dataset, dataset_b
    ):
        key_a = client.register(dataset)
        key_b = client.register(dataset_b)
        self_hist = client.sdh(key_a, num_buckets=8)
        cross = client._request(
            "POST",
            "/v1/sdh",
            {"dataset": key_a, "num_buckets": 8, "dataset_b": key_b},
        )
        assert cross["result_source"] == "miss"
        assert cross["counts"] != list(self_hist.counts)

    @pytest.mark.parametrize("reregister", ["a", "b"])
    def test_reregistering_either_operand_invalidates(
        self, client, dataset, dataset_b, reregister
    ):
        key_a = client.register(dataset)
        key_b = client.register(dataset_b)
        body = {"dataset": key_a, "num_buckets": 8, "dataset_b": key_b}
        assert client._request("POST", "/v1/sdh", body)[
            "result_source"
        ] == "miss"
        client.register(dataset if reregister == "a" else dataset_b)
        assert client._request("POST", "/v1/sdh", body)[
            "result_source"
        ] == "miss"

    def test_operand_order_is_part_of_the_key(
        self, client, dataset, dataset_b
    ):
        key_a = client.register(dataset)
        key_b = client.register(dataset_b)
        forward = client._request(
            "POST",
            "/v1/sdh",
            {"dataset": key_a, "num_buckets": 8, "dataset_b": key_b},
        )
        backward = client._request(
            "POST",
            "/v1/sdh",
            {"dataset": key_b, "num_buckets": 8, "dataset_b": key_a},
        )
        # Symmetric answers, but cached under distinct compound keys.
        assert forward["result_source"] == "miss"
        assert backward["result_source"] == "miss"
        assert backward["counts"] == forward["counts"]

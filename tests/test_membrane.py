"""Tests for repro.data.membrane (the paper's Fig. 10 stand-in)."""

import numpy as np
import pytest

from repro.data import MEMBRANE_TYPES, synthetic_bilayer
from repro.errors import DatasetError


class TestComposition:
    def test_total_count_exact(self):
        ps = synthetic_bilayer(5000, rng=0)
        assert ps.size == 5000

    def test_all_components_present(self):
        ps = synthetic_bilayer(2000, rng=0)
        assert set(np.unique(ps.types)) == set(MEMBRANE_TYPES)

    def test_water_is_majority(self):
        ps = synthetic_bilayer(4000, rng=1)
        water = int((ps.types == 2).sum())
        assert water > 0.4 * ps.size

    def test_rejects_tiny_n(self):
        with pytest.raises(DatasetError):
            synthetic_bilayer(3)

    def test_rejects_bad_dim(self):
        with pytest.raises(DatasetError):
            synthetic_bilayer(100, dim=4)


class TestGeometry:
    """The Fig. 10 structure: two dense head layers, sparse tails,
    uniform water outside the slab."""

    def test_heads_form_two_layers(self):
        ps = synthetic_bilayer(6000, dim=3, rng=2)
        heads = ps.positions[ps.types == 0][:, 2]
        lower = heads[heads < 0.5]
        upper = heads[heads >= 0.5]
        assert lower.size > 0 and upper.size > 0
        assert np.std(lower) < 0.05
        assert np.std(upper) < 0.05
        assert abs(np.mean(lower) - 0.35) < 0.02
        assert abs(np.mean(upper) - 0.65) < 0.02

    def test_tails_between_heads(self):
        ps = synthetic_bilayer(6000, dim=3, rng=2)
        tails = ps.positions[ps.types == 1][:, 2]
        assert tails.min() >= 0.38
        assert tails.max() <= 0.62

    def test_water_avoids_slab(self):
        ps = synthetic_bilayer(6000, dim=3, rng=2)
        water = ps.positions[ps.types == 2][:, 2]
        inside_slab = (water > 0.41) & (water < 0.59)
        assert not inside_slab.any()

    def test_density_profile_is_layered(self):
        """The atom-density along the membrane normal must show the
        head peaks the paper describes."""
        ps = synthetic_bilayer(20000, dim=3, rng=3)
        z = ps.positions[:, 2]
        hist, _edges = np.histogram(z, bins=20, range=(0.0, 1.0))
        # Bins around the head planes (0.35, 0.65) beat the bulk.
        head_bins = hist[6:8].max(), hist[12:14].max()
        bulk = np.median(hist)
        assert min(head_bins) > 1.5 * bulk

    def test_2d_variant(self):
        ps = synthetic_bilayer(2000, dim=2, rng=4)
        assert ps.dim == 2
        heads = ps.positions[ps.types == 0][:, 1]
        assert ((heads < 0.5).sum() > 0) and ((heads >= 0.5).sum() > 0)

    def test_everything_in_box(self):
        ps = synthetic_bilayer(3000, dim=3, rng=5)
        assert bool(ps.box.contains_points(ps.positions).all())

    def test_scaling_like_paper(self):
        """Duplication scaling keeps composition roughly stable."""
        base = synthetic_bilayer(2000, rng=6)
        big = base.scale_to(5000, rng=np.random.default_rng(7))
        assert big.size == 5000
        frac_water_base = (base.types == 2).mean()
        frac_water_big = (big.types == 2).mean()
        assert abs(frac_water_base - frac_water_big) < 0.05

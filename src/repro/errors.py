"""Exception hierarchy for the SDH reproduction library.

Every error raised on purpose by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """A geometric object was constructed or used inconsistently.

    Examples: an axis-aligned box whose lower corner exceeds its upper
    corner, or mixing 2D and 3D objects in one operation.
    """


class BucketSpecError(ReproError):
    """A histogram bucket specification is invalid.

    Examples: non-positive bucket width, unordered custom bucket edges,
    or zero buckets.
    """


class DistanceOverflowError(ReproError):
    """A pairwise distance fell outside the histogram's covered range.

    Raised only when the active :class:`~repro.core.buckets.OverflowPolicy`
    is ``RAISE``; other policies clamp or drop the offending distances.
    """


class DatasetError(ReproError):
    """A particle dataset is malformed or incompatible with a request.

    Examples: coordinates outside the declared simulation box, a type
    array whose length does not match the coordinate array, or an
    unknown particle-type label in a type-restricted query.
    """


class TreeError(ReproError):
    """A density-map tree violates a structural invariant.

    Raised by :meth:`repro.quadtree.tree.DensityMapTree.validate` and by
    operations that require a level the tree does not have.
    """


class QueryError(ReproError):
    """An SDH query is inconsistent with the dataset or engine.

    Examples: a query region that does not intersect the simulation box,
    an unknown engine name, or approximation parameters out of range.
    """


class StorageError(ReproError):
    """The paged-storage simulator was used incorrectly.

    Examples: reading a page id that was never allocated, or a buffer
    pool with non-positive capacity.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the SDH query service layer.

    Each subclass carries the HTTP status code the JSON-over-HTTP server
    maps it to, so the error taxonomy and the wire protocol cannot drift
    apart.  Library errors (:class:`QueryError` etc.) are mapped to 400
    by the server; ``ServiceError`` covers conditions that only exist
    once a long-running server sits in front of the library.
    """

    #: HTTP status code the server answers with for this error class.
    http_status = 500


class DatasetNotFound(ServiceError):
    """A query referenced a dataset id that was never registered.

    Dataset ids are content fingerprints (or registered aliases); a miss
    means the client skipped registration or the server restarted.
    """

    http_status = 404


class QueryTimeout(ServiceError):
    """A query exceeded the server's per-request time budget.

    The worker thread keeps running to completion (Python threads cannot
    be cancelled), but the client receives this error instead of waiting
    indefinitely.
    """

    http_status = 504


class ServerOverloaded(ServiceError):
    """The server's admission queue is full; the request was rejected.

    Backpressure signal: the client should retry later or against
    another replica rather than pile more work onto a saturated server.
    """

    http_status = 503


class SLOInfeasibleError(ServiceError):
    """No execution strategy can satisfy the request's SLO.

    Raised by the query planner when every viable candidate's predicted
    cost exceeds the caller's ``latency_budget_ms`` (or no candidate
    meets the requested ``error_bound``).  Deliberately an admission
    failure — 422, not 400: the request is well-formed, the contract it
    asks for just cannot be honoured on this host for this workload.
    The error message carries the cheapest candidate's predicted cost so
    callers can pick a feasible budget.
    """

    http_status = 422

"""SLO admission for planned queries.

A request's service-level objective is two optional numbers: a
``latency_budget_ms`` (wall-clock the caller will wait) and an
``error_bound`` (histogram error rate the caller will accept — the
paper's Sec. V epsilon).  :func:`admit` filters a ranked candidate list
down to those predicted to satisfy both, and raises the typed
:class:`~repro.errors.SLOInfeasibleError` (HTTP 422 at the service
layer) when none do: an impossible contract is rejected loudly at
admission time, never silently converted into a best-effort run.
"""

from __future__ import annotations

from ..errors import SLOInfeasibleError

__all__ = ["SLOInfeasibleError", "admit"]


def admit(
    candidates,
    *,
    latency_budget_ms: float | None = None,
    error_bound: float | None = None,
):
    """Filter plan candidates down to those meeting the SLO.

    ``candidates`` is a non-empty sequence of
    :class:`~repro.planner.planner.PlanCandidate`, already ranked by
    predicted cost.  Returns the admitted sublist (same order).  Raises
    :class:`SLOInfeasibleError` when the SLO excludes every candidate.
    """
    admitted = list(candidates)
    if error_bound is not None:
        admitted = [
            c for c in admitted if c.estimate.error <= error_bound + 1e-12
        ]
        if not admitted:
            best = min(candidates, key=lambda c: c.estimate.error)
            raise SLOInfeasibleError(
                f"no execution strategy meets error_bound="
                f"{error_bound:g}; best achievable is "
                f"{best.estimate.error:.3g} ({best.describe()})"
            )
    if latency_budget_ms is not None:
        budget_s = latency_budget_ms / 1000.0
        admitted_in_budget = [
            c for c in admitted if c.estimate.seconds <= budget_s
        ]
        if not admitted_in_budget:
            best = min(admitted, key=lambda c: c.estimate.seconds)
            raise SLOInfeasibleError(
                f"latency_budget_ms={latency_budget_ms:g} is infeasible: "
                f"cheapest viable strategy ({best.describe()}) is "
                f"predicted at {best.estimate.seconds * 1000.0:.1f} ms"
            )
        admitted = admitted_in_budget
    return admitted

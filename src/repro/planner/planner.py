"""Turning an :class:`~repro.core.request.SDHRequest` into an execution plan.

:func:`plan_request` enumerates every execution strategy the request
could legally run — each capable engine, candidate worker counts for
the parallel engine, ADM with its Table III start level ``m`` when the
request asks for approximation — prices each with the analytic cost
model, ranks them, and applies the request's SLO
(:func:`repro.planner.slo.admit`).  The winner is returned as an
:class:`ExecutionPlan` whose ``request`` is directly executable (the
chosen engine and worker count substituted in, ``planner="off"`` so
downstream layers do not re-plan).

Neutrality guarantee: for exact requests the planner only ever varies
*how* the histogram is computed (engine, workers) — every exact engine
is differentially verified bit-identical, so routing cannot change an
answer.  ADM mode is considered only when the request itself carries
``error_bound`` or ``levels``; the planner never trades accuracy for
speed uninvited.

Each decision increments ``planner_decisions_total{engine,mode}`` and
runs under a ``planner_plan`` trace span, so routing behaviour is
observable in production.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.analysis import choose_levels_for_error
from ..core.engines import available_engines, get_engine
from ..core.request import SDHRequest
from ..errors import QueryError
from ..kernels import available_kernel_tiers, resolve_kernel
from ..observability import get_registry, trace_span
from .calibrate import Calibration, get_calibration
from .cost import CostEstimate, WorkloadProfile, estimate_cost, profile_workload
from .slo import admit

__all__ = ["ExecutionPlan", "PlanCandidate", "plan_request"]


@dataclass(frozen=True)
class PlanCandidate:
    """One priced execution strategy for a request.

    ``request`` is the executable form: the original request with this
    candidate's engine/workers substituted and the planner disabled, so
    running it reproduces exactly what the planner decided.
    """

    engine: str
    mode: str  # "exact" | "adm"
    workers: int
    levels: int | None
    estimate: CostEstimate
    request: SDHRequest
    admitted: bool = True
    kernel: str = "numpy"

    def describe(self) -> str:
        parts = [self.engine, self.mode]
        if self.engine == "parallel":
            parts.append(f"workers={self.workers}")
        if self.mode == "adm":
            parts.append(f"m={self.levels}")
        if self.kernel != "numpy":
            parts.append(f"kernel={self.kernel}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        body = {
            "engine": self.engine,
            "mode": self.mode,
            "kernel": self.kernel,
            "predicted_ms": round(self.estimate.seconds * 1000.0, 3),
            "predicted_operations": self.estimate.operations,
            "predicted_error": self.estimate.error,
            "admitted": self.admitted,
            "detail": self.estimate.detail,
        }
        if self.engine == "parallel":
            body["workers"] = self.workers
        if self.mode == "adm":
            body["levels"] = self.levels
        return body


@dataclass(frozen=True)
class ExecutionPlan:
    """The planner's decision for one request.

    ``chosen`` is the winning candidate; ``candidates`` the full ranked
    list (cheapest first, SLO-rejected entries marked
    ``admitted=False``) for :meth:`explain` and the service's ``plan``
    response block.  ``request`` on the plan itself is the *executable*
    request — hand it to :func:`~repro.core.query.compute_sdh` or
    :meth:`~repro.core.query.SDHQuery.run` unchanged.
    """

    chosen: PlanCandidate
    candidates: tuple[PlanCandidate, ...]
    profile: WorkloadProfile
    calibrated: bool

    @property
    def request(self) -> SDHRequest:
        return self.chosen.request

    @property
    def engine(self) -> str:
        return self.chosen.engine

    @property
    def mode(self) -> str:
        return self.chosen.mode

    def to_dict(self) -> dict:
        """JSON-ready summary (the service's ``plan`` response block)."""
        return {
            "engine": self.chosen.engine,
            "mode": self.chosen.mode,
            "kernel": self.chosen.kernel,
            "workers": self.chosen.workers,
            "levels": self.chosen.levels,
            "predicted_ms": round(
                self.chosen.estimate.seconds * 1000.0, 3
            ),
            "predicted_error": self.chosen.estimate.error,
            "calibrated": self.calibrated,
            "candidates": [c.to_dict() for c in self.candidates],
        }

    def explain(self) -> str:
        """Human-readable ranked-candidate trace for ``repro-sdh plan``."""
        profile = self.profile
        lines = [
            f"workload: N={profile.n} dim={profile.dim} "
            f"l={profile.num_buckets} buckets, density-map height "
            f"{profile.height}, start level {profile.start_level} "
            f"(~{profile.start_cells:.0f} cells, "
            f"{profile.start_pairs:.3g} cell pairs)",
            "constants: "
            + ("calibrated" if self.calibrated
               else "defaults (run `repro-sdh calibrate`)"),
            "candidates (cheapest first):",
        ]
        for rank, candidate in enumerate(self.candidates, start=1):
            marker = "*" if candidate is self.chosen else (
                " " if candidate.admitted else "x"
            )
            error = (
                f" err<={candidate.estimate.error:.3g}"
                if candidate.mode == "adm" else ""
            )
            lines.append(
                f"  {marker} {rank}. {candidate.describe():24s} "
                f"{candidate.estimate.seconds * 1000.0:10.3f} ms"
                f"{error}  [{candidate.estimate.detail}]"
            )
        lines.append(
            "  (* = chosen, x = rejected by SLO)"
        )
        return "\n".join(lines)


def plan_request(
    request: SDHRequest,
    particles,
    *,
    calibration: Calibration | None = None,
    cache_hot: bool = False,
    b=None,
) -> ExecutionPlan:
    """Choose the execution strategy for one request on one dataset.

    Enumerates every candidate the request could legally run, prices
    them with the analytic cost model under the host calibration, ranks
    by predicted wall-clock, and admits against the request's SLO
    (``latency_budget_ms``); raises
    :class:`~repro.errors.SLOInfeasibleError` when no candidate fits.

    ``cache_hot`` tells the cost model a built pyramid for this dataset
    is already available (the service's plan-cache scenario), so index
    build cost is sunk for the pyramid-backed engines.

    ``b`` is the second operand of a cross-set query: candidates are
    restricted to cross-capable engines and priced on the cross
    workload (combined index, ``N_a * N_b`` pair mass).  A weighted
    dataset likewise restricts candidates to weight-capable engines.
    """
    request = request.normalize()
    if calibration is None:
        calibration = get_calibration()
    spec = request.resolved_spec(particles)
    profile = profile_workload(particles, spec, b=b)
    weighted = bool(getattr(particles, "weighted", False)) or (
        b is not None and bool(getattr(b, "weighted", False))
    )
    cross = b is not None or request.dataset_b is not None
    with trace_span(
        "planner_plan",
        particles=profile.n,
        buckets=profile.num_buckets,
        calibrated=calibration.calibrated,
    ) as span:
        candidates = _enumerate_candidates(
            request, profile, calibration, cache_hot,
            weighted=weighted, cross=cross,
        )
        candidates.sort(key=lambda c: c.estimate.seconds)
        admitted = admit(
            candidates, latency_budget_ms=request.latency_budget_ms
        )
        admitted_set = {id(c) for c in admitted}
        chosen = admitted[0]
        candidates = [
            c if id(c) in admitted_set
            else _replace_admitted(c, False)
            for c in candidates
        ]
        span.annotate(engine=chosen.engine, mode=chosen.mode)
    get_registry().counter(
        "planner_decisions_total",
        "Execution strategies chosen by the cost-based planner",
        labelnames=("engine", "mode"),
    ).labels(engine=chosen.engine, mode=chosen.mode).inc()
    return ExecutionPlan(
        chosen=chosen,
        candidates=tuple(candidates),
        profile=profile,
        calibrated=calibration.calibrated,
    )


def _replace_admitted(
    candidate: PlanCandidate, admitted: bool
) -> PlanCandidate:
    return PlanCandidate(
        engine=candidate.engine,
        mode=candidate.mode,
        workers=candidate.workers,
        levels=candidate.levels,
        estimate=candidate.estimate,
        request=candidate.request,
        admitted=admitted,
        kernel=candidate.kernel,
    )


def _enumerate_candidates(
    request: SDHRequest,
    profile: WorkloadProfile,
    calibration: Calibration,
    cache_hot: bool,
    weighted: bool = False,
    cross: bool = False,
) -> list[PlanCandidate]:
    """All strategies this request could legally run, priced."""
    constants = calibration.constants

    if request.approximate:
        # The request asked for ADM (Sec. V); the planner's job is only
        # to surface the Table III start level m and the predicted
        # cost/error.  m = log2(1/epsilon) when only error_bound is
        # given — the acceptance rule, applied without caller hints.
        levels = request.levels
        if levels is None:
            levels = choose_levels_for_error(
                request.error_bound,
                profile.num_buckets,
                dim=min(profile.dim, 3),
            )
        estimate = estimate_cost(
            "grid", profile, constants,
            mode="adm", levels=levels, cache_hot=cache_hot,
        )
        # ADM's sampling allocator never reaches the leaf kernels, so
        # the tier is carried through unchanged but not priced.
        executable = _executable(
            request, "grid", request.workers, request.kernel
        )
        return [
            PlanCandidate(
                engine="grid", mode="adm",
                workers=max(request.workers or 1, 1),
                levels=levels, estimate=estimate, request=executable,
                kernel=resolve_kernel(request.kernel),
            )
        ]

    if request.engine != "auto":
        names = [request.engine]
    elif request.workers is not None and request.workers > 1:
        # An explicit multi-worker request under auto has always meant
        # the parallel engine; the planner only confirms the count.
        names = ["parallel"]
    else:
        names = list(available_engines())

    candidates: list[PlanCandidate] = []
    for name in names:
        engine = get_engine(name)  # unknown names fail loudly here
        try:
            engine.check(
                request.replace(engine=name),
                weighted=weighted, cross=cross,
            )
        except QueryError:
            continue  # engine lacks a feature this request needs
        tiers = _kernel_candidates(engine, request)
        if name == "parallel":
            forced = request.engine == "parallel"
            for workers in _worker_candidates(request, calibration, forced):
                for tier in tiers:
                    estimate = estimate_cost(
                        name, profile, constants,
                        workers=workers, cache_hot=cache_hot, kernel=tier,
                    )
                    candidates.append(
                        PlanCandidate(
                            engine=name, mode="exact", workers=workers,
                            levels=None, estimate=estimate,
                            request=_executable(request, name, workers,
                                                tier),
                            kernel=tier,
                        )
                    )
        else:
            priced = True
            for tier in tiers:
                try:
                    estimate = estimate_cost(
                        name, profile, constants, cache_hot=cache_hot,
                        kernel=tier,
                    )
                except QueryError:
                    priced = False
                    break
                candidates.append(
                    PlanCandidate(
                        engine=name, mode="exact", workers=1, levels=None,
                        estimate=estimate,
                        request=_executable(request, name, None, tier),
                        kernel=tier,
                    )
                )
            if not priced:
                if request.engine == name:
                    # An explicitly requested engine the planner cannot
                    # price (e.g. an external registration): run it
                    # as-is rather than refuse — the caller picked it.
                    candidates.append(
                        PlanCandidate(
                            engine=name, mode="exact", workers=1,
                            levels=None,
                            estimate=CostEstimate(
                                float("inf"), float("inf"), 0.0,
                                "no cost model for this engine",
                            ),
                            request=_executable(request, name, None,
                                                request.kernel),
                            kernel=resolve_kernel(request.kernel),
                        )
                    )
                continue  # auto never routes to an unpriceable engine
    if not candidates:
        raise QueryError(
            f"no registered engine supports this request "
            f"(engine={request.engine!r})"
        )
    return candidates


def _kernel_candidates(engine, request: SDHRequest) -> list[str]:
    """Kernel tiers worth pricing for one engine.

    A pinned ``request.kernel`` is a constraint (the capability check
    upstream already guaranteed the engine advertises it); ``auto``
    enumerates every tier the engine advertises that is actually
    available in this process, so the ranking decides — on a numba-free
    host this is just ``["numpy"]`` and plans look exactly as before.
    """
    if request.kernel != "auto":
        return [request.kernel]
    usable = available_kernel_tiers()
    tiers = [t for t in engine.capabilities.kernel_tiers if t in usable]
    return tiers or ["numpy"]


def _worker_candidates(
    request: SDHRequest, calibration: Calibration, forced: bool
) -> list[int]:
    """Worker counts worth pricing for the parallel engine."""
    if request.workers is not None:
        # An explicit worker count is a constraint, not a hint.
        return [request.workers]
    cpu = max(calibration.cpu_count or os.cpu_count() or 1, 1)
    if cpu <= 1:
        # Spawning workers on one core only adds overhead — but a
        # forced engine="parallel" must still get a candidate (the
        # engine runs inline with one worker).
        return [1] if forced else []
    counts = {2, cpu, max(cpu // 2, 2)}
    return sorted(counts)


def _executable(
    request: SDHRequest,
    engine: str,
    workers: int | None,
    kernel: str,
) -> SDHRequest:
    """The directly runnable form of a planned request.

    ``planner="off"`` stops downstream layers from re-planning, and the
    latency budget is dropped because it has been admitted here (the
    two must be cleared together — the request validator rejects a
    budget with the planner off).  The chosen kernel tier is pinned so
    running the plan reproduces exactly what was priced.
    """
    return request.replace(
        engine=engine,
        workers=workers,
        kernel=kernel,
        planner="off",
        latency_budget_ms=None,
    )

"""Cost-based query planner with error/latency SLOs.

The paper's analytical machinery — the Table III covering factors, the
cost equations (3)–(5), and the ``m = log2(1/epsilon)`` start-level
rule — is implemented in :mod:`repro.core.analysis`, but historically
nothing used it to *drive execution*: engine choice was a static
``--parallel-threshold`` if-check in the service and CLI.  This package
closes that loop.  For each :class:`~repro.core.request.SDHRequest` it

* predicts the cost of every viable execution strategy — engine,
  worker count, exact-vs-ADM mode, ADM start level ``m`` — from the
  paper's equations plus host constants (:mod:`repro.planner.cost`);
* measures those host constants once with a micro-calibration run and
  persists them as JSON (:mod:`repro.planner.calibrate`);
* ranks the candidates and picks the cheapest one that satisfies the
  caller's SLO — a ``latency_budget_ms`` and/or an ``error_bound``
  (:mod:`repro.planner.planner`, :mod:`repro.planner.slo`);
* rejects infeasible SLOs loudly with a typed
  :class:`~repro.errors.SLOInfeasibleError` (HTTP 422 at the service
  layer) instead of running silently over budget.

Because every exact engine is differentially verified bit-identical
(:mod:`repro.verify`), planner routing can never change an exact
answer — only how fast it arrives.  ADM mode is only ever chosen when
the request itself asks for approximation (``error_bound``/``levels``).
"""

from .calibrate import (
    Calibration,
    calibrate,
    default_calibration_path,
    get_calibration,
    load_calibration,
    save_calibration,
)
from .cost import (
    CostConstants,
    CostEstimate,
    WorkloadProfile,
    estimate_cost,
    profile_workload,
)
from .planner import ExecutionPlan, PlanCandidate, plan_request
from .slo import SLOInfeasibleError, admit

__all__ = [
    "Calibration",
    "CostConstants",
    "CostEstimate",
    "ExecutionPlan",
    "PlanCandidate",
    "SLOInfeasibleError",
    "WorkloadProfile",
    "admit",
    "calibrate",
    "default_calibration_path",
    "estimate_cost",
    "get_calibration",
    "load_calibration",
    "plan_request",
    "profile_workload",
    "save_calibration",
]

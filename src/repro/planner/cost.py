"""Per-engine cost estimators backed by the paper's analytical model.

The estimators translate the paper's machine-independent operation
counts into predicted wall-clock seconds using host *constants*
(seconds per operation kind, measured once by
:mod:`repro.planner.calibrate`):

* exact DM-SDH engines (grid / tree) follow Eq. (3): the cell-pair
  frontier grows geometrically by ``2^{2d-1}`` per level below the
  start map, and whatever mass the Table III covering factors leave
  unresolved at the leaves is finished with direct distance
  computations (Theorem 2);
* the brute-force baseline is the plain ``N(N-1)/2`` distance count;
* the multi-process parallel engine divides the grid engine's
  resolvable work across ``w`` workers and pays a per-worker spawn
  overhead (the FCFC work-partitioning model);
* ADM-SDH follows Eq. (5): ``I * 2^{(2d-1) m}`` cell operations,
  independent of N, with the predicted error read off Table III
  (``alpha(m)``, the Sec. V guarantee).

Everything here is *analytic*: no pyramid is built and no particle is
touched, so planning a request costs microseconds.  The start-map pair
count ``I`` is estimated from the dataset's bounding box and size alone
(:func:`profile_workload`).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields

from ..core.analysis import (
    choose_levels_for_error,
    geometric_progression_cost,
    non_covering_factor,
)
from ..errors import QueryError
from ..quadtree.tree import tree_height

__all__ = [
    "CostConstants",
    "CostEstimate",
    "WorkloadProfile",
    "estimate_cost",
    "profile_workload",
]


@dataclass(frozen=True)
class CostConstants:
    """Host-specific seconds-per-operation constants.

    Defaults are conservative figures for a mid-range x86 core; a
    micro-calibration run (:func:`repro.planner.calibrate.calibrate`)
    replaces them with measured values.  All values are seconds.
    """

    #: Per pairwise distance in the vectorized (numpy) kernel tier.
    dist_pair_s: float = 6.0e-9
    #: Per pairwise distance in the compiled (numba) kernel tier.
    #: Only used when the tier is available; the default assumes the
    #: typical ~5x speedup of the tiled parallel kernels.
    dist_pair_numba_s: float = 1.2e-9
    #: Per cell-pair resolution op in the vectorized grid engine.
    cell_pair_s: float = 4.0e-8
    #: Per cell-pair resolution op in the Python node-tree engine.
    node_pair_s: float = 6.0e-6
    #: Per particle to build the array-based density-map pyramid.
    build_per_particle_s: float = 6.0e-7
    #: Per particle to build the linked-node density-map tree.
    tree_build_per_particle_s: float = 3.0e-5
    #: Fixed overhead per spawned worker process (fork + shm + IPC).
    worker_overhead_s: float = 0.15
    #: Fraction of the grid engine's work that parallelizes cleanly.
    parallel_efficiency: float = 0.85
    #: Per unresolved cell pair handed to an ADM allocation heuristic.
    alloc_per_pair_s: float = 1.2e-7
    #: Fixed per-query dispatch overhead (validation, spec resolution).
    floor_s: float = 3.0e-4

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, body: dict) -> "CostConstants":
        allowed = {f.name for f in fields(cls)}
        unknown = set(body) - allowed
        if unknown:
            raise QueryError(
                f"unknown cost constants: {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        values = {}
        for key, value in body.items():
            number = float(value)
            if not math.isfinite(number) or number <= 0:
                raise QueryError(
                    f"cost constant {key!r} must be finite and positive, "
                    f"got {value!r}"
                )
            values[key] = number
        return cls(**values)


@dataclass(frozen=True)
class WorkloadProfile:
    """Analytic shape of one (dataset, bucket spec) workload.

    Derived without building any index: cell geometry comes from the
    bounding box, occupancy from the uniform upper bound
    ``min(N, cells)`` — an overestimate for clustered data, which
    biases the planner toward the safer (cheaper-at-scale) engines.
    """

    n: int
    dim: int
    num_pairs: float
    num_buckets: int
    #: Total density-map levels, Eq. (2).
    height: int
    #: First level whose cell diagonal fits inside the first bucket.
    start_level: int
    #: Density maps below the start map down to the leaves.
    levels_below: int
    #: Estimated non-empty cells on the start map.
    start_cells: float
    #: Estimated cell pairs on the start map (the ``I`` of Eq. 3).
    start_pairs: float

    def alpha_after(self, levels: int) -> float:
        """Unresolved pair-mass fraction after visiting ``levels`` maps."""
        if levels <= 0:
            return 1.0
        return non_covering_factor(levels, self.num_buckets)


def profile_workload(particles, spec, b=None) -> WorkloadProfile:
    """Analytic workload profile for a dataset / bucket-spec pair.

    ``particles`` needs only ``size``, ``dim``, ``num_pairs``, and
    ``box.sides``; ``spec`` is a resolved
    :class:`~repro.core.buckets.BucketSpec`.  With ``b``, the profile
    describes the *cross-set* workload: the DM engines index the
    concatenation of both sets (so cell geometry uses the combined
    ``N``) while the pair mass to histogram is ``N_a * N_b`` — also
    exactly the brute-force distance count for the cross sweep.
    """
    n = int(particles.size)
    num_pairs = float(particles.num_pairs)
    if b is not None:
        num_pairs = float(particles.size) * float(b.size)
        n += int(b.size)
    dim = int(particles.dim)
    height = tree_height(max(n, 1), dim)
    leaf_level = height - 1
    sides = [float(s) for s in particles.box.sides]
    diag0 = math.sqrt(sum(s * s for s in sides))
    first_width = float(spec.edges[1]) if spec.num_buckets >= 1 else spec.high
    start_level = leaf_level
    if first_width > 0 and diag0 > 0:
        for level in range(height):
            if diag0 / (1 << level) <= first_width:
                start_level = level
                break
    start_cells = float(min(n, (1 << start_level) ** dim))
    start_pairs = start_cells * (start_cells - 1) / 2.0
    return WorkloadProfile(
        n=n,
        dim=dim,
        num_pairs=num_pairs,
        num_buckets=int(spec.num_buckets),
        height=height,
        start_level=start_level,
        levels_below=leaf_level - start_level,
        start_cells=start_cells,
        start_pairs=start_pairs,
    )


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one execution strategy.

    ``operations`` is the machine-independent count (the paper's
    Sec. IV measure); ``seconds`` its wall-clock translation through
    the host constants; ``error`` the predicted histogram error rate
    (0 for exact strategies, the Table III ``alpha(m)`` bound for ADM).
    """

    seconds: float
    operations: float
    error: float
    detail: str


def estimate_cost(
    engine: str,
    profile: WorkloadProfile,
    constants: CostConstants,
    *,
    mode: str = "exact",
    workers: int = 1,
    levels: int | None = None,
    error_bound: float | None = None,
    cache_hot: bool = False,
    kernel: str = "numpy",
) -> CostEstimate:
    """Predict the cost of running one engine on one workload.

    Parameters
    ----------
    engine:
        ``"brute"`` / ``"grid"`` / ``"tree"`` / ``"parallel"``.
    mode:
        ``"exact"`` or ``"adm"`` (only the grid engine runs ADM).
    workers:
        Process count for the parallel engine (ignored elsewhere).
    levels / error_bound:
        ADM budget: a fixed ``m``, or an ``epsilon`` converted via the
        Table III rule ``m = log2(1/epsilon)``.
    cache_hot:
        Whether a built plan (pyramid) is already cached, so the build
        cost is sunk (the service's plan-cache scenario).
    kernel:
        Leaf-resolution kernel tier pricing the per-distance constant:
        ``"numpy"`` uses ``dist_pair_s``, ``"numba"``
        ``dist_pair_numba_s``.  All tiers are bit-identical, so this
        only moves the predicted seconds, never the answer.
    """
    dist_s = _dist_pair_seconds(constants, kernel)
    if mode == "adm":
        return _adm_cost(
            profile, constants, levels=levels, error_bound=error_bound,
            cache_hot=cache_hot,
        )
    if engine == "brute":
        ops = profile.num_pairs
        seconds = constants.floor_s + ops * dist_s
        return CostEstimate(
            seconds, ops, 0.0,
            f"N(N-1)/2 = {ops:.3g} direct distances",
        )
    if engine == "tree":
        return _exact_dm_cost(
            profile, constants,
            cell_op_s=constants.node_pair_s,
            build_s=0.0 if cache_hot
            else profile.n * constants.tree_build_per_particle_s,
            label="tree",
            dist_s=dist_s,
        )
    if engine == "grid":
        return _exact_dm_cost(
            profile, constants,
            cell_op_s=constants.cell_pair_s,
            build_s=0.0 if cache_hot
            else profile.n * constants.build_per_particle_s,
            label="grid",
            dist_s=dist_s,
        )
    if engine == "parallel":
        core = _exact_dm_cost(
            profile, constants,
            cell_op_s=constants.cell_pair_s,
            build_s=0.0,
            label="parallel",
            dist_s=dist_s,
        )
        workers = max(int(workers), 1)
        build = (
            0.0 if cache_hot
            else profile.n * constants.build_per_particle_s
        )
        seconds = (
            constants.floor_s
            + build
            + workers * constants.worker_overhead_s
            + (core.seconds - constants.floor_s)
            / (workers * constants.parallel_efficiency)
        )
        return CostEstimate(
            seconds, core.operations, 0.0,
            f"grid work / {workers} workers "
            f"+ {workers}x{constants.worker_overhead_s:.3g}s spawn",
        )
    raise QueryError(f"no cost model for engine {engine!r}")


def _dist_pair_seconds(constants: CostConstants, kernel: str) -> float:
    """Seconds per leaf distance under a kernel tier."""
    if kernel == "numba":
        return constants.dist_pair_numba_s
    if kernel in ("numpy", "auto"):
        return constants.dist_pair_s
    raise QueryError(f"no cost model for kernel tier {kernel!r}")


def _exact_dm_cost(
    profile: WorkloadProfile,
    constants: CostConstants,
    *,
    cell_op_s: float,
    build_s: float,
    label: str,
    dist_s: float | None = None,
) -> CostEstimate:
    """Eq. (3) resolution ops + Theorem-2 leaf distances for DM-SDH."""
    resolve_ops = geometric_progression_cost(
        profile.start_pairs, profile.levels_below, profile.dim
    )
    # Mass the covering factors leave unresolved at the finest map is
    # finished with direct distances (Theorem 2); visiting zero maps
    # below the start leaves everything unresolved.
    alpha = profile.alpha_after(profile.levels_below)
    leaf_distances = alpha * profile.num_pairs
    if dist_s is None:
        dist_s = constants.dist_pair_s
    seconds = (
        constants.floor_s
        + build_s
        + resolve_ops * cell_op_s
        + leaf_distances * dist_s
    )
    return CostEstimate(
        seconds,
        resolve_ops + leaf_distances,
        0.0,
        f"{label}: Eq.(3) {resolve_ops:.3g} resolves + "
        f"alpha({profile.levels_below})={alpha:.3g} leaf mass",
    )


def _adm_cost(
    profile: WorkloadProfile,
    constants: CostConstants,
    *,
    levels: int | None,
    error_bound: float | None,
    cache_hot: bool,
) -> CostEstimate:
    """Eq. (5): ADM-SDH cost, independent of the dataset size."""
    if levels is None:
        if error_bound is None:
            raise QueryError("ADM cost needs levels or error_bound")
        levels = choose_levels_for_error(
            error_bound, profile.num_buckets, dim=min(profile.dim, 3)
        )
    levels = max(int(levels), 0)
    resolve_ops = geometric_progression_cost(
        profile.start_pairs, min(levels, profile.levels_below), profile.dim
    )
    alpha = profile.alpha_after(levels)
    # Surviving cell pairs at the stop level feed the allocator.
    surviving = profile.start_pairs * (
        2.0 ** ((2 * profile.dim - 1) * min(levels, profile.levels_below))
    )
    build = 0.0 if cache_hot else profile.n * constants.build_per_particle_s
    seconds = (
        constants.floor_s
        + build
        + resolve_ops * constants.cell_pair_s
        + alpha * surviving * constants.alloc_per_pair_s
    )
    return CostEstimate(
        seconds,
        resolve_ops,
        alpha,
        f"adm: Eq.(5) m={levels}, alpha={alpha:.3g}",
    )

"""One-shot micro-calibration of the planner's host constants.

The cost model (:mod:`repro.planner.cost`) predicts wall-clock seconds
from the paper's machine-independent operation counts.  The translation
constants — seconds per distance computation, per cell-pair resolve,
per worker spawn — depend on the host, so :func:`calibrate` measures
them once with a handful of small timed runs (each engine's own
:class:`~repro.core.instrumentation.SDHStats` counters provide the
exact operation counts to divide by), and :func:`save_calibration`
persists the result as JSON.

:func:`get_calibration` is the lazy accessor the planner uses: it loads
the persisted file on first call (path from
``$REPRO_SDH_CALIBRATION``, else ``~/.cache/repro-sdh/calibration.json``)
and falls back to the built-in defaults when no calibration has been
run — the planner always works, it is merely sharper on a calibrated
host.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

from ..errors import QueryError
from .cost import CostConstants

__all__ = [
    "Calibration",
    "calibrate",
    "default_calibration_path",
    "get_calibration",
    "load_calibration",
    "save_calibration",
]

#: On-disk schema version of the calibration file.  Version 2 added the
#: ``dist_pair_numba_s`` kernel-tier constant; older files are rejected
#: (the lazy accessor then falls back to defaults) so stale constants
#: never price the compiled tier.
CALIBRATION_VERSION = 2


@dataclass(frozen=True)
class Calibration:
    """Measured host constants plus their provenance.

    ``source`` is ``"default"`` for the built-in fallback constants,
    ``"measured"`` for a fresh :func:`calibrate` run, or the path the
    constants were loaded from.
    """

    constants: CostConstants
    cpu_count: int
    source: str = "default"

    @property
    def calibrated(self) -> bool:
        """Whether these constants were measured (vs the defaults)."""
        return self.source != "default"

    def to_dict(self) -> dict:
        return {
            "version": CALIBRATION_VERSION,
            "cpu_count": self.cpu_count,
            "constants": self.constants.to_dict(),
        }

    @classmethod
    def from_dict(cls, body: dict, source: str = "measured") -> "Calibration":
        if not isinstance(body, dict):
            raise QueryError("a calibration file must hold a JSON object")
        version = body.get("version")
        if version != CALIBRATION_VERSION:
            raise QueryError(
                f"unsupported calibration version {version!r} "
                f"(expected {CALIBRATION_VERSION}); re-run "
                "`repro-sdh calibrate`"
            )
        return cls(
            constants=CostConstants.from_dict(body.get("constants", {})),
            cpu_count=int(body.get("cpu_count", 1)),
            source=source,
        )


def default_calibration_path() -> str:
    """Where calibrations persist: env override, else the user cache."""
    override = os.environ.get("REPRO_SDH_CALIBRATION")
    if override:
        return override
    cache_root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(cache_root, "repro-sdh", "calibration.json")


def save_calibration(
    calibration: Calibration, path: str | None = None
) -> str:
    """Persist a calibration as JSON; returns the path written."""
    path = path or default_calibration_path()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(calibration.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_calibration(path: str | None = None) -> Calibration:
    """Load a persisted calibration (raises :class:`QueryError` on a
    malformed file; :class:`FileNotFoundError` passes through)."""
    path = path or default_calibration_path()
    with open(path, encoding="utf-8") as handle:
        try:
            body = json.load(handle)
        except json.JSONDecodeError as exc:
            raise QueryError(
                f"calibration file {path!r} is not valid JSON: {exc}"
            )
    return Calibration.from_dict(body, source=path)


# ----------------------------------------------------------------------
# Lazy singleton used by the planner
# ----------------------------------------------------------------------
_cache_lock = threading.Lock()
_cached: Calibration | None = None


def get_calibration(path: str | None = None) -> Calibration:
    """The process-wide calibration, loaded lazily exactly once.

    Loads the persisted file when present, else the built-in defaults.
    An explicit ``path`` bypasses the cache (used by tests and the
    CLI's ``--calibration`` flag).
    """
    global _cached
    if path is not None:
        try:
            return load_calibration(path)
        except FileNotFoundError:
            raise QueryError(f"no calibration file at {path!r}")
    with _cache_lock:
        if _cached is None:
            try:
                _cached = load_calibration()
            except (FileNotFoundError, QueryError):
                _cached = Calibration(
                    constants=CostConstants(),
                    cpu_count=os.cpu_count() or 1,
                    source="default",
                )
        return _cached


def _reset_calibration_cache(
    calibration: Calibration | None = None,
) -> None:
    """Test hook: clear (or pin) the lazy singleton."""
    global _cached
    with _cache_lock:
        _cached = calibration


# ----------------------------------------------------------------------
# The micro-calibration run itself
# ----------------------------------------------------------------------
def calibrate(
    scale: float = 1.0, workers: int = 2, seed: int = 0
) -> Calibration:
    """Measure the host constants with a few small timed runs.

    ``scale`` multiplies the probe sizes (lower it for constrained CI
    hosts); ``workers`` sizes the parallel-overhead probe (skipped when
    the host has a single core).  The whole run takes a few seconds.
    """
    # Imported here so `import repro.planner` stays cheap.
    from ..core.brute_force import brute_force_sdh
    from ..core.approximate import adm_sdh
    from ..core.dm_sdh import dm_sdh_tree
    from ..core.dm_sdh_grid import dm_sdh_grid
    from ..core.instrumentation import SDHStats
    from ..core.buckets import UniformBuckets
    from ..data.generators import uniform
    from ..quadtree.grid import GridPyramid
    from ..quadtree.tree import DensityMapTree

    defaults = CostConstants()

    def probe(n: int) -> int:
        return max(int(n * scale), 64)

    # -- direct distances (vectorized kernels) -------------------------
    data = uniform(probe(1500), dim=2, rng=seed)
    spec = UniformBuckets.with_count(data.max_possible_distance, 16)
    stats = SDHStats()
    started = time.perf_counter()
    brute_force_sdh(data, spec=spec, stats=stats, kernel="numpy")
    brute_seconds = time.perf_counter() - started
    dist_pair_s = _per_op(brute_seconds, stats.distance_computations,
                          defaults.dist_pair_s)

    # -- direct distances (compiled kernel tier, when installed) -------
    from ..kernels import NUMBA_AVAILABLE

    dist_pair_numba_s = defaults.dist_pair_numba_s
    if NUMBA_AVAILABLE:
        # First call pays JIT compilation; measure the second.
        brute_force_sdh(data, spec=spec, kernel="numba")
        stats = SDHStats()
        started = time.perf_counter()
        brute_force_sdh(data, spec=spec, stats=stats, kernel="numba")
        dist_pair_numba_s = _per_op(
            time.perf_counter() - started,
            stats.distance_computations,
            defaults.dist_pair_numba_s,
        )

    # -- pyramid build -------------------------------------------------
    build_data = uniform(probe(20000), dim=2, rng=seed + 1)
    started = time.perf_counter()
    pyramid = GridPyramid(build_data)
    build_per_particle_s = _per_op(
        time.perf_counter() - started, build_data.size,
        defaults.build_per_particle_s,
    )

    # -- vectorized cell-pair resolution -------------------------------
    grid_spec = UniformBuckets.with_count(
        build_data.max_possible_distance, 16
    )
    stats = SDHStats()
    started = time.perf_counter()
    # Pinned to numpy so subtracting dist_pair_s leaves pure resolve
    # time, whatever tiers this host has installed.
    dm_sdh_grid(pyramid, spec=grid_spec, stats=stats, kernel="numpy")
    grid_seconds = time.perf_counter() - started
    cell_pair_s = _per_op(
        max(grid_seconds - stats.distance_computations * dist_pair_s, 0.0),
        stats.total_resolve_calls,
        defaults.cell_pair_s,
    )

    # -- Python node-tree resolution -----------------------------------
    tree_data = uniform(probe(1200), dim=2, rng=seed + 2)
    started = time.perf_counter()
    tree = DensityMapTree(tree_data)
    tree_build_per_particle_s = _per_op(
        time.perf_counter() - started, tree_data.size,
        defaults.tree_build_per_particle_s,
    )
    tree_spec = UniformBuckets.with_count(
        tree_data.max_possible_distance, 16
    )
    stats = SDHStats()
    started = time.perf_counter()
    dm_sdh_tree(tree, spec=tree_spec, stats=stats, kernel="numpy")
    tree_seconds = time.perf_counter() - started
    node_pair_s = _per_op(
        max(tree_seconds - stats.distance_computations * dist_pair_s, 0.0),
        stats.total_resolve_calls,
        defaults.node_pair_s,
    )

    # -- ADM allocation ------------------------------------------------
    stats = SDHStats()
    started = time.perf_counter()
    adm_sdh(pyramid, spec=grid_spec, levels=1, stats=stats, rng=seed)
    adm_seconds = time.perf_counter() - started
    alloc_per_pair_s = _per_op(
        max(adm_seconds - stats.total_resolve_calls * cell_pair_s, 0.0),
        stats.approximated_pairs,
        defaults.alloc_per_pair_s,
    )

    # -- parallel worker overhead --------------------------------------
    cpu = os.cpu_count() or 1
    worker_overhead_s = defaults.worker_overhead_s
    if cpu > 1 and workers > 1:
        from ..parallel.engine import parallel_sdh

        started = time.perf_counter()
        parallel_sdh(pyramid, spec=grid_spec, workers=workers)
        parallel_seconds = time.perf_counter() - started
        # Everything beyond the single-core resolve time is overhead.
        worker_overhead_s = max(
            (parallel_seconds - grid_seconds / workers) / workers,
            1e-3,
        )

    # -- fixed dispatch floor ------------------------------------------
    tiny = uniform(8, dim=2, rng=seed + 3)
    tiny_spec = UniformBuckets.with_count(tiny.max_possible_distance, 4)
    started = time.perf_counter()
    brute_force_sdh(tiny, spec=tiny_spec)
    floor_s = max(time.perf_counter() - started, 1e-5)

    constants = CostConstants(
        dist_pair_s=dist_pair_s,
        dist_pair_numba_s=dist_pair_numba_s,
        cell_pair_s=cell_pair_s,
        node_pair_s=node_pair_s,
        build_per_particle_s=build_per_particle_s,
        tree_build_per_particle_s=tree_build_per_particle_s,
        worker_overhead_s=worker_overhead_s,
        parallel_efficiency=defaults.parallel_efficiency,
        alloc_per_pair_s=alloc_per_pair_s,
        floor_s=floor_s,
    )
    return Calibration(
        constants=constants, cpu_count=cpu, source="measured"
    )


def _per_op(seconds: float, operations: float, fallback: float) -> float:
    """Seconds per operation, falling back when a probe measured nothing."""
    if operations and operations > 0 and seconds > 0:
        return seconds / operations
    return fallback

"""Numba leaf-resolution backend: tiled, multi-threaded pair histograms.

CADISHI-style design (see ``docs/KERNELS.md``): the dense kernels walk
point blocks of :data:`BLOCK` rows so both operands of the inner loop
stay cache-resident, and every ``prange`` lane accumulates into its own
private ``int64`` histogram row; the rows are merged by integer
summation afterwards, which is exactly order-independent — the merge
cannot perturb the result no matter how the scheduler interleaves
lanes.  Each distance is computed with the identical sequence of
IEEE-754 double operations as the numpy backend (no fastmath, no
reassociation), so histograms are bit-identical to the numpy tier; the
differential verify harness enforces this across all fuzz families.

This module imports ``numba`` unconditionally — it must only be
imported through :func:`repro.kernels.get_backend`, which guards on
:data:`repro.kernels.NUMBA_AVAILABLE`.  Compilation is lazy (first
call) and cached on disk via ``cache=True``.
"""

from __future__ import annotations

import numpy as np

import numba
from numba import njit, prange

from . import exact

__all__ = [
    "NAME",
    "bin_gathered_pairs",
    "bin_dense_self",
    "bin_dense_cross",
    "bin_gathered_pairs_weighted",
    "bin_dense_self_weighted",
    "bin_dense_cross_weighted",
]

NAME = "numba"

#: Point-block edge of the dense kernels.  256 rows x 3 axes x 8 bytes
#: = 6 KiB per operand block — two blocks plus a histogram row fit in
#: L1/L2 comfortably.
BLOCK = 256

#: Work-chunk multiplier for the gathered-pairs kernel: more chunks
#: than threads smooths load imbalance from uneven pair batches.
_CHUNKS_PER_THREAD = 8


def _num_chunks(n_items: int) -> int:
    return max(1, min(n_items, numba.get_num_threads() * _CHUNKS_PER_THREAD))


@njit(parallel=True, cache=True)
def _gathered_pairs_kernel(
    positions, idx_a, idx_b, width, nbins, box, periodic, nchunks
):  # pragma: no cover - compiled
    hist = np.zeros((nchunks, nbins), dtype=np.int64)
    n = idx_a.shape[0]
    dim = positions.shape[1]
    for t in prange(nchunks):
        for p in range(t, n, nchunks):
            a = idx_a[p]
            b = idx_b[p]
            d2 = 0.0
            for ax in range(dim):
                delta = positions[a, ax] - positions[b, ax]
                if periodic:
                    delta = delta - box[ax] * np.rint(delta / box[ax])
                d2 += delta * delta
            k = np.int64(np.sqrt(d2) / width)
            if k >= nbins:
                k = nbins - 1
            hist[t, k] += 1
    return hist


@njit(parallel=True, cache=True)
def _dense_self_kernel(
    positions, width, nbins, box, periodic, block
):  # pragma: no cover - compiled
    n = positions.shape[0]
    dim = positions.shape[1]
    nblocks = (n + block - 1) // block
    rows = nblocks if nblocks > 0 else 1
    hist = np.zeros((rows, nbins), dtype=np.int64)
    for bi in prange(nblocks):
        i0 = bi * block
        i1 = min(n, i0 + block)
        for bj in range(bi, nblocks):
            j0 = bj * block
            j1 = min(n, j0 + block)
            for i in range(i0, i1):
                js = i + 1 if bi == bj else j0
                for j in range(js, j1):
                    d2 = 0.0
                    for ax in range(dim):
                        delta = positions[i, ax] - positions[j, ax]
                        if periodic:
                            delta = delta - box[ax] * np.rint(
                                delta / box[ax]
                            )
                        d2 += delta * delta
                    k = np.int64(np.sqrt(d2) / width)
                    if k >= nbins:
                        k = nbins - 1
                    hist[bi, k] += 1
    return hist


@njit(parallel=True, cache=True)
def _dense_cross_kernel(
    pos_a, pos_b, width, nbins, box, periodic, block
):  # pragma: no cover - compiled
    na = pos_a.shape[0]
    nb = pos_b.shape[0]
    dim = pos_a.shape[1]
    nblocks = (na + block - 1) // block
    rows = nblocks if nblocks > 0 else 1
    hist = np.zeros((rows, nbins), dtype=np.int64)
    for bi in prange(nblocks):
        i0 = bi * block
        i1 = min(na, i0 + block)
        for j0 in range(0, nb, block):
            j1 = min(nb, j0 + block)
            for i in range(i0, i1):
                for j in range(j0, j1):
                    d2 = 0.0
                    for ax in range(dim):
                        delta = pos_a[i, ax] - pos_b[j, ax]
                        if periodic:
                            delta = delta - box[ax] * np.rint(
                                delta / box[ax]
                            )
                        d2 += delta * delta
                    k = np.int64(np.sqrt(d2) / width)
                    if k >= nbins:
                        k = nbins - 1
                    hist[bi, k] += 1
    return hist


# ----------------------------------------------------------------------
# Weighted variants.  Distances and bin indices use the identical op
# sequence as the unweighted kernels above; pair weights accumulate as
# exact fixed-point integers into per-lane limb arrays (see
# repro.kernels.exact), so lane merging is plain integer addition and
# the result is the correctly-rounded exact sum — independent of thread
# count, schedule, and backend.
# ----------------------------------------------------------------------

#: Pairs one private limb row absorbs between carry normalizations.
_NORMALIZE_EVERY = 1 << 26


@njit(cache=True)
def _scatter_product(
    limbs, k, ma, sa, mb, sb
):  # pragma: no cover - compiled
    """Add the exact product of two decomposed weights into bucket k."""
    sign = np.int64(1)
    if ma < 0:
        sign = -sign
        ma = -ma
    if mb < 0:
        sign = -sign
        mb = -mb
    if ma == 0 or mb == 0:
        return
    hi_a = ma >> 27
    lo_a = ma & np.int64(0x7FFFFFF)
    hi_b = mb >> 27
    lo_b = mb & np.int64(0x7FFFFFF)
    base = sa + sb
    for part in range(4):
        if part == 0:
            p = lo_a * lo_b
            shift = base
        elif part == 1:
            p = lo_a * hi_b
            shift = base + 27
        elif part == 2:
            p = hi_a * lo_b
            shift = base + 27
        else:
            p = hi_a * hi_b
            shift = base + 54
        limb = shift >> 5
        off = shift & np.int64(31)
        keep = np.int64(32) - off
        low = (p & ((np.int64(1) << keep) - 1)) << off
        rest = p >> keep
        limbs[k, limb] += sign * low
        limbs[k, limb + 1] += sign * (rest & np.int64(0xFFFFFFFF))
        limbs[k, limb + 2] += sign * (rest >> 32)


@njit(cache=True)
def _normalize_row(limbs):  # pragma: no cover - compiled
    """Carry-propagate one (nbins, nlimbs) row to [0, 2**32) digits."""
    for b in range(limbs.shape[0]):
        for k in range(limbs.shape[1] - 1):
            carry = limbs[b, k] >> 32
            limbs[b, k] -= carry << 32
            limbs[b, k + 1] += carry


@njit(parallel=True, cache=True)
def _gathered_pairs_weighted_kernel(
    positions, mant, shift, idx_a, idx_b, width, nbins, box, periodic,
    nchunks, nlimbs, normalize_every,
):  # pragma: no cover - compiled
    limbs = np.zeros((nchunks, nbins, nlimbs), dtype=np.int64)
    n = idx_a.shape[0]
    dim = positions.shape[1]
    for t in prange(nchunks):
        pending = 0
        for p in range(t, n, nchunks):
            a = idx_a[p]
            b = idx_b[p]
            d2 = 0.0
            for ax in range(dim):
                delta = positions[a, ax] - positions[b, ax]
                if periodic:
                    delta = delta - box[ax] * np.rint(delta / box[ax])
                d2 += delta * delta
            k = np.int64(np.sqrt(d2) / width)
            if k >= nbins:
                k = nbins - 1
            _scatter_product(
                limbs[t], k, mant[a], shift[a], mant[b], shift[b]
            )
            pending += 1
            if pending >= normalize_every:
                _normalize_row(limbs[t])
                pending = 0
        _normalize_row(limbs[t])
    return limbs


@njit(parallel=True, cache=True)
def _dense_self_weighted_kernel(
    positions, mant, shift, width, nbins, box, periodic, block, nlimbs,
    normalize_every,
):  # pragma: no cover - compiled
    n = positions.shape[0]
    dim = positions.shape[1]
    nblocks = (n + block - 1) // block
    rows = nblocks if nblocks > 0 else 1
    limbs = np.zeros((rows, nbins, nlimbs), dtype=np.int64)
    for bi in prange(nblocks):
        pending = 0
        i0 = bi * block
        i1 = min(n, i0 + block)
        for bj in range(bi, nblocks):
            j0 = bj * block
            j1 = min(n, j0 + block)
            for i in range(i0, i1):
                js = i + 1 if bi == bj else j0
                for j in range(js, j1):
                    d2 = 0.0
                    for ax in range(dim):
                        delta = positions[i, ax] - positions[j, ax]
                        if periodic:
                            delta = delta - box[ax] * np.rint(
                                delta / box[ax]
                            )
                        d2 += delta * delta
                    k = np.int64(np.sqrt(d2) / width)
                    if k >= nbins:
                        k = nbins - 1
                    _scatter_product(
                        limbs[bi], k, mant[i], shift[i], mant[j], shift[j]
                    )
            pending += (i1 - i0) * (j1 - j0)
            if pending >= normalize_every:
                _normalize_row(limbs[bi])
                pending = 0
        _normalize_row(limbs[bi])
    return limbs


@njit(parallel=True, cache=True)
def _dense_cross_weighted_kernel(
    pos_a, pos_b, mant_a, shift_a, mant_b, shift_b, width, nbins, box,
    periodic, block, nlimbs, normalize_every,
):  # pragma: no cover - compiled
    na = pos_a.shape[0]
    nb = pos_b.shape[0]
    dim = pos_a.shape[1]
    nblocks = (na + block - 1) // block
    rows = nblocks if nblocks > 0 else 1
    limbs = np.zeros((rows, nbins, nlimbs), dtype=np.int64)
    for bi in prange(nblocks):
        pending = 0
        i0 = bi * block
        i1 = min(na, i0 + block)
        for j0 in range(0, nb, block):
            j1 = min(nb, j0 + block)
            for i in range(i0, i1):
                for j in range(j0, j1):
                    d2 = 0.0
                    for ax in range(dim):
                        delta = pos_a[i, ax] - pos_b[j, ax]
                        if periodic:
                            delta = delta - box[ax] * np.rint(
                                delta / box[ax]
                            )
                        d2 += delta * delta
                    k = np.int64(np.sqrt(d2) / width)
                    if k >= nbins:
                        k = nbins - 1
                    _scatter_product(
                        limbs[bi], k,
                        mant_a[i], shift_a[i], mant_b[j], shift_b[j],
                    )
            pending += (i1 - i0) * (j1 - j0)
            if pending >= normalize_every:
                _normalize_row(limbs[bi])
                pending = 0
        _normalize_row(limbs[bi])
    return limbs


def bin_gathered_pairs_weighted(
    positions: np.ndarray,
    weights: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = 2048,
) -> tuple[np.ndarray, int]:
    """Weighted histogram of explicitly enumerated index pairs."""
    positions = _prep(positions)
    idx_a = np.ascontiguousarray(idx_a, dtype=np.int64)
    idx_b = np.ascontiguousarray(idx_b, dtype=np.int64)
    mant, shift = exact.decompose(weights)
    box, periodic = _box_args(box_lengths, positions.shape[1])
    limbs = _gathered_pairs_weighted_kernel(
        positions, mant, shift, idx_a, idx_b, float(width), int(nbins),
        box, periodic, _num_chunks(idx_a.shape[0]), exact.NLIMBS,
        _NORMALIZE_EVERY,
    )
    return limbs.sum(axis=0), int(idx_a.shape[0])


def bin_dense_self_weighted(
    positions: np.ndarray,
    weights: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = 2048,
) -> tuple[np.ndarray, int]:
    """Weighted histogram of all ``n(n-1)/2`` intra-set pairs."""
    positions = _prep(positions)
    n = positions.shape[0]
    mant, shift = exact.decompose(weights)
    box, periodic = _box_args(box_lengths, positions.shape[1])
    limbs = _dense_self_weighted_kernel(
        positions, mant, shift, float(width), int(nbins), box, periodic,
        BLOCK, exact.NLIMBS, _NORMALIZE_EVERY,
    )
    return limbs.sum(axis=0), n * (n - 1) // 2


def bin_dense_cross_weighted(
    pos_a: np.ndarray,
    pos_b: np.ndarray,
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = 2048,
) -> tuple[np.ndarray, int]:
    """Weighted histogram of all ``len(a) * len(b)`` cross-set pairs."""
    pos_a = _prep(pos_a)
    pos_b = _prep(pos_b)
    mant_a, shift_a = exact.decompose(weights_a)
    mant_b, shift_b = exact.decompose(weights_b)
    box, periodic = _box_args(box_lengths, pos_a.shape[1])
    limbs = _dense_cross_weighted_kernel(
        pos_a, pos_b, mant_a, shift_a, mant_b, shift_b, float(width),
        int(nbins), box, periodic, BLOCK, exact.NLIMBS, _NORMALIZE_EVERY,
    )
    return limbs.sum(axis=0), int(pos_a.shape[0]) * int(pos_b.shape[0])


def _prep(positions: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(positions, dtype=np.float64)


def _box_args(
    box_lengths: np.ndarray | None, dim: int
) -> tuple[np.ndarray, bool]:
    if box_lengths is None:
        # Never read by the kernel (periodic=False); ones keep the
        # division well-defined for any speculative execution.
        return np.ones(dim, dtype=np.float64), False
    box = np.ascontiguousarray(
        np.broadcast_to(np.asarray(box_lengths, dtype=np.float64), (dim,))
    )
    return box, True


def bin_gathered_pairs(
    positions: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = 2048,
) -> tuple[np.ndarray, int]:
    """Histogram the distances of explicitly enumerated index pairs."""
    positions = _prep(positions)
    idx_a = np.ascontiguousarray(idx_a, dtype=np.int64)
    idx_b = np.ascontiguousarray(idx_b, dtype=np.int64)
    box, periodic = _box_args(box_lengths, positions.shape[1])
    hist = _gathered_pairs_kernel(
        positions, idx_a, idx_b, float(width), int(nbins),
        box, periodic, _num_chunks(idx_a.shape[0]),
    )
    return hist.sum(axis=0), int(idx_a.shape[0])


def bin_dense_self(
    positions: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = 2048,
) -> tuple[np.ndarray, int]:
    """Histogram all ``n(n-1)/2`` intra-set distances."""
    positions = _prep(positions)
    n = positions.shape[0]
    box, periodic = _box_args(box_lengths, positions.shape[1])
    hist = _dense_self_kernel(
        positions, float(width), int(nbins), box, periodic, BLOCK
    )
    return hist.sum(axis=0), n * (n - 1) // 2


def bin_dense_cross(
    pos_a: np.ndarray,
    pos_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = 2048,
) -> tuple[np.ndarray, int]:
    """Histogram all ``len(a) * len(b)`` cross-set distances."""
    pos_a = _prep(pos_a)
    pos_b = _prep(pos_b)
    box, periodic = _box_args(box_lengths, pos_a.shape[1])
    hist = _dense_cross_kernel(
        pos_a, pos_b, float(width), int(nbins), box, periodic, BLOCK
    )
    return hist.sum(axis=0), int(pos_a.shape[0]) * int(pos_b.shape[0])

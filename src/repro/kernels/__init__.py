"""Accelerated leaf-resolution kernels (the CADISHI-style tier).

Every exact engine bottoms out in leaf-level pairwise distance
resolution — the irreducible cost term of the paper's DM-SDH analysis
once the density-map frontier stops resolving cells.  This package
isolates that loop behind a small backend API so it can be swapped for
a compiled implementation:

* :mod:`repro.kernels.numpy_backend` — the vectorized pure-numpy
  fallback, always available.  It performs exactly the float operations
  the engines used inline before this package existed, so results are
  bit-identical by construction.
* :mod:`repro.kernels.numba_backend` — ``@njit(parallel=True,
  cache=True)`` kernels with cache-aware point-block tiling and
  per-chunk private histograms merged deterministically (integer counts
  summed, so merge order cannot change the result).  Import-guarded:
  only reachable when numba is installed.

Backends expose three functions with identical signatures, each
returning ``(int64 histogram, number_of_distances)``:

``bin_gathered_pairs(positions, idx_a, idx_b, width, nbins,
box_lengths=None, chunk=...)``
    Bin the distances of explicitly enumerated index pairs (the grid
    engine's CSR cell-pair frontier).
``bin_dense_self(positions, width, nbins, box_lengths=None, chunk=...)``
    All ``n(n-1)/2`` intra-set distances (brute force, tree leaves).
``bin_dense_cross(pos_a, pos_b, width, nbins, box_lengths=None,
chunk=...)``
    All cross-set distances (type-restricted baselines, tree leaf
    pairs).

Each function also has a ``*_weighted`` variant (taking the per-point
weights after the coordinates) that returns ``(limb_array,
number_of_distances)`` instead: per-bucket exact fixed-point integer
sums of the pair products ``w_i * w_j``, in the representation of
:mod:`repro.kernels.exact`.  Exactness makes the weighted contract
*stronger* than op-sequence equality — any summation order yields the
same integers, so backends, thread counts, and chunk sizes can never
disagree; only the distance op-sequence (which picks the bucket) must
match, and it is shared with the unweighted kernels.

The kernels only implement the *fast binning* contract: a standard
uniform-bucket query starting at zero whose buckets cover every
realizable distance, where a clamped truncating division bins exactly
like :meth:`~repro.core.buckets.UniformBuckets.bucket_of` and the
overflow policy can never trigger.  :func:`fast_uniform_width` decides
eligibility; ineligible queries (custom buckets, ``low > 0``) stay on
the engines' inline ``bin_counts_query`` paths regardless of the
requested tier.

Determinism contract: histogram counts are integral and each distance
contributes exactly one count, so only each distance's *value* and bin
index matter — and both backends compute them with the identical
sequence of IEEE-754 double operations (subtract, minimum-image wrap
via round-half-even, per-axis ordered sum of squares, sqrt, truncating
division).  ``repro-sdh verify`` enforces the contract differentially
across every fuzz family, including periodic/minimum-image inputs.

See ``docs/KERNELS.md`` for the tiling design and install notes.
"""

from __future__ import annotations

from ..errors import QueryError
from .csr import expand_products

__all__ = [
    "KERNEL_TIERS",
    "NUMBA_AVAILABLE",
    "available_kernel_tiers",
    "expand_products",
    "fast_uniform_width",
    "get_backend",
    "resolve_kernel",
]

#: Every kernel tier this library knows about, in preference order
#: (last = fastest).  ``SDHRequest.kernel`` accepts these plus "auto".
KERNEL_TIERS: tuple[str, ...] = ("numpy", "numba")

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba  # noqa: F401

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - ImportError, broken install, ...
    NUMBA_AVAILABLE = False


def available_kernel_tiers() -> tuple[str, ...]:
    """The kernel tiers usable in this process, slowest first.

    Always contains ``"numpy"``; contains ``"numba"`` only when the
    import guard found a working numba installation.  Engine
    registrations use this to advertise
    :attr:`~repro.core.engines.EngineCapabilities.kernel_tiers`.
    """
    if NUMBA_AVAILABLE:
        return ("numpy", "numba")
    return ("numpy",)


def resolve_kernel(name: str = "auto") -> str:
    """Map a requested kernel tier to a concrete one.

    ``"auto"`` picks the fastest available tier (numba when installed,
    numpy otherwise).  Explicit names pass through after validation —
    note an explicit ``"numba"`` resolves even when numba is absent, so
    the planner can still price it; :func:`get_backend` (and the engine
    capability check upstream) is what enforces availability.
    """
    tier = str(name).lower()
    if tier == "auto":
        return "numba" if NUMBA_AVAILABLE else "numpy"
    if tier not in KERNEL_TIERS:
        choices = ", ".join(("auto",) + KERNEL_TIERS)
        raise QueryError(
            f"unknown kernel tier {name!r}; choose one of: {choices}"
        )
    return tier


def get_backend(name: str = "auto"):
    """The backend module implementing a kernel tier.

    Raises :class:`~repro.errors.QueryError` when the resolved tier is
    not available in this process (numba not installed).
    """
    tier = resolve_kernel(name)
    if tier == "numba":
        if not NUMBA_AVAILABLE:
            raise QueryError(
                "kernel tier 'numba' requested but numba is not "
                "installed; install numba or use kernel='numpy'/'auto'"
            )
        from . import numba_backend

        return numba_backend
    from . import numpy_backend

    return numpy_backend


def fast_uniform_width(spec, reach: float) -> float | None:
    """The bucket width when ``spec`` is kernel-eligible, else ``None``.

    Eligibility is the engines' fast-binning condition: uniform buckets
    starting at zero whose range covers ``reach`` (the largest
    realizable distance — box diagonal, or the minimum-image bound for
    periodic queries) up to the bucket-edge tolerance.  Under it,
    ``min(int(d / width), nbins - 1)`` equals
    :meth:`~repro.core.buckets.UniformBuckets.bucket_of` for every
    realizable ``d`` and the overflow policy is unreachable.
    """
    from ..core.buckets import UniformBuckets

    if (
        isinstance(spec, UniformBuckets)
        and spec.low == 0.0
        and spec.high * (1.0 + 1e-9) >= reach
    ):
        return spec.width
    return None

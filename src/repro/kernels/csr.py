"""CSR cross-product expansion for the cell-pair frontier.

The grid engine stores leaf-cell membership as CSR slices into the
pyramid's sorted position array.  :func:`expand_products` turns a batch
of cell pairs into flat index arrays enumerating every particle-pair
combination, in memory-bounded chunks — the enumeration step in front
of every leaf-resolution kernel.  (Moved here from
``core/dm_sdh_grid.py`` so both kernel backends and the engines can
share it without an import cycle.)
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["expand_products"]


def expand_products(
    starts1: np.ndarray,
    counts1: np.ndarray,
    starts2: np.ndarray,
    counts2: np.ndarray,
    chunk: int,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Global index arrays of all cross products, in bounded chunks.

    Given per-pair CSR slices ``[starts1, starts1+counts1)`` and
    ``[starts2, starts2+counts2)``, produce index arrays ``(g1, g2)``
    enumerating every cross combination.  Pairs are grouped into slices
    whose total product size stays near ``chunk`` (a single huge pair
    may overshoot); within a slice everything is ``np.repeat``-based.
    """
    counts1 = np.asarray(counts1, dtype=np.int64)
    counts2 = np.asarray(counts2, dtype=np.int64)
    starts1 = np.asarray(starts1, dtype=np.int64)
    starts2 = np.asarray(starts2, dtype=np.int64)

    # Group pairs by the partner count c2 (few distinct values at leaf
    # occupancies near beta): within a group the within-pair decoding
    # uses a *scalar* divisor, which numpy handles far faster than the
    # per-element divisor a mixed batch would need.
    for c2_value in np.unique(counts2):
        if c2_value == 0:
            continue
        group = counts2 == c2_value
        g_counts1 = counts1[group]
        g_starts1 = starts1[group]
        g_starts2 = starts2[group]
        prod = g_counts1 * c2_value
        total = int(prod.sum())
        if total == 0:
            continue
        ends = np.cumsum(prod)
        cut_points = np.searchsorted(
            ends, np.arange(chunk, total, chunk), side="left"
        )
        boundaries = np.unique(
            np.concatenate(([0], cut_points + 1, [prod.size]))
        )
        for s_begin, s_end in zip(boundaries[:-1], boundaries[1:]):
            pr = prod[s_begin:s_end]
            live = pr > 0
            if not live.any():
                continue
            pr = pr[live]
            s1 = g_starts1[s_begin:s_end][live]
            s2 = g_starts2[s_begin:s_end][live]
            slice_total = int(pr.sum())
            offsets = np.cumsum(pr) - pr
            r = np.arange(slice_total, dtype=np.int64) - np.repeat(
                offsets, pr
            )
            g1 = np.repeat(s1, pr) + r // c2_value
            g2 = np.repeat(s2, pr) + r % c2_value
            yield g1, g2

"""Exact fixed-point accumulation for weighted histograms.

Weighted SDH buckets hold sums of pair-weight products ``w_i * w_j``.
Accumulating them in float64 would make the result depend on summation
order — and every engine (brute, tree, grid, parallel shards) visits
pairs in a different order, so bit-identical differential verification
would be impossible.  Worse, the density-map engines never touch most
pairs at all: a resolved cell pair contributes the *product of two cell
weight sums*, which only equals the sum of its pairwise products in
exact arithmetic.

This module therefore represents every weight exactly as a scaled
integer and keeps all intermediate sums exact:

* a float64 weight ``w = m * 2**(e-53)`` (``m`` the 53-bit signed
  mantissa) becomes the integer ``m << (e - 53 + WEIGHT_BIAS)`` — exact
  for every finite double, including subnormals, at scale
  ``2**-WEIGHT_BIAS``;
* pair products, cell-sum products and squared weights are integer
  products at scale ``2**-PRODUCT_BIAS``;
* per-bucket accumulators are either arbitrary-precision Python ints
  (engine-level cell resolution) or fixed-width little-endian *limb
  arrays* of int64 (kernel-level hot loops: vectorizable in numpy,
  loopable in numba, mergeable by plain integer addition);
* :func:`finalize` divides the exact integer totals by
  ``2**PRODUCT_BIAS`` with Python's correctly-rounded int/int division.

The result of a weighted query is therefore the **correctly-rounded
double of the exact real sum** — independent of engine decomposition,
kernel tier, chunk size, thread count and merge order.  That is what
lets ``repro-sdh verify`` demand bit-identical weighted histograms from
every engine x kernel-tier combination.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WEIGHT_BIAS",
    "PRODUCT_BIAS",
    "LIMB_BITS",
    "NLIMBS",
    "decompose",
    "weight_ints",
    "zero_ints",
    "new_limbs",
    "scatter_products",
    "normalize_limbs",
    "limbs_to_ints",
    "finalize",
    "exact_weighted_total",
]

#: Scale exponent of single weights: ``w * 2**WEIGHT_BIAS`` is an exact
#: integer for every finite double (the smallest subnormal is
#: ``2**-1074``; frexp yields exponents >= -1073 and mantissa shift 53).
WEIGHT_BIAS = 1126

#: Scale exponent of pair products (two weights multiplied).
PRODUCT_BIAS = 2 * WEIGHT_BIAS

#: Bits per limb of the fixed-width kernel accumulators.  Limbs are
#: stored in int64 so ~2**30 carries can pile up before overflow;
#: :func:`normalize_limbs` restores canonical [0, 2**32) digits.
LIMB_BITS = 32

#: Limbs needed to cover any pair product: the largest product mantissa
#: top bit sits at ``2 * 1024 + PRODUCT_BIAS`` ~ 4300 bits.
NLIMBS = 136

_MASK = (1 << LIMB_BITS) - 1


def decompose(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(mantissa, shift)`` integer form of float64 values.

    Each value equals ``mantissa * 2**(shift - WEIGHT_BIAS)`` exactly,
    with ``|mantissa| <= 2**53`` and ``shift >= 0``.  Zeros decompose to
    mantissa 0.  Values must be finite (``ParticleSet`` validates).
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    frac, exp = np.frexp(values)
    mant = (frac * 9007199254740992.0).astype(np.int64)  # * 2**53, exact
    shift = exp.astype(np.int64) - 53 + WEIGHT_BIAS
    return mant, shift


def weight_ints(values: np.ndarray) -> np.ndarray:
    """Exact integers at scale ``2**-WEIGHT_BIAS``, as an object array.

    Python ints carry arbitrary precision, so cell weight sums and
    sum-products computed from these are exact; numpy object arrays let
    the engines keep their vectorized indexing/pooling idioms.
    """
    mant, shift = decompose(values)
    out = np.empty(mant.shape[0], dtype=object)
    for i in range(mant.shape[0]):
        out[i] = int(mant[i]) << int(shift[i])
    return out


def zero_ints(nbins: int) -> np.ndarray:
    """A fresh object-int bucket accumulator (all buckets zero)."""
    out = np.empty(int(nbins), dtype=object)
    out[:] = 0
    return out


def new_limbs(nbins: int) -> np.ndarray:
    """A fresh ``(nbins, NLIMBS)`` int64 limb accumulator."""
    return np.zeros((int(nbins), NLIMBS), dtype=np.int64)


def scatter_products(
    limbs: np.ndarray,
    bins: np.ndarray,
    mant_a: np.ndarray,
    shift_a: np.ndarray,
    mant_b: np.ndarray,
    shift_b: np.ndarray,
) -> None:
    """Add exact pair products ``a * b`` into per-bucket limb rows.

    The 106-bit product mantissa is built from four 27x27-bit partial
    products; each partial is split into three 32-bit pieces aligned to
    its limb offset, so every arithmetic step stays inside int64 and is
    exact.  Pure integer work — order cannot perturb the result.
    """
    sign = np.where((mant_a < 0) != (mant_b < 0), np.int64(-1), np.int64(1))
    sign[(mant_a == 0) | (mant_b == 0)] = 0
    abs_a = np.abs(mant_a)
    abs_b = np.abs(mant_b)
    hi_a, lo_a = abs_a >> 27, abs_a & ((1 << 27) - 1)
    hi_b, lo_b = abs_b >> 27, abs_b & ((1 << 27) - 1)
    base = shift_a + shift_b
    for partial, rel in (
        (lo_a * lo_b, 0),
        (lo_a * hi_b, 27),
        (hi_a * lo_b, 27),
        (hi_a * hi_b, 54),
    ):
        total_shift = base + rel
        limb = total_shift >> 5
        off = total_shift & 31
        keep = 32 - off  # in [1, 32], so every shift below is < 64
        low = (partial & ((np.int64(1) << keep) - 1)) << off
        rest = partial >> keep
        mid = rest & _MASK
        high = rest >> LIMB_BITS
        np.add.at(limbs, (bins, limb), sign * low)
        np.add.at(limbs, (bins, limb + 1), sign * mid)
        np.add.at(limbs, (bins, limb + 2), sign * high)


#: Pairs one limb array can absorb between normalizations without any
#: risk of int64 overflow (4 partials x pieces < 2**32 each per pair).
SCATTER_LIMIT = 1 << 28


def normalize_limbs(limbs: np.ndarray) -> None:
    """Carry-propagate so every limb is a canonical [0, 2**32) digit.

    (The top limb keeps the sign; conversion handles it.)  Needed only
    to bound int64 growth between scatter batches — conversions via
    :func:`limbs_to_ints` are exact for any limb values.
    """
    for k in range(limbs.shape[1] - 1):
        carry = limbs[:, k] >> LIMB_BITS
        limbs[:, k] -= carry << LIMB_BITS
        limbs[:, k + 1] += carry


def limbs_to_ints(limbs: np.ndarray) -> np.ndarray:
    """Exact Python-int value of each limb row (object array)."""
    out = np.empty(limbs.shape[0], dtype=object)
    for b in range(limbs.shape[0]):
        total = 0
        row = limbs[b]
        for k in range(limbs.shape[1] - 1, -1, -1):
            total = (total << LIMB_BITS) + int(row[k])
        out[b] = total
    return out


_PRODUCT_DEN = 1 << PRODUCT_BIAS


def finalize(bucket_ints: np.ndarray) -> np.ndarray:
    """Correctly-rounded float64 bucket values of exact integer sums."""
    out = np.empty(bucket_ints.shape[0], dtype=np.float64)
    for b in range(bucket_ints.shape[0]):
        try:
            out[b] = bucket_ints[b] / _PRODUCT_DEN
        except OverflowError:  # |sum| beyond the double range
            out[b] = np.inf if bucket_ints[b] > 0 else -np.inf
    return out


def exact_weighted_total(
    weights_a: np.ndarray, weights_b: np.ndarray | None = None
) -> float:
    """Correctly-rounded total weighted pair mass.

    Self mass ``((sum w)**2 - sum w**2) / 2`` for one set, or the full
    cross mass ``(sum wa) * (sum wb)`` for two — computed through the
    same exact integer path as the engines, so a conserving engine's
    histogram total matches this value bit-for-bit.
    """
    wa = weight_ints(weights_a)
    total_a = sum(wa.tolist(), 0)
    if weights_b is None:
        square = sum((w * w for w in wa.tolist()), 0)
        mass = (total_a * total_a - square) >> 1
    else:
        wb = weight_ints(weights_b)
        mass = total_a * sum(wb.tolist(), 0)
    try:
        return mass / _PRODUCT_DEN
    except OverflowError:  # pragma: no cover - astronomically large
        return float("inf") if mass > 0 else float("-inf")

"""Pure-numpy leaf-resolution backend (always available).

Performs exactly the float operations the engines used inline before
the kernel tier existed — elementwise delta, minimum-image wrap via
``np.round`` (round-half-even), ordered per-axis sum of squares through
``einsum``, ``sqrt``, then a clamped truncating division — so the
histograms it produces are bit-identical to the historical engine
output and serve as the reference the numba tier is verified against.
"""

from __future__ import annotations

import numpy as np

from ..geometry.distance import (
    iter_cross_distance_chunks,
    iter_self_distance_chunks,
    minimum_image,
)

__all__ = ["NAME", "bin_gathered_pairs", "bin_dense_self", "bin_dense_cross"]

NAME = "numpy"

#: Default row-panel size of the dense sweeps (matches the brute-force
#: baseline's historical blocking).
DEFAULT_CHUNK = 2048


def _bin(distances: np.ndarray, width: float, nbins: int) -> np.ndarray:
    # Truncation of a non-negative quotient == floor, and the clamp
    # covers the topmost bucket edge — the same expression as
    # UniformBuckets.bucket_of under the fast-binning eligibility
    # condition (see kernels.fast_uniform_width).
    idx = np.minimum((distances / width).astype(np.int64), nbins - 1)
    return np.bincount(idx, minlength=nbins).astype(np.int64)


def bin_gathered_pairs(
    positions: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Histogram the distances of explicitly enumerated index pairs."""
    delta = positions[idx_a] - positions[idx_b]
    if box_lengths is not None:
        delta = minimum_image(delta, box_lengths)
    distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
    return _bin(distances, width, nbins), int(distances.size)


def bin_dense_self(
    positions: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Histogram all ``n(n-1)/2`` intra-set distances."""
    hist = np.zeros(nbins, dtype=np.int64)
    total = 0
    for distances in iter_self_distance_chunks(
        positions, chunk=chunk, box_lengths=box_lengths
    ):
        hist += _bin(distances, width, nbins)
        total += distances.size
    return hist, total


def bin_dense_cross(
    pos_a: np.ndarray,
    pos_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Histogram all ``len(a) * len(b)`` cross-set distances."""
    hist = np.zeros(nbins, dtype=np.int64)
    total = 0
    for distances in iter_cross_distance_chunks(
        pos_a, pos_b, chunk=chunk, box_lengths=box_lengths
    ):
        hist += _bin(distances, width, nbins)
        total += distances.size
    return hist, total

"""Pure-numpy leaf-resolution backend (always available).

Performs exactly the float operations the engines used inline before
the kernel tier existed — elementwise delta, minimum-image wrap via
``np.round`` (round-half-even), ordered per-axis sum of squares through
``einsum``, ``sqrt``, then a clamped truncating division — so the
histograms it produces are bit-identical to the historical engine
output and serve as the reference the numba tier is verified against.
"""

from __future__ import annotations

import numpy as np

from ..geometry.distance import (
    iter_cross_distance_chunks,
    iter_self_distance_chunks,
    minimum_image,
)
from . import exact

__all__ = [
    "NAME",
    "bin_gathered_pairs",
    "bin_dense_self",
    "bin_dense_cross",
    "bin_gathered_pairs_weighted",
    "bin_dense_self_weighted",
    "bin_dense_cross_weighted",
]

NAME = "numpy"

#: Default row-panel size of the dense sweeps (matches the brute-force
#: baseline's historical blocking).
DEFAULT_CHUNK = 2048


def _bin(distances: np.ndarray, width: float, nbins: int) -> np.ndarray:
    # Truncation of a non-negative quotient == floor, and the clamp
    # covers the topmost bucket edge — the same expression as
    # UniformBuckets.bucket_of under the fast-binning eligibility
    # condition (see kernels.fast_uniform_width).
    idx = np.minimum((distances / width).astype(np.int64), nbins - 1)
    return np.bincount(idx, minlength=nbins).astype(np.int64)


def bin_gathered_pairs(
    positions: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Histogram the distances of explicitly enumerated index pairs."""
    delta = positions[idx_a] - positions[idx_b]
    if box_lengths is not None:
        delta = minimum_image(delta, box_lengths)
    distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
    return _bin(distances, width, nbins), int(distances.size)


def bin_dense_self(
    positions: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Histogram all ``n(n-1)/2`` intra-set distances."""
    hist = np.zeros(nbins, dtype=np.int64)
    total = 0
    for distances in iter_self_distance_chunks(
        positions, chunk=chunk, box_lengths=box_lengths
    ):
        hist += _bin(distances, width, nbins)
        total += distances.size
    return hist, total


def bin_dense_cross(
    pos_a: np.ndarray,
    pos_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Histogram all ``len(a) * len(b)`` cross-set distances."""
    hist = np.zeros(nbins, dtype=np.int64)
    total = 0
    for distances in iter_cross_distance_chunks(
        pos_a, pos_b, chunk=chunk, box_lengths=box_lengths
    ):
        hist += _bin(distances, width, nbins)
        total += distances.size
    return hist, total


# ----------------------------------------------------------------------
# Weighted variants: same distance op-sequence and bin indices as the
# unweighted kernels, with pair weights ``w_i * w_j`` accumulated through
# the exact fixed-point machinery of :mod:`repro.kernels.exact` (limb
# arrays).  Returns ``(limbs, n_distances)``; callers convert limbs to
# exact bucket integers and round once at the end of the query.
# ----------------------------------------------------------------------


class _WeightScatter:
    """Exact pair-product scatter with bounded-overflow normalization."""

    def __init__(self, weights: np.ndarray, nbins: int):
        self.mant, self.shift = exact.decompose(weights)
        self.limbs = exact.new_limbs(nbins)
        self._pending = 0

    def add(self, bins: np.ndarray, idx_a: np.ndarray, idx_b: np.ndarray):
        exact.scatter_products(
            self.limbs, bins,
            self.mant[idx_a], self.shift[idx_a],
            self.mant[idx_b], self.shift[idx_b],
        )
        self._pending += bins.size
        if self._pending >= exact.SCATTER_LIMIT:
            exact.normalize_limbs(self.limbs)
            self._pending = 0


def _bin_idx(distances: np.ndarray, width: float, nbins: int) -> np.ndarray:
    return np.minimum((distances / width).astype(np.int64), nbins - 1)


def bin_gathered_pairs_weighted(
    positions: np.ndarray,
    weights: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Weighted histogram of explicitly enumerated index pairs."""
    scatter = _WeightScatter(weights, nbins)
    for start in range(0, idx_a.shape[0], chunk):
        ia = idx_a[start : start + chunk]
        ib = idx_b[start : start + chunk]
        delta = positions[ia] - positions[ib]
        if box_lengths is not None:
            delta = minimum_image(delta, box_lengths)
        distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        scatter.add(_bin_idx(distances, width, nbins), ia, ib)
    return scatter.limbs, int(idx_a.shape[0])


def bin_dense_self_weighted(
    positions: np.ndarray,
    weights: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Weighted histogram of all ``n(n-1)/2`` intra-set pairs."""
    positions = np.asarray(positions, dtype=float)
    n = positions.shape[0]
    dim = positions.shape[1]
    scatter = _WeightScatter(weights, nbins)
    total = 0
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = positions[start:stop]
        m = stop - start
        if m >= 2:
            iu, ju = np.triu_indices(m, k=1)
            delta = block[iu] - block[ju]
            if box_lengths is not None:
                delta = minimum_image(delta, box_lengths)
            distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            scatter.add(
                _bin_idx(distances, width, nbins), start + iu, start + ju
            )
            total += distances.size
        for rstart in range(stop, n, chunk):
            rstop = min(rstart + chunk, n)
            rblock = positions[rstart:rstop]
            delta = (block[:, None, :] - rblock[None, :, :]).reshape(-1, dim)
            if box_lengths is not None:
                delta = minimum_image(delta, box_lengths)
            distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            ia = np.repeat(np.arange(start, stop), rstop - rstart)
            ib = np.tile(np.arange(rstart, rstop), m)
            scatter.add(_bin_idx(distances, width, nbins), ia, ib)
            total += distances.size
    return scatter.limbs, total


def bin_dense_cross_weighted(
    pos_a: np.ndarray,
    pos_b: np.ndarray,
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    width: float,
    nbins: int,
    box_lengths: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
) -> tuple[np.ndarray, int]:
    """Weighted histogram of all ``len(a) * len(b)`` cross-set pairs."""
    pos_a = np.asarray(pos_a, dtype=float)
    pos_b = np.asarray(pos_b, dtype=float)
    mant_a, shift_a = exact.decompose(weights_a)
    mant_b, shift_b = exact.decompose(weights_b)
    limbs = exact.new_limbs(nbins)
    pending = 0
    total = 0
    for astart in range(0, pos_a.shape[0], chunk):
        astop = min(astart + chunk, pos_a.shape[0])
        ablock = pos_a[astart:astop]
        for bstart in range(0, pos_b.shape[0], chunk):
            bstop = min(bstart + chunk, pos_b.shape[0])
            bblock = pos_b[bstart:bstop]
            delta = (ablock[:, None, :] - bblock[None, :, :]).reshape(
                -1, pos_a.shape[1]
            )
            if box_lengths is not None:
                delta = minimum_image(delta, box_lengths)
            distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            ia = np.repeat(np.arange(astart, astop), bstop - bstart)
            ib = np.tile(np.arange(bstart, bstop), astop - astart)
            exact.scatter_products(
                limbs, _bin_idx(distances, width, nbins),
                mant_a[ia], shift_a[ia], mant_b[ib], shift_b[ib],
            )
            pending += distances.size
            total += distances.size
            if pending >= exact.SCATTER_LIMIT:
                exact.normalize_limbs(limbs)
                pending = 0
    return limbs, total

"""Multi-core parallel DM-SDH execution.

The grid engine (:mod:`repro.core.dm_sdh_grid`) resolves the pyramid's
cell-pair frontier on one core; this package shards that frontier
across a :class:`concurrent.futures.ProcessPoolExecutor` and merges the
per-worker partial histograms — an exact, order-independent sum, so the
result is bit-identical to the single-core run (CADISHI-style cell-pair
parallelism; Reuter & Köfinger 2018).

Coordinates travel through :mod:`multiprocessing.shared_memory` (one
segment per run, see :mod:`repro.parallel.shm`), never through task
pickles.
"""

from .engine import parallel_sdh
from .shm import SharedArrayBundle, live_segments

__all__ = ["parallel_sdh", "SharedArrayBundle", "live_segments"]

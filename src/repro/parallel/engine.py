"""Multi-core DM-SDH: shard the cell-pair frontier across processes.

The single-core grid engine descends the pyramid level by level,
resolving cell pairs where it can and refining the rest.  Every pair in
that frontier is *independent* — resolving it touches only the
histogram and counters it credits — and every count an exact run
produces is an integral float64 far below 2^53, so partial histograms
sum without rounding.  That makes the parallel decomposition exact:

1. the parent builds (or receives) the pyramid and processes the first
   few coarse levels inline — there are too few pairs up there to be
   worth shipping — until the unresolved frontier is wide enough;
2. the frontier pairs (and, when the start map is the leaf map, the
   intra-cell leaf scans) are strided round-robin into tasks;
3. each worker attaches the shared-memory coordinate arrays once
   (:mod:`repro.parallel.shm`), rebuilds a zero-copy pyramid view, and
   drains its tasks down to the leaf level with the *same* engine code
   the single-core path runs;
4. the parent sums the per-task histograms and merges the
   :class:`~repro.core.instrumentation.SDHStats` — a pure, order-
   independent sum, so the result is bit-identical to ``engine="grid"``.

Only the task index arrays travel through pickles; coordinates live in
one shared segment per run, created and unlinked by the parent.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

import numpy as np

from ..core.buckets import BucketSpec, OverflowPolicy
from ..core.dm_sdh_grid import (
    DEFAULT_DISTANCE_CHUNK,
    DEFAULT_PAIR_CHUNK,
    GridSDHEngine,
    dm_sdh_grid,
)
from ..core.histogram import DistanceHistogram
from ..core.instrumentation import SDHStats
from ..data.particles import ParticleSet
from ..errors import QueryError
from ..geometry import AABB
from ..observability import get_logger, get_registry, log_event, trace_span
from ..quadtree.grid import GridPyramid
from .shm import SharedArrayBundle, attach

__all__ = ["parallel_sdh"]

#: Tasks created per worker: more than 1 so early-finishing workers
#: pick up slack from uneven shards.
DEFAULT_TASKS_PER_WORKER = 8


def parallel_sdh(
    data: GridPyramid | ParticleSet,
    spec: BucketSpec | None = None,
    bucket_width: float | None = None,
    workers: int | None = None,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    stats: SDHStats | None = None,
    periodic: bool = False,
    tasks_per_worker: int = DEFAULT_TASKS_PER_WORKER,
    fanout_pairs: int | None = None,
    mp_context: multiprocessing.context.BaseContext | str | None = None,
    pair_chunk: int = DEFAULT_PAIR_CHUNK,
    distance_chunk: int = DEFAULT_DISTANCE_CHUNK,
    kernel: str = "auto",
) -> DistanceHistogram:
    """Compute an exact SDH on multiple cores; bit-identical to the grid engine.

    Parameters beyond :func:`~repro.core.dm_sdh_grid.dm_sdh_grid`:

    workers:
        Process count.  ``None`` means ``os.cpu_count()``; ``1`` runs
        the single-core engine inline (no pool, no shared memory).
    tasks_per_worker / fanout_pairs:
        Sharding knobs: the parent descends until the frontier holds at
        least ``fanout_pairs`` cell pairs (default scales with the task
        count), then splits it into ``workers * tasks_per_worker``
        round-robin shards.
    mp_context:
        A :mod:`multiprocessing` context or start-method name; the
        platform default (``fork`` on Linux) when None.
    kernel:
        Leaf-resolution backend tier (see :mod:`repro.kernels`) used by
        every worker; processes and SIMD compose.  All tiers are
        bit-identical, so the merge stays exact.

    Approximate mode and MBR resolution are not offered here — the
    allocator heuristics sample RNG state per batch, which has no
    order-independent merge; use the grid engine for those.
    """
    if isinstance(data, GridPyramid):
        pyramid = data
    else:
        pyramid = GridPyramid(data, with_mbr=False)
    if pyramid.particles.weighted:
        # The merge of exact weighted accumulators across workers is
        # not implemented; the capability registry routes weighted
        # queries elsewhere, this guard catches direct calls.
        raise QueryError(
            "the parallel engine does not support weighted datasets"
        )
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return dm_sdh_grid(
            pyramid, spec=spec, bucket_width=bucket_width, policy=policy,
            stats=stats, periodic=periodic, kernel=kernel,
        )
    if tasks_per_worker < 1:
        raise QueryError(
            f"tasks_per_worker must be >= 1, got {tasks_per_worker}"
        )

    run_stats = stats if stats is not None else SDHStats()
    engine = GridSDHEngine(
        pyramid,
        spec=spec,
        bucket_width=bucket_width,
        policy=policy,
        stats=run_stats,
        periodic=periodic,
        pair_chunk=pair_chunk,
        distance_chunk=distance_chunk,
        kernel=kernel,
    )
    start = engine._start_level()
    leaf = pyramid.leaf_level
    run_stats.start_level = start
    run_stats.levels_visited = leaf - start + 1

    num_tasks = workers * tasks_per_worker
    if fanout_pairs is None:
        fanout_pairs = 64 * num_tasks

    tasks = list(_intra_tasks(engine, start, num_tasks))
    tasks.extend(_frontier_tasks(engine, start, leaf, fanout_pairs,
                                 num_tasks))
    if not tasks:
        return engine.histogram

    if isinstance(mp_context, str):
        ctx = multiprocessing.get_context(mp_context)
    elif mp_context is None:
        ctx = multiprocessing.get_context()
    else:
        ctx = mp_context

    bundle = SharedArrayBundle(
        {
            "positions": pyramid.sorted_positions,
            "leaf_starts": pyramid.leaf_starts,
        }
    )
    config = {
        "spec": engine.spec,
        "policy": policy,
        "periodic": periodic,
        "height": pyramid.height,
        "box_lo": tuple(pyramid.particles.box.lo),
        "box_hi": tuple(pyramid.particles.box.hi),
        "pair_chunk": pair_chunk,
        "distance_chunk": distance_chunk,
        "kernel": engine.kernel,
    }
    registry = get_registry()
    task_seconds = registry.histogram(
        "sdh_parallel_task_seconds",
        "Wall-clock seconds per parallel worker shard.",
        ("kind",),
    )
    tasks_total = registry.counter(
        "sdh_parallel_tasks_total",
        "Parallel worker shards completed.",
        ("kind",),
    )
    log = get_logger("parallel")
    pool = ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=ctx,
        initializer=_init_worker,
        initargs=(bundle.descriptor(), config),
    )
    try:
        with trace_span(
            "parallel_fanout",
            workers=min(workers, len(tasks)),
            tasks=len(tasks),
            particles=pyramid.particles.size,
        ):
            futures = [pool.submit(_run_task, task) for task in tasks]
            try:
                for task, future in zip(tasks, futures):
                    counts, worker_stats, seconds, pid = future.result()
                    engine.histogram.add_counts(counts)
                    run_stats.merge(worker_stats)
                    kind = task[0]
                    task_seconds.labels(kind=kind).observe(seconds)
                    tasks_total.labels(kind=kind).inc()
                    if log.isEnabledFor(logging.DEBUG):
                        log_event(
                            log, logging.DEBUG, "parallel_task_done",
                            kind=kind, worker_pid=pid,
                            duration_seconds=round(seconds, 9),
                        )
            except BaseException:
                pool.shutdown(wait=True, cancel_futures=True)
                raise
    finally:
        pool.shutdown(wait=True)
        bundle.unlink()
    return engine.histogram


# ----------------------------------------------------------------------
# Parent-side sharding
# ----------------------------------------------------------------------
def _intra_tasks(
    engine: GridSDHEngine, start: int, num_tasks: int
) -> Iterable[tuple]:
    """Intra-cell work: inline when it is a closed-form count, sharded
    leaf scans otherwise."""
    pyramid = engine.pyramid
    shortcut = (
        engine.spec.low == 0.0
        and pyramid.cell_diagonal(start) <= float(engine.spec.edges[1])
    )
    if shortcut:
        # O(cells) arithmetic — never worth a process round-trip.
        engine._intra_cell(start)
        return
    # Not a shortcut, so the start map is the leaf map (see
    # GridSDHEngine._start_level) and intra-cell distances are computed
    # directly.  Shard the occupied cells, largest first, round-robin —
    # a cell costs ~count^2, so interleaving the sorted order keeps the
    # shards even.
    counts = pyramid.counts(pyramid.leaf_level)
    cells = np.flatnonzero(counts >= 2)
    if cells.size == 0:
        return
    cells = cells[np.argsort(-counts[cells], kind="stable")]
    shards = min(int(cells.size), num_tasks)
    for t in range(shards):
        yield ("intra", cells[t::shards])


def _frontier_tasks(
    engine: GridSDHEngine,
    start: int,
    leaf: int,
    fanout_pairs: int,
    num_tasks: int,
) -> Iterable[tuple]:
    """Descend inline until the frontier is wide enough, then shard it.

    The parent resolves coarse-level pairs itself (they are few and
    cheap) and stops at the first level whose *unprocessed* expansion
    reaches ``fanout_pairs`` pairs — or at the leaf map, whose pairs
    always go to the workers.

    When the start map already is the leaf map the pair triangle can be
    enormous; instead of materializing it here, workers receive row
    strides of the triangle and enumerate their own pairs (the shard
    payload is two integers).
    """
    if start == leaf:
        occupied = int(
            np.count_nonzero(engine.pyramid.counts(leaf))
        )
        if occupied < 2:
            return
        shards = min(num_tasks, occupied - 1)
        for t in range(shards):
            yield ("triangle", t, shards)
        return
    level = start
    frontier: list[tuple[np.ndarray, np.ndarray]] = list(
        engine._start_pairs(start)
    )
    while level < leaf and frontier:
        total = sum(a.shape[0] for a, _ in frontier)
        if total >= fanout_pairs:
            break
        carry = []
        for idx_a, idx_b in frontier:
            unresolved = engine._process_batch(level, idx_a, idx_b, leaf)
            if unresolved is not None:
                carry.append(unresolved)
        if not carry:
            return
        level += 1
        frontier = list(engine._expand(carry, child_level=level))
    if not frontier:
        return
    idx_a = np.concatenate([a for a, _ in frontier])
    idx_b = np.concatenate([b for _, b in frontier])
    shards = min(int(idx_a.shape[0]), num_tasks)
    for t in range(shards):
        yield ("pairs", level, idx_a[t::shards], idx_b[t::shards])


# ----------------------------------------------------------------------
# Worker side (module-level so both fork and spawn can pickle them)
# ----------------------------------------------------------------------
_WORKER_ENGINE: GridSDHEngine | None = None
_WORKER_HANDLE = None


def _init_worker(descriptor, config) -> None:
    """Attach shared memory once and build the per-process engine.

    The engine (and its cached per-level offset-class tables) is reused
    across every task this worker runs; only the histogram and stats
    are reset per task.
    """
    global _WORKER_ENGINE, _WORKER_HANDLE
    views, handle = attach(descriptor)
    _WORKER_HANDLE = handle  # keeps the mapping alive for the views
    particles = ParticleSet(
        views["positions"],
        box=AABB.from_arrays(config["box_lo"], config["box_hi"]),
    )
    pyramid = GridPyramid.from_components(
        particles,
        height=config["height"],
        leaf_starts=views["leaf_starts"],
        sorted_positions=views["positions"],
    )
    _WORKER_ENGINE = GridSDHEngine(
        pyramid,
        spec=config["spec"],
        policy=config["policy"],
        periodic=config["periodic"],
        pair_chunk=config["pair_chunk"],
        distance_chunk=config["distance_chunk"],
        kernel=config["kernel"],
    )


def _run_task(task: tuple) -> tuple[np.ndarray, SDHStats, float, int]:
    """Resolve one shard; returns ``(counts, stats, seconds, pid)``.

    The duration is measured inside the worker so the parent can
    attribute wall-clock per shard kind (and per worker process)
    without including pool queueing time.
    """
    engine = _WORKER_ENGINE
    assert engine is not None, "worker used before initialization"
    engine.histogram = DistanceHistogram(engine.spec)
    engine.stats = SDHStats()
    started = time.perf_counter()
    if task[0] == "intra":
        engine.process_intra_cells(task[1])
    elif task[0] == "triangle":
        _run_triangle(engine, task[1], task[2])
    else:
        _, level, idx_a, idx_b = task
        engine.process_pairs(level, idx_a, idx_b)
    seconds = time.perf_counter() - started
    return engine.histogram.counts, engine.stats, seconds, os.getpid()


def _run_triangle(engine: GridSDHEngine, t: int, shards: int) -> None:
    """Resolve rows ``t, t+shards, ...`` of the leaf-map pair triangle.

    Mirrors ``GridSDHEngine._start_pairs`` for the start==leaf case:
    the worker enumerates unordered pairs (r, s>r) of occupied leaf
    cells for its row stride, in blocks of ~pair_chunk pairs, so no
    process ever holds the full triangle.
    """
    pyramid = engine.pyramid
    level = pyramid.leaf_level
    nonempty = np.flatnonzero(pyramid.counts(level))
    c = nonempty.size
    if c < 2:
        return
    idx = pyramid.decode(level, nonempty)
    rows = np.arange(t, c - 1, shards, dtype=np.int64)
    if rows.size == 0:
        return
    per_row = c - 1 - rows
    ends = np.cumsum(per_row)
    cuts = np.searchsorted(
        ends, np.arange(engine.pair_chunk, ends[-1], engine.pair_chunk),
        side="left",
    )
    bounds = np.unique(np.concatenate(([0], cuts + 1, [rows.size])))
    for begin, end in zip(bounds[:-1], bounds[1:]):
        block = rows[begin:end]
        a_rows = np.repeat(block, per_row[begin:end])
        b_rows = np.concatenate([np.arange(r + 1, c) for r in block])
        engine.process_pairs(level, idx[a_rows], idx[b_rows])

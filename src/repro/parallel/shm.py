"""Shared-memory transport for the parallel engine's large arrays.

The parallel engine must hand every worker the sorted particle
coordinates and the pyramid's CSR leaf offsets.  Pickling them into
each task would copy the whole dataset per task; instead the parent
packs all arrays into **one** :class:`multiprocessing.shared_memory`
segment and ships only a small picklable :class:`BundleDescriptor`.
Workers attach and wrap zero-copy numpy views.

Lifecycle: the parent creates the bundle, forks/spawns the pool,
and — in a ``finally`` — closes and unlinks the segment after the pool
has shut down.  Workers only ever ``close()`` their attachment.
:func:`live_segments` exposes the names of segments this process has
created and not yet unlinked, so tests can assert nothing leaks even
when a run dies mid-flight.
"""

from __future__ import annotations

import logging
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..observability import get_logger, get_registry, log_event

__all__ = [
    "ArraySpec",
    "BundleDescriptor",
    "SharedArrayBundle",
    "attach",
    "live_segments",
]

# Offsets are aligned so every array view starts on a cache line.
_ALIGN = 64

#: Names of segments created (and not yet unlinked) by this process.
_LIVE: set[str] = set()

_log = get_logger("parallel.shm")


def live_segments() -> frozenset[str]:
    """Segment names this process currently owns (leak-check hook)."""
    return frozenset(_LIVE)


def _publish_live_count() -> None:
    get_registry().gauge(
        "sdh_shm_live_segments",
        "Shared-memory segments created by this process and not yet "
        "unlinked (must return to 0 between parallel runs).",
    ).set(len(_LIVE))


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one array inside the segment (picklable)."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class BundleDescriptor:
    """Everything a worker needs to attach: segment name + array layout."""

    segment: str
    arrays: tuple[ArraySpec, ...]


class SharedArrayBundle:
    """Named numpy arrays packed into one shared-memory segment.

    Parent side::

        bundle = SharedArrayBundle({"positions": pos, "starts": starts})
        try:
            ... fan out tasks carrying bundle.descriptor() ...
        finally:
            bundle.unlink()

    Worker side: :func:`attach` the descriptor once per process and keep
    the returned handle alive as long as the views are in use.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        specs: list[ArraySpec] = []
        offset = 0
        prepared: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            prepared[name] = array
            specs.append(
                ArraySpec(
                    name=name,
                    dtype=array.dtype.str,
                    shape=tuple(array.shape),
                    offset=offset,
                )
            )
            offset += -(-array.nbytes // _ALIGN) * _ALIGN
        # SharedMemory refuses zero-size segments; keep a minimal one so
        # the degenerate all-empty case still round-trips.
        segment_name = f"repro-sdh-{secrets.token_hex(6)}"
        self._shm = shared_memory.SharedMemory(
            name=segment_name, create=True, size=max(offset, _ALIGN)
        )
        _LIVE.add(self._shm.name)
        registry = get_registry()
        registry.counter(
            "sdh_shm_segments_created_total",
            "Shared-memory segments created for parallel runs.",
        ).inc()
        registry.counter(
            "sdh_shm_bytes_total",
            "Bytes allocated in shared-memory segments.",
        ).inc(self._shm.size)
        _publish_live_count()
        log_event(
            _log, logging.DEBUG, "shm_segment_created",
            segment=self._shm.name, bytes=self._shm.size,
            arrays=[spec.name for spec in specs],
        )
        self._specs = tuple(specs)
        self._unlinked = False
        self._closed = False
        for spec in self._specs:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._shm.buf,
                offset=spec.offset,
            )
            view[...] = prepared[spec.name]

    @property
    def name(self) -> str:
        """The OS-level segment name."""
        return self._shm.name

    def descriptor(self) -> BundleDescriptor:
        """The picklable attachment recipe for workers."""
        return BundleDescriptor(segment=self._shm.name, arrays=self._specs)

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (idempotent; also closes)."""
        self.close()
        if not self._unlinked:
            self._unlinked = True
            self._shm.unlink()
            _LIVE.discard(self._shm.name)
            _publish_live_count()
            log_event(
                _log, logging.DEBUG, "shm_segment_unlinked",
                segment=self._shm.name,
            )

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.unlink()
        except Exception:
            pass


def attach(
    descriptor: BundleDescriptor,
) -> tuple[dict[str, np.ndarray], shared_memory.SharedMemory]:
    """Attach to a bundle and return ``(views, handle)``.

    The views are read-only, zero-copy windows into the segment; the
    caller must keep ``handle`` alive while using them and ``close()``
    it when done (workers never ``unlink`` — the parent owns the
    segment).
    """
    handle = shared_memory.SharedMemory(name=descriptor.segment, create=False)
    views: dict[str, np.ndarray] = {}
    for spec in descriptor.arrays:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=handle.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        views[spec.name] = view
    return views, handle

"""Command-line front end: ``repro-sdh`` / ``python -m repro``.

Subcommands:

* ``generate`` — write a synthetic dataset (uniform / zipf / membrane)
  to a ``.npz`` or ``.xyz`` file;
* ``sdh`` — compute a histogram for a dataset file and print it;
* ``plan`` — print the cost-based planner's ranked execution
  candidates for a query without running it (see ``docs/PLANNER.md``);
* ``calibrate`` — measure this host's planner cost constants and
  persist them;
* ``rdf`` — compute and print g(r);
* ``info`` — dataset and density-map summary;
* ``serve`` — run the JSON-over-HTTP query service (see
  :mod:`repro.service` and ``docs/SERVICE.md``);
* ``verify`` — run the correctness harness (differential engine
  comparison, planner-neutrality checks, metamorphic invariants,
  seeded fuzzing; see :mod:`repro.verify` and ``docs/TESTING.md``).

The CLI is a thin veneer over the public API; anything serious should
import :mod:`repro` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from .core import SDHRequest, SDHStats, compute_sdh
from .data import (
    ParticleSet,
    load_particles,
    load_xyz,
    save_particles,
    save_xyz,
    synthetic_bilayer,
    uniform,
    zipf_clustered,
)
from .errors import ReproError
from .observability import configure_logging, trace_span
from .physics import rdf_from_histogram
from .quadtree import GridPyramid

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree of the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-sdh",
        description=(
            "Spatial distance histograms via density maps "
            "(Tu, Chen & Pandit, ICDE 2009)"
        ),
    )
    # Shared on every subcommand so `repro-sdh sdh --log-json` works
    # (argparse only accepts top-level flags before the subcommand).
    logopts = argparse.ArgumentParser(add_help=False)
    logopts.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="minimum level of structured log output "
        "(default: warning, or info with --log-json)",
    )
    logopts.add_argument(
        "--log-json",
        action="store_true",
        help="emit logs as one JSON object per line (per-phase spans, "
        "trace IDs; see docs/OBSERVABILITY.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="write a synthetic dataset", parents=[logopts]
    )
    gen.add_argument("output", help="target file (.npz or .xyz)")
    gen.add_argument(
        "--family",
        choices=("uniform", "zipf", "membrane"),
        default="uniform",
    )
    gen.add_argument("--n", type=int, default=10000, help="particle count")
    gen.add_argument("--dim", type=int, choices=(2, 3), default=3)
    gen.add_argument("--seed", type=int, default=0)

    sdh = sub.add_parser(
        "sdh", help="compute a distance histogram", parents=[logopts]
    )
    sdh.add_argument("input", help="dataset file (.npz or .xyz)")
    group = sdh.add_mutually_exclusive_group(required=True)
    group.add_argument("--width", type=float, help="bucket width p")
    group.add_argument("--buckets", type=int, help="total bucket count l")
    sdh.add_argument(
        "--engine",
        choices=("auto", "grid", "tree", "brute", "parallel"),
        default="auto",
    )
    sdh.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel engine "
        "(>1 makes --engine auto pick it)",
    )
    sdh.add_argument(
        "--error-bound",
        type=float,
        default=None,
        help="run approximate ADM-SDH with this error bound",
    )
    sdh.add_argument(
        "--heuristic", type=int, choices=(1, 2, 3, 4), default=3
    )
    sdh.add_argument("--mbr", action="store_true", help="use node MBRs")
    sdh.add_argument(
        "--periodic",
        action="store_true",
        help="minimum-image distances over the simulation box",
    )
    sdh.add_argument(
        "--stats", action="store_true", help="print operation counters"
    )
    sdh.add_argument(
        "--kernel",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help="leaf-resolution kernel tier (bit-identical results; "
        "'auto' picks the fastest installed)",
    )
    sdh.add_argument(
        "--latency-budget-ms",
        type=float,
        default=None,
        metavar="MS",
        help="latency SLO: fail (exit 1) unless the planner predicts a "
        "strategy finishing within MS milliseconds",
    )
    sdh.add_argument(
        "--planner",
        choices=("auto", "off"),
        default="auto",
        help="'auto' routes engine=auto queries through the cost-based "
        "planner; 'off' uses the static rule (grid, or parallel when "
        "--workers > 1)",
    )
    sdh.add_argument(
        "--weights",
        default=None,
        metavar="FILE",
        help="per-particle weights for a weighted SDH: a .npy file or "
        "a text file with one weight per line",
    )
    sdh.add_argument(
        "--cross",
        default=None,
        metavar="FILE",
        help="second dataset (.npz or .xyz) for a two-dataset "
        "cross-set SDH counting only A-B pairs",
    )

    plan = sub.add_parser(
        "plan",
        help="print the planner's ranked execution candidates "
        "(see docs/PLANNER.md)",
        parents=[logopts],
    )
    plan.add_argument("input", help="dataset file (.npz or .xyz)")
    plan_group = plan.add_mutually_exclusive_group(required=True)
    plan_group.add_argument("--width", type=float, help="bucket width p")
    plan_group.add_argument(
        "--buckets", type=int, help="total bucket count l"
    )
    plan.add_argument(
        "--engine",
        choices=("auto", "grid", "tree", "brute", "parallel"),
        default="auto",
        help="pin the engine (the planner still prices it)",
    )
    plan.add_argument("--workers", type=int, default=None)
    plan.add_argument(
        "--kernel",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help="pin the leaf-resolution kernel tier "
        "(the planner otherwise prices every installed tier)",
    )
    plan.add_argument(
        "--error-bound",
        type=float,
        default=None,
        help="plan an approximate ADM-SDH run with this error bound",
    )
    plan.add_argument(
        "--latency-budget-ms", type=float, default=None, metavar="MS",
        help="latency SLO the chosen strategy must satisfy",
    )
    plan.add_argument(
        "--periodic", action="store_true",
        help="minimum-image distances over the simulation box",
    )
    plan.add_argument(
        "--calibration",
        default=None,
        metavar="PATH",
        help="use this calibration file instead of the default "
        "(~/.cache/repro-sdh/calibration.json or $REPRO_SDH_CALIBRATION)",
    )
    plan.add_argument(
        "--json", action="store_true",
        help="print the plan as JSON instead of the explain() text",
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="measure this host's planner cost constants "
        "(a few seconds of micro-benchmarks)",
        parents=[logopts],
    )
    calibrate.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="where to write the calibration JSON (default: "
        "$REPRO_SDH_CALIBRATION or ~/.cache/repro-sdh/calibration.json)",
    )
    calibrate.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="probe-size multiplier (lower it on constrained hosts)",
    )

    rdf = sub.add_parser(
        "rdf", help="compute g(r) from a dataset", parents=[logopts]
    )
    rdf.add_argument("input", help="dataset file (.npz or .xyz)")
    rdf.add_argument("--buckets", type=int, default=100)
    rdf.add_argument(
        "--periodic",
        action="store_true",
        help="minimum-image distances and torus normalization",
    )

    info = sub.add_parser(
        "info", help="summarize a dataset", parents=[logopts]
    )
    info.add_argument("input", help="dataset file (.npz or .xyz)")

    serve = sub.add_parser(
        "serve", help="run the SDH query service", parents=[logopts]
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787, help="0 picks a free port"
    )
    serve.add_argument(
        "--dataset",
        action="append",
        default=[],
        metavar="PATH[:NAME]",
        help="preload and index a dataset file, optionally under a name "
        "(repeatable)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="query worker threads"
    )
    serve.add_argument(
        "--queue",
        type=int,
        default=16,
        help="admitted requests allowed to wait beyond the running ones",
    )
    serve.add_argument(
        "--cache",
        type=int,
        default=8,
        help="plan-cache capacity (datasets with a built pyramid)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-query time budget in seconds (0 = unlimited)",
    )
    serve.add_argument(
        "--result-cache-capacity",
        type=int,
        default=256,
        metavar="N",
        help="finished responses kept in the result cache "
        "(0 disables storage; identical in-flight requests still "
        "coalesce)",
    )
    serve.add_argument(
        "--result-ttl",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="seconds a cached result stays servable (0 = no expiry)",
    )
    serve.add_argument(
        "--parallel-threshold",
        type=int,
        default=None,
        metavar="N",
        help="DEPRECATED (the cost-based planner routes auto queries; "
        "see docs/PLANNER.md): pin datasets of >= N particles to the "
        "multi-process parallel engine",
    )
    serve.add_argument(
        "--parallel-workers",
        type=int,
        default=0,
        help="processes for the deprecated --parallel-threshold "
        "override (0 = one per core)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )

    verify = sub.add_parser(
        "verify",
        help="run the correctness harness (see docs/TESTING.md)",
        parents=[logopts],
    )
    verify.add_argument(
        "--seeds",
        type=int,
        default=20,
        help="number of fuzz seeds to run (each is one generated case)",
    )
    verify.add_argument(
        "--seed-start",
        type=int,
        default=0,
        help="first seed (cases are a pure function of their seed)",
    )
    verify.add_argument(
        "--engines",
        default=None,
        metavar="NAME[,NAME...]",
        help="comma-separated engine subset "
        "(default: every registered engine)",
    )
    verify.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="replay stored reproducers from DIR first, and write "
        "shrunk failures back into it",
    )
    verify.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes given to worker-capable engines",
    )
    verify.add_argument(
        "--kernel",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help="pin every fuzz case to one kernel tier; 'auto' diffs "
        "all installed tiers against each other per engine",
    )
    verify.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the metamorphic invariant checks",
    )
    verify.add_argument(
        "--no-adm",
        action="store_true",
        help="skip the ADM-SDH error-model bounds",
    )
    verify.add_argument(
        "--no-planner",
        action="store_true",
        help="skip the planner-neutrality check (planner-routed vs "
        "forced-engine execution)",
    )
    verify.add_argument(
        "--json",
        action="store_true",
        help="print the full report as JSON instead of text",
    )

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # --log-json without an explicit level means "show the spans":
    # structured output is only useful if the INFO-level phase events
    # actually appear.
    level = args.log_level or ("info" if args.log_json else "warning")
    configure_logging(level, json_output=args.log_json)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "sdh":
            return _cmd_sdh(args)
        if args.command == "plan":
            return _cmd_plan(args)
        if args.command == "calibrate":
            return _cmd_calibrate(args)
        if args.command == "rdf":
            return _cmd_rdf(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "verify":
            return _cmd_verify(args)
        return _cmd_info(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _load(path: str) -> ParticleSet:
    if path.endswith(".xyz"):
        return load_xyz(path)
    return load_particles(path)


def _load_weights(path: str) -> np.ndarray:
    """One weight per particle: a ``.npy`` array or a text column."""
    if path.endswith(".npy"):
        return np.asarray(np.load(path), dtype=np.float64).ravel()
    return np.loadtxt(path, dtype=np.float64).ravel()


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.family == "uniform":
        data = uniform(args.n, dim=args.dim, rng=rng)
    elif args.family == "zipf":
        data = zipf_clustered(args.n, dim=args.dim, rng=rng)
    else:
        data = synthetic_bilayer(args.n, dim=args.dim, rng=rng)
    if args.output.endswith(".xyz"):
        save_xyz(args.output, data)
    else:
        save_particles(args.output, data)
    print(f"wrote {data.size} particles ({args.family}, {args.dim}D) "
          f"to {args.output}")
    return 0


def _cmd_sdh(args: argparse.Namespace) -> int:
    with trace_span("load_dataset", path=args.input) as span:
        data = _load(args.input)
        span.annotate(particles=data.size)
    if args.weights is not None:
        data = data.with_weights(_load_weights(args.weights))
    b = None
    if args.cross is not None:
        b = _load(args.cross)
        if b.box != data.box:
            # Files carry their own extent-fitted boxes; cross-set
            # operands must share one, so pool the two.
            from .geometry import AABB

            lo = np.minimum(data.box.lo, b.box.lo)
            hi = np.maximum(data.box.hi, b.box.hi)
            pooled = AABB(lo, hi)
            data = ParticleSet(
                data.positions,
                box=pooled,
                types=data.types,
                weights=data.weights,
            )
            b = ParticleSet(
                b.positions, box=pooled, types=b.types, weights=b.weights
            )
    stats = SDHStats()
    request = SDHRequest(
        bucket_width=args.width,
        num_buckets=args.buckets,
        engine=args.engine,
        use_mbr=args.mbr,
        error_bound=args.error_bound,
        heuristic=args.heuristic,
        periodic=args.periodic,
        workers=args.workers,
        latency_budget_ms=args.latency_budget_ms,
        planner=args.planner,
        kernel=args.kernel,
    )
    histogram = compute_sdh(data, request, stats=stats, b=b)
    print(histogram.to_text())
    weighted = data.weighted or (b is not None and b.weighted)
    if weighted:
        print(f"total pair mass: {histogram.total:.17g}")
    else:
        print(f"total pairs: {histogram.total:.0f}")
    if args.stats:
        print(f"start level:       {stats.start_level}")
        print(f"resolve calls:     {stats.total_resolve_calls}")
        print(f"resolved pairs:    {stats.total_resolved_pairs}")
        print(f"distances computed:{stats.distance_computations}")
        if stats.approximated_distances:
            print(f"approximated:      {stats.approximated_distances:.0f}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import json as json_module

    from .planner import get_calibration, plan_request

    data = _load(args.input)
    request = SDHRequest(
        bucket_width=args.width,
        num_buckets=args.buckets,
        engine=args.engine,
        error_bound=args.error_bound,
        periodic=args.periodic,
        workers=args.workers,
        latency_budget_ms=args.latency_budget_ms,
        kernel=args.kernel,
    )
    calibration = get_calibration(args.calibration)
    plan = plan_request(request, data, calibration=calibration)
    if args.json:
        print(json_module.dumps(plan.to_dict(), indent=2))
    else:
        print(plan.explain())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .planner import calibrate as run_calibration
    from .planner import save_calibration

    print("measuring host cost constants (a few seconds)...")
    calibration = run_calibration(scale=args.scale)
    path = save_calibration(calibration, args.output)
    print(f"calibration written to {path}")
    for key, value in calibration.constants.to_dict().items():
        print(f"  {key:26s} {value:.3e}")
    return 0


def _cmd_rdf(args: argparse.Namespace) -> int:
    data = _load(args.input)
    histogram = compute_sdh(
        data, SDHRequest(num_buckets=args.buckets, periodic=args.periodic)
    )
    rdf = rdf_from_histogram(
        histogram,
        data,
        finite_size="periodic" if args.periodic else "corrected",
    )
    for r, g in zip(rdf.r, rdf.g):
        print(f"{r:12.6f} {g:12.6f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SDHService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_capacity=args.cache,
        max_workers=args.workers,
        max_queue=args.queue,
        timeout=None if args.timeout <= 0 else args.timeout,
        result_cache_capacity=args.result_cache_capacity,
        result_ttl=None if args.result_ttl <= 0 else args.result_ttl,
        parallel_threshold=args.parallel_threshold,
        parallel_workers=args.parallel_workers,
    )
    if args.parallel_threshold is not None:
        print(
            "warning: --parallel-threshold is deprecated; the "
            "cost-based planner routes auto queries (docs/PLANNER.md)",
            file=sys.stderr,
        )
    service = SDHService(config)
    for entry in args.dataset:
        path, _, name = entry.rpartition(":")
        if not path:  # no ":NAME" suffix given
            path, name = name, None
        data = _load(path)
        key = service.preload(data, name)
        label = f" as {name!r}" if name else ""
        print(f"indexed {data.size} particles from {path}{label} "
              f"({key[:12]}...)")
    print(f"serving on {service.url} "
          f"(workers={args.workers}, queue={args.queue}, "
          f"cache={args.cache})")
    try:
        service.serve_forever(verbose=args.verbose)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("shutting down")
        service.shutdown()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json as json_module

    from .verify import Corpus, run_verification

    engines = None
    if args.engines:
        engines = tuple(
            name.strip() for name in args.engines.split(",") if name.strip()
        )
    corpus = Corpus(args.corpus) if args.corpus else None
    report = run_verification(
        seeds=args.seeds,
        seed_start=args.seed_start,
        engines=engines,
        corpus=corpus,
        invariants=not args.no_invariants,
        adm=not args.no_adm,
        planner=not args.no_planner,
        workers=args.workers,
        kernel=args.kernel,
    )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(f"engines:    {', '.join(report.engines)}")
        print(f"fuzz cases: {report.cases_run} "
              f"(seeds {args.seed_start}..{args.seed_start + args.seeds - 1})")
        if corpus is not None:
            print(f"corpus:     {report.corpus_replayed} case(s) replayed")
        if report.adm_checked:
            print("adm bounds: checked")
        print(f"duration:   {report.duration_seconds:.2f}s")
        if report.ok:
            print("verify: OK — no discrepancies")
        else:
            print(f"verify: FAILED — {len(report.discrepancies)} "
                  f"discrepanc{'y' if len(report.discrepancies) == 1 else 'ies'}")
            for item in report.discrepancies:
                where = f" [{item.case}]" if item.case else ""
                seed = f" (seed {item.seed})" if item.seed is not None else ""
                print(f"  {item.kind}{where}{seed}: {item.detail}")
            if report.corpus_written:
                print("shrunk reproducers written:")
                for path in report.corpus_written:
                    print(f"  {path}")
    return 0 if report.ok else 1


def _cmd_info(args: argparse.Namespace) -> int:
    data = _load(args.input)
    pyramid = GridPyramid(data)
    print(f"particles:  {data.size}")
    print(f"dimensions: {data.dim}")
    print(f"box:        {data.box}")
    if data.types is not None:
        names = data.type_names
        for code in np.unique(data.types):
            label = names.get(int(code), str(code))
            count = int(np.count_nonzero(data.types == code))
            print(f"  type {label}: {count}")
    print(f"tree height (Eq. 2): {pyramid.height}")
    finest = pyramid.counts(pyramid.leaf_level)
    print(f"leaf cells: {finest.size} ({np.count_nonzero(finest)} occupied)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

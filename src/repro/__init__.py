"""repro — spatial distance histograms for scientific databases.

A production-quality reproduction of

    Yi-Cheng Tu, Shaoping Chen, Sagar Pandit.
    "Computing Distance Histograms Efficiently in Scientific Databases."
    ICDE 2009.

The library computes the Spatial Distance Histogram (SDH) of particle
datasets with the paper's density-map algorithms:

>>> from repro import compute_sdh, uniform
>>> data = uniform(2000, dim=2, rng=0)
>>> hist = compute_sdh(data, num_buckets=16)
>>> hist.total == data.num_pairs
True

Key entry points: :func:`compute_sdh` (one call, any engine),
:class:`SDHQuery` (index once, query many times), :func:`adm_sdh`
(constant-time approximate histograms), and :mod:`repro.physics` for
the RDF/thermodynamics layer built on top.
"""

from .core import (
    AllocationContext,
    Allocator,
    BucketSpec,
    CustomBuckets,
    DistanceHistogram,
    Engine,
    EngineCapabilities,
    GridSDHEngine,
    OverflowPolicy,
    SDHQuery,
    SDHRequest,
    SDHStats,
    TreeSDHEngine,
    UniformBuckets,
    adm_sdh,
    available_engines,
    brute_force_cross_sdh,
    brute_force_sdh,
    build_plan,
    choose_levels_for_error,
    compute_sdh,
    covering_factor,
    covering_factor_model,
    dm_sdh_exponent,
    dm_sdh_grid,
    dm_sdh_tree,
    get_engine,
    make_allocator,
    non_covering_factor,
    predict_error,
    register_engine,
    resolve_engine_name,
    unregister_engine,
)
from .parallel import parallel_sdh
from .data import (
    ParticleSet,
    Trajectory,
    figure1_dataset,
    gaussian_clusters,
    lattice,
    load_particles,
    load_xyz,
    random_types,
    random_walk_trajectory,
    save_particles,
    save_xyz,
    synthetic_bilayer,
    uniform,
    zipf_clustered,
)
from .errors import (
    BucketSpecError,
    DatasetError,
    DatasetNotFound,
    DistanceOverflowError,
    GeometryError,
    QueryError,
    QueryTimeout,
    ReproError,
    SLOInfeasibleError,
    ServerOverloaded,
    ServiceError,
    StorageError,
    TreeError,
)
from .geometry import AABB, BallRegion, RectRegion, Region, UnionRegion
from .observability import (
    MetricsRegistry,
    configure_logging,
    get_registry,
    trace_span,
)
from .partition import KDPartition, kd_sdh
from .quadtree import DensityMapTree, GridPyramid, tree_height

__version__ = "1.0.0"

__all__ = [
    "AABB",
    "AllocationContext",
    "Allocator",
    "BallRegion",
    "BucketSpec",
    "BucketSpecError",
    "CustomBuckets",
    "DatasetError",
    "DatasetNotFound",
    "DensityMapTree",
    "DistanceHistogram",
    "DistanceOverflowError",
    "Engine",
    "EngineCapabilities",
    "GeometryError",
    "GridPyramid",
    "GridSDHEngine",
    "KDPartition",
    "MetricsRegistry",
    "OverflowPolicy",
    "ParticleSet",
    "QueryError",
    "QueryTimeout",
    "RectRegion",
    "Region",
    "ReproError",
    "SDHQuery",
    "SDHRequest",
    "SDHStats",
    "SLOInfeasibleError",
    "ServerOverloaded",
    "ServiceError",
    "StorageError",
    "Trajectory",
    "TreeError",
    "TreeSDHEngine",
    "UniformBuckets",
    "UnionRegion",
    "adm_sdh",
    "available_engines",
    "brute_force_cross_sdh",
    "brute_force_sdh",
    "build_plan",
    "choose_levels_for_error",
    "compute_sdh",
    "configure_logging",
    "covering_factor",
    "covering_factor_model",
    "dm_sdh_exponent",
    "dm_sdh_grid",
    "dm_sdh_tree",
    "figure1_dataset",
    "gaussian_clusters",
    "get_engine",
    "get_registry",
    "kd_sdh",
    "lattice",
    "load_particles",
    "load_xyz",
    "make_allocator",
    "non_covering_factor",
    "parallel_sdh",
    "predict_error",
    "random_types",
    "register_engine",
    "resolve_engine_name",
    "unregister_engine",
    "random_walk_trajectory",
    "save_particles",
    "save_xyz",
    "synthetic_bilayer",
    "trace_span",
    "tree_height",
    "uniform",
    "zipf_clustered",
    "__version__",
]

"""Particle dataset container.

Particle simulation frames are, for the purposes of the SDH query, a set
of coordinates plus (optionally) a type label per particle — the second
query variety of Sec. III-C.3 restricts the histogram to particles of a
given type (e.g. carbon atoms), so the container carries a compact
integer-coded type array with a name table.

:class:`ParticleSet` is deliberately simple: a ``(N, d)`` float64
coordinate array, a simulation box, and optional types.  It also
implements the *duplication scaling* protocol the paper uses to grow its
real 286,000-atom dataset to arbitrary N ("we randomly choose and
duplicate atoms in this dataset", Sec. VI-A).
"""

from __future__ import annotations

import hashlib
import math
from typing import Mapping, Sequence

import numpy as np

from ..errors import DatasetError
from ..geometry import AABB

__all__ = ["ParticleSet"]


class ParticleSet:
    """An immutable set of particles in a simulation box.

    Parameters
    ----------
    positions:
        ``(N, d)`` array of coordinates, ``d`` in {2, 3}.
    box:
        The simulation box.  Defaults to the tight bounding box of the
        positions, expanded to a square/cube (density maps subdivide a
        square domain, so a cubical box keeps cells square at all
        levels).
    types:
        Optional length-N integer array of type codes.
    type_names:
        Optional mapping from type code to a human-readable name
        (e.g. ``{0: "C", 1: "O"}``).
    weights:
        Optional length-N float64 array of per-particle weights (a pair
        contributes ``w_i * w_j`` to its bucket instead of 1).  Weights
        must be finite; zero and negative values are allowed — FKP-style
        correlation estimators use both.
    """

    def __init__(
        self,
        positions: np.ndarray,
        box: AABB | None = None,
        types: np.ndarray | None = None,
        type_names: Mapping[int, str] | None = None,
        weights: np.ndarray | None = None,
    ):
        positions = np.ascontiguousarray(positions, dtype=np.float64)
        if positions.ndim != 2:
            raise DatasetError(
                f"positions must be (N, d), got shape {positions.shape}"
            )
        if positions.shape[1] not in (2, 3):
            raise DatasetError(
                f"only 2D and 3D data supported, got d={positions.shape[1]}"
            )
        if positions.shape[0] == 0:
            raise DatasetError("a particle set cannot be empty")
        if not np.all(np.isfinite(positions)):
            raise DatasetError("positions must be finite")

        if box is None:
            box = _enclosing_cube(positions)
        if box.dim != positions.shape[1]:
            raise DatasetError("box dimensionality does not match positions")
        if not bool(box.contains_points(positions, closed=True).all()):
            raise DatasetError("some positions lie outside the declared box")

        if types is not None:
            types = np.ascontiguousarray(types, dtype=np.int32)
            if types.shape != (positions.shape[0],):
                raise DatasetError(
                    "types must be a 1D array with one entry per particle"
                )
            if types.min(initial=0) < 0:
                raise DatasetError("type codes must be non-negative")

        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != (positions.shape[0],):
                raise DatasetError(
                    "weights must be a 1D array with one entry per particle"
                )
            if not np.all(np.isfinite(weights)):
                raise DatasetError("weights must be finite")

        self._positions = positions
        self._positions.setflags(write=False)
        self._box = box
        self._types = types
        if self._types is not None:
            self._types.setflags(write=False)
        self._weights = weights
        if self._weights is not None:
            self._weights.setflags(write=False)
        self._type_names = dict(type_names) if type_names else {}
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """The read-only ``(N, d)`` coordinate array."""
        return self._positions

    @property
    def box(self) -> AABB:
        """The simulation box."""
        return self._box

    @property
    def types(self) -> np.ndarray | None:
        """Per-particle type codes, or None when untyped."""
        return self._types

    @property
    def type_names(self) -> dict[int, str]:
        """Mapping from type code to display name (may be empty)."""
        return dict(self._type_names)

    @property
    def weights(self) -> np.ndarray | None:
        """Per-particle weights, or None when unweighted."""
        return self._weights

    @property
    def weighted(self) -> bool:
        """Whether the set carries per-particle weights."""
        return self._weights is not None

    @property
    def size(self) -> int:
        """Number of particles N."""
        return self._positions.shape[0]

    @property
    def dim(self) -> int:
        """Spatial dimensionality d (2 or 3)."""
        return self._positions.shape[1]

    @property
    def num_pairs(self) -> int:
        """``N * (N - 1) / 2`` — the mass every exact SDH must conserve."""
        n = self.size
        return n * (n - 1) // 2

    @property
    def weighted_num_pairs(self) -> float:
        """Total weighted pair mass ``((sum w)^2 - sum w^2) / 2``.

        Equals :attr:`num_pairs` for unweighted sets (all weights 1);
        this is the conservation total a weighted exact SDH must hit.
        """
        if self._weights is None:
            return float(self.num_pairs)
        total = float(self._weights.sum())
        square = float((self._weights * self._weights).sum())
        return (total * total - square) / 2.0

    @property
    def max_possible_distance(self) -> float:
        """Diagonal of the simulation box — upper bound on any distance."""
        return self._box.diagonal

    @property
    def max_periodic_distance(self) -> float:
        """Largest minimum-image distance: half-diagonal of the box.

        Under periodic boundaries no pair can be farther than
        ``sqrt(sum (L_k / 2)^2)``.
        """
        return math.sqrt(sum((s / 2.0) ** 2 for s in self._box.sides))

    def fingerprint(self) -> str:
        """Stable content hash of this dataset (hex SHA-256).

        Two sets hash equal iff they hold the same coordinates in the
        same order, the same box, and the same type labelling; the hash
        is independent of process, platform byte order, and session.  It
        keys the service plan cache and stamps benchmark provenance.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(b"repro-particle-set-v1")
            digest.update(np.int64(self.size).tobytes())
            digest.update(np.int64(self.dim).tobytes())
            # Canonical little-endian float64 bytes so the hash matches
            # across architectures.
            digest.update(
                np.ascontiguousarray(self._positions, dtype="<f8").tobytes()
            )
            digest.update(np.asarray(self._box.lo, dtype="<f8").tobytes())
            digest.update(np.asarray(self._box.hi, dtype="<f8").tobytes())
            if self._types is not None:
                digest.update(b"types")
                digest.update(
                    np.ascontiguousarray(self._types, dtype="<i4").tobytes()
                )
            if self._weights is not None:
                digest.update(b"weights")
                digest.update(
                    np.ascontiguousarray(self._weights, dtype="<f8").tobytes()
                )
            for code in sorted(self._type_names):
                digest.update(
                    f"{code}={self._type_names[code]}".encode("utf-8")
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        typed = "" if self._types is None else ", typed"
        weighted = "" if self._weights is None else ", weighted"
        return f"ParticleSet(N={self.size}, d={self.dim}{typed}{weighted})"

    # ------------------------------------------------------------------
    # Derived sets
    # ------------------------------------------------------------------
    def select(self, mask: np.ndarray) -> "ParticleSet":
        """Subset by boolean mask or index array (box preserved)."""
        positions = self._positions[mask]
        if positions.shape[0] == 0:
            raise DatasetError("selection is empty")
        types = None if self._types is None else self._types[mask]
        weights = None if self._weights is None else self._weights[mask]
        return ParticleSet(
            positions, self._box, types, self._type_names, weights=weights
        )

    def of_type(self, type_code: int | str) -> "ParticleSet":
        """Particles of one type (by code or by registered name)."""
        code = self.resolve_type(type_code)
        return self.select(self._types == code)

    def resolve_type(self, type_code: int | str) -> int:
        """Translate a type name/code into a valid integer code."""
        if self._types is None:
            raise DatasetError("dataset has no type information")
        if isinstance(type_code, str):
            matches = [
                code
                for code, name in self._type_names.items()
                if name == type_code
            ]
            if not matches:
                raise DatasetError(f"unknown type name {type_code!r}")
            return matches[0]
        code = int(type_code)
        if code not in np.unique(self._types):
            raise DatasetError(f"no particles of type code {code}")
        return code

    def type_count(self, type_code: int | str) -> int:
        """Number of particles of the given type."""
        code = self.resolve_type(type_code)
        return int(np.count_nonzero(self._types == code))

    # ------------------------------------------------------------------
    # The paper's duplication-scaling protocol (Sec. VI-A)
    # ------------------------------------------------------------------
    def scale_to(
        self,
        target_n: int,
        rng: np.random.Generator | None = None,
        jitter: float = 0.0,
    ) -> "ParticleSet":
        """Grow or shrink the dataset to ``target_n`` particles.

        Growth randomly duplicates existing particles — exactly the
        protocol the paper uses to scale its real membrane dataset for
        Fig. 8c / 9c.  ``jitter`` optionally displaces duplicates by a
        small uniform offset (fraction of the box side) so the duplicated
        set does not contain exactly coincident points; the paper's
        experiments used plain duplication, so it defaults to 0.

        Shrinking takes a uniform random subset.
        """
        if target_n < 1:
            raise DatasetError(f"target_n must be >= 1, got {target_n}")
        rng = np.random.default_rng() if rng is None else rng
        n = self.size
        if target_n <= n:
            keep = rng.choice(n, size=target_n, replace=False)
            return self.select(np.sort(keep))
        extra_idx = rng.choice(n, size=target_n - n, replace=True)
        extra = self._positions[extra_idx]
        if jitter > 0:
            side = min(self._box.sides)
            extra = extra + rng.uniform(
                -jitter * side, jitter * side, size=extra.shape
            )
            lo = np.asarray(self._box.lo)
            hi = np.asarray(self._box.hi)
            extra = np.clip(extra, lo, np.nextafter(hi, lo))
        positions = np.vstack([self._positions, extra])
        types = None
        if self._types is not None:
            types = np.concatenate([self._types, self._types[extra_idx]])
        weights = None
        if self._weights is not None:
            weights = np.concatenate(
                [self._weights, self._weights[extra_idx]]
            )
        return ParticleSet(
            positions, self._box, types, self._type_names, weights=weights
        )

    def with_types(
        self,
        types: np.ndarray,
        type_names: Mapping[int, str] | None = None,
    ) -> "ParticleSet":
        """A copy of this set with (new) type labels attached."""
        return ParticleSet(
            self._positions, self._box, types, type_names,
            weights=self._weights,
        )

    def with_weights(self, weights: np.ndarray | None) -> "ParticleSet":
        """A copy of this set with (new) per-particle weights.

        ``None`` strips the weights, returning the unweighted view of
        the same coordinates.
        """
        return ParticleSet(
            self._positions, self._box, self._types, self._type_names,
            weights=weights,
        )


def _enclosing_cube(positions: np.ndarray) -> AABB:
    """Smallest origin-anchored cube covering positions with slack.

    A tiny relative margin is added above the max coordinate so every
    particle satisfies the half-open cell membership at all tree levels.
    """
    low = positions.min(axis=0)
    high = positions.max(axis=0)
    side = float((high - low).max())
    if side <= 0:
        side = 1.0
    side *= 1.0 + 1e-9
    return AABB.from_arrays(low, low + side)

"""Dataset persistence: compact binary (``.npz``) and plain-text XYZ.

Scientific groups exchange particle configurations either as raw binary
arrays or as the venerable XYZ text format; both are supported so the
example scripts and the CLI can operate on files rather than in-memory
arrays only.  Trajectories (multi-frame datasets, Sec. VIII of the
paper) are stored as one ``.npz`` with stacked frames.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from ..errors import DatasetError
from ..geometry import AABB
from .particles import ParticleSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trajectory import Trajectory

__all__ = [
    "save_particles",
    "load_particles",
    "save_xyz",
    "load_xyz",
    "save_trajectory",
    "load_trajectory",
]


def save_particles(path: str | os.PathLike, particles: ParticleSet) -> None:
    """Write a particle set to a compressed ``.npz`` file."""
    payload: dict[str, np.ndarray] = {
        "positions": particles.positions,
        "box_lo": np.asarray(particles.box.lo),
        "box_hi": np.asarray(particles.box.hi),
    }
    if particles.types is not None:
        payload["types"] = particles.types
        names = particles.type_names
        if names:
            codes = np.asarray(sorted(names), dtype=np.int64)
            labels = np.asarray([names[int(c)] for c in codes], dtype="U32")
            payload["type_codes"] = codes
            payload["type_labels"] = labels
    np.savez_compressed(os.fspath(path), **payload)


def load_particles(path: str | os.PathLike) -> ParticleSet:
    """Read a particle set written by :func:`save_particles`."""
    with np.load(os.fspath(path)) as data:
        if "positions" not in data:
            raise DatasetError(f"{path}: not a particle file")
        positions = data["positions"]
        box = AABB.from_arrays(data["box_lo"], data["box_hi"])
        types = data["types"] if "types" in data else None
        type_names = None
        if "type_codes" in data:
            type_names = {
                int(code): str(label)
                for code, label in zip(data["type_codes"], data["type_labels"])
            }
    return ParticleSet(positions, box, types, type_names)


def save_xyz(path: str | os.PathLike, particles: ParticleSet) -> None:
    """Write an XYZ-style text file.

    Format: first line is the atom count, second line a comment carrying
    the box corners, then one ``<type> <x> <y> [<z>]`` line per atom.
    2D data writes two coordinates per line.
    """
    types = particles.types
    names = particles.type_names
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{particles.size}\n")
        lo = " ".join(f"{v:.17g}" for v in particles.box.lo)
        hi = " ".join(f"{v:.17g}" for v in particles.box.hi)
        handle.write(f"box {lo} {hi}\n")
        for i, row in enumerate(particles.positions):
            if types is None:
                label = "X"
            else:
                code = int(types[i])
                label = names.get(code, str(code))
            coords = " ".join(f"{v:.17g}" for v in row)
            handle.write(f"{label} {coords}\n")


def load_xyz(path: str | os.PathLike) -> ParticleSet:
    """Read a file written by :func:`save_xyz`."""
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline()
        try:
            count = int(header.strip())
        except ValueError as exc:
            raise DatasetError(f"{path}: bad XYZ header {header!r}") from exc
        comment = handle.readline().split()
        box = None
        if comment and comment[0] == "box":
            values = [float(v) for v in comment[1:]]
            dim = len(values) // 2
            box = AABB.from_arrays(values[:dim], values[dim:])
        labels: list[str] = []
        rows: list[list[float]] = []
        for line in handle:
            parts = line.split()
            if not parts:
                continue
            labels.append(parts[0])
            rows.append([float(v) for v in parts[1:]])
        if len(rows) != count:
            raise DatasetError(
                f"{path}: header promises {count} atoms, found {len(rows)}"
            )
    positions = np.asarray(rows, dtype=float)
    unique = sorted(set(labels))
    types = None
    type_names = None
    if unique != ["X"]:
        code_of = {name: i for i, name in enumerate(unique)}
        types = np.asarray([code_of[name] for name in labels], dtype=np.int32)
        type_names = {i: name for name, i in code_of.items()}
    return ParticleSet(positions, box, types, type_names)


def save_trajectory(path: str | os.PathLike, trajectory: "Trajectory") -> None:
    """Write a multi-frame trajectory to one ``.npz`` file.

    All frames of a trajectory share particle count and box, so frames
    are stacked into a single ``(T, N, d)`` array.
    """
    frames = np.stack([frame.positions for frame in trajectory.frames])
    payload: dict[str, np.ndarray] = {
        "frames": frames,
        "box_lo": np.asarray(trajectory.box.lo),
        "box_hi": np.asarray(trajectory.box.hi),
    }
    types = trajectory.frames[0].types
    if types is not None:
        payload["types"] = types
    np.savez_compressed(os.fspath(path), **payload)


def load_trajectory(path: str | os.PathLike) -> "Trajectory":
    """Read a trajectory written by :func:`save_trajectory`."""
    from .trajectory import Trajectory

    with np.load(os.fspath(path)) as data:
        if "frames" not in data:
            raise DatasetError(f"{path}: not a trajectory file")
        stacked = data["frames"]
        box = AABB.from_arrays(data["box_lo"], data["box_hi"])
        types = data["types"] if "types" in data else None
    frames = [
        ParticleSet(stacked[t], box, types) for t in range(stacked.shape[0])
    ]
    return Trajectory(frames)

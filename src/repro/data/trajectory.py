"""Multi-frame particle trajectories.

Simulation output is a sequence of *frames* — continuous snapshots of
the simulated system (paper Sec. VIII).  The incremental SDH extension
(:mod:`repro.incremental`) exploits the similarity between neighbouring
frames; this module provides the frame container and a synthetic
dynamics generator that mimics that similarity: per step only a fraction
of the particles move, by a bounded random displacement.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..errors import DatasetError
from ..geometry import AABB
from .particles import ParticleSet

__all__ = ["Trajectory", "random_walk_trajectory"]


class Trajectory:
    """An ordered sequence of frames sharing box, size and types."""

    def __init__(self, frames: Sequence[ParticleSet]):
        if not frames:
            raise DatasetError("a trajectory needs at least one frame")
        first = frames[0]
        for t, frame in enumerate(frames):
            if frame.size != first.size:
                raise DatasetError(
                    f"frame {t} has {frame.size} particles, expected "
                    f"{first.size}"
                )
            if frame.dim != first.dim:
                raise DatasetError(f"frame {t} dimensionality differs")
            if frame.box != first.box:
                raise DatasetError(f"frame {t} box differs")
        self._frames = list(frames)

    @property
    def frames(self) -> list[ParticleSet]:
        """The frames, in time order."""
        return list(self._frames)

    @property
    def num_frames(self) -> int:
        """Number of frames T."""
        return len(self._frames)

    @property
    def box(self) -> AABB:
        """The shared simulation box."""
        return self._frames[0].box

    @property
    def size(self) -> int:
        """Particle count N (identical across frames)."""
        return self._frames[0].size

    def __len__(self) -> int:
        return self.num_frames

    def __getitem__(self, index: int) -> ParticleSet:
        return self._frames[index]

    def __iter__(self) -> Iterator[ParticleSet]:
        return iter(self._frames)

    def moved_mask(self, t: int) -> np.ndarray:
        """Mask of particles whose position changed from frame t-1 to t."""
        if t < 1 or t >= self.num_frames:
            raise DatasetError(f"frame index {t} out of range for deltas")
        prev = self._frames[t - 1].positions
        cur = self._frames[t].positions
        return np.any(prev != cur, axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trajectory(T={self.num_frames}, N={self.size})"


def random_walk_trajectory(
    initial: ParticleSet,
    num_frames: int,
    move_fraction: float = 0.05,
    step_scale: float = 0.01,
    rng: np.random.Generator | int | None = None,
) -> Trajectory:
    """Synthetic dynamics: each step moves a random subset of particles.

    Parameters
    ----------
    initial:
        Frame 0.
    num_frames:
        Total number of frames (including the initial one).
    move_fraction:
        Fraction of particles displaced per step — the "similarity
        between neighbouring frames" knob.  Real MD moves every atom a
        little; moving few atoms a lot is the regime where incremental
        SDH maintenance wins, which is what the extension benchmarks
        explore.
    step_scale:
        Displacement scale as a fraction of the box side.
    """
    if num_frames < 1:
        raise DatasetError("num_frames must be >= 1")
    if not 0 < move_fraction <= 1:
        raise DatasetError("move_fraction must be in (0, 1]")
    if isinstance(rng, np.random.Generator):
        generator = rng
    else:
        generator = np.random.default_rng(rng)

    box = initial.box
    lo = np.asarray(box.lo)
    hi = np.asarray(box.hi)
    side = float(min(box.sides))
    frames = [initial]
    current = initial.positions.copy()
    n = initial.size
    num_moving = max(1, int(round(move_fraction * n)))
    for _step in range(num_frames - 1):
        moving = generator.choice(n, size=num_moving, replace=False)
        delta = generator.normal(
            0.0, step_scale * side, size=(num_moving, initial.dim)
        )
        current = current.copy()
        current[moving] = np.clip(
            current[moving] + delta, lo, np.nextafter(hi, lo)
        )
        frames.append(
            ParticleSet(current, box, initial.types, initial.type_names)
        )
    return Trajectory(frames)

"""Synthetic stand-in for the paper's real molecular dataset.

The paper's "real data" experiments (Fig. 8c, Fig. 9c) use a simulated
hydrated dipalmitoylphosphatidylcholine (DPPC) bilayer in NaCl/KCl
solution with 286,000 atoms (Fig. 10): *two layers of hydrophilic head
groups (with higher atom density) connected to hydrophobic tails (lower
atom density) are surrounded by water molecules that are almost
uniformly distributed in space*.

We do not have that trajectory, so :func:`synthetic_bilayer` builds the
closest synthetic equivalent with exactly the structure the paper
describes:

* two dense slabs of *head-group* atoms (Gaussian-profiled around two
  planes), facing the solvent;
* a lower-density *tail* region between the head planes;
* *water* filling the rest of the box almost uniformly;
* a sprinkle of *ions* (Na/K/Cl stand-ins) dissolved in the water.

Why this substitution preserves the relevant behaviour: the SDH
algorithms consume only coordinates; what distinguishes Fig. 8c from the
uniform/Zipf panels is a layered, non-uniform but "reasonable"
(Theorem 2) density profile with both dense and sparse cells.  The
synthetic bilayer reproduces that profile, its atom-count composition,
and supports the same duplication-scaling protocol via
:meth:`repro.data.particles.ParticleSet.scale_to`.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..geometry import AABB
from .particles import ParticleSet

__all__ = ["synthetic_bilayer", "MEMBRANE_TYPES"]

#: Type-code table of the synthetic membrane components.
MEMBRANE_TYPES: dict[int, str] = {
    0: "head",
    1: "tail",
    2: "water",
    3: "ion",
}

# Composition fractions, loosely modeled on a hydrated DPPC patch where
# roughly half the atoms are solvent.
_FRACTIONS = {"head": 0.18, "tail": 0.27, "water": 0.52, "ion": 0.03}


def synthetic_bilayer(
    n: int = 10000,
    dim: int = 3,
    box_side: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> ParticleSet:
    """Generate a synthetic bilayer-membrane particle set.

    Parameters
    ----------
    n:
        Total atom count.  The paper's source dataset has 286,000 atoms;
        any ``n`` works here and the set can be re-scaled afterwards with
        :meth:`~repro.data.particles.ParticleSet.scale_to` exactly like
        the paper scales its real data.
    dim:
        2 produces a cross-section (layers along y), 3 the full slab
        (layers along z).
    box_side:
        Side length of the cubic simulation box.
    rng:
        Seed or generator for reproducibility.
    """
    if n < 4:
        raise DatasetError("a bilayer needs at least 4 atoms")
    if dim not in (2, 3):
        raise DatasetError(f"dim must be 2 or 3, got {dim}")
    if isinstance(rng, np.random.Generator):
        generator = rng
    else:
        generator = np.random.default_rng(rng)

    box = AABB.cube(box_side, dim)
    normal_axis = dim - 1  # y in 2D, z in 3D

    counts = _component_counts(n)
    sections: list[np.ndarray] = []
    types: list[np.ndarray] = []

    # Membrane geometry along the normal axis (fractions of box_side):
    # tails occupy [0.38, 0.62]; head planes sit at 0.35 and 0.65.
    head_planes = (0.35 * box_side, 0.65 * box_side)
    head_sigma = 0.02 * box_side
    tail_lo, tail_hi = 0.40 * box_side, 0.60 * box_side

    # --- head groups: two dense Gaussian-profiled layers ---------------
    n_head = counts["head"]
    half = n_head // 2
    for plane, m in ((head_planes[0], half), (head_planes[1], n_head - half)):
        coords = generator.uniform(0.0, box_side, size=(m, dim))
        coords[:, normal_axis] = generator.normal(plane, head_sigma, size=m)
        sections.append(coords)
        types.append(np.full(m, 0, dtype=np.int32))

    # --- tails: lower-density slab between the head planes -------------
    n_tail = counts["tail"]
    coords = generator.uniform(0.0, box_side, size=(n_tail, dim))
    coords[:, normal_axis] = generator.uniform(tail_lo, tail_hi, size=n_tail)
    sections.append(coords)
    types.append(np.full(n_tail, 1, dtype=np.int32))

    # --- water: uniform outside the membrane slab ----------------------
    n_water = counts["water"]
    coords = generator.uniform(0.0, box_side, size=(n_water, dim))
    normals = _sample_outside(
        generator, n_water, box_side, tail_lo, tail_hi
    )
    coords[:, normal_axis] = normals
    sections.append(coords)
    types.append(np.full(n_water, 2, dtype=np.int32))

    # --- ions: uniform in the water region ------------------------------
    n_ion = counts["ion"]
    coords = generator.uniform(0.0, box_side, size=(n_ion, dim))
    coords[:, normal_axis] = _sample_outside(
        generator, n_ion, box_side, tail_lo, tail_hi
    )
    sections.append(coords)
    types.append(np.full(n_ion, 3, dtype=np.int32))

    positions = np.vstack(sections)
    codes = np.concatenate(types)
    positions = np.clip(positions, 0.0, np.nextafter(box_side, 0.0))
    # Shuffle so that slicing prefixes of the set stays representative.
    order = generator.permutation(positions.shape[0])
    return ParticleSet(
        positions[order], box, codes[order], MEMBRANE_TYPES
    )


def _component_counts(n: int) -> dict[str, int]:
    """Integer atom counts per component summing exactly to n."""
    counts = {
        name: int(round(frac * n)) for name, frac in _FRACTIONS.items()
    }
    # Fix rounding drift on the largest component.
    drift = n - sum(counts.values())
    counts["water"] += drift
    # Guarantee at least one atom per component for small n.
    for name in counts:
        if counts[name] < 1:
            counts["water"] -= 1 - counts[name]
            counts[name] = 1
    if counts["water"] < 1:
        raise DatasetError(f"n={n} too small for a 4-component membrane")
    return counts


def _sample_outside(
    rng: np.random.Generator,
    m: int,
    box_side: float,
    lo: float,
    hi: float,
) -> np.ndarray:
    """Uniform samples along the normal axis avoiding the slab [lo, hi].

    The two solvent half-spaces are sampled proportionally to their
    thickness so the water density is uniform, as in the paper's Fig. 10
    description.
    """
    below = lo - 0.0
    above = box_side - hi
    p_below = below / (below + above)
    pick_below = rng.uniform(size=m) < p_below
    out = np.empty(m, dtype=float)
    n_below = int(pick_below.sum())
    out[pick_below] = rng.uniform(0.0, lo, size=n_below)
    out[~pick_below] = rng.uniform(hi, box_side, size=m - n_below)
    return out

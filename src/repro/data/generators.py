"""Synthetic particle-dataset generators.

The paper's experiments (Sec. VI) use three families of 2D/3D data:

* coordinates distributed *uniformly* in the simulated space (Fig. 8a/9a);
* coordinates following a *Zipf distribution with order one* — heavily
  skewed, clustered data (Fig. 8b/9b);
* a *real* molecular dataset (Fig. 8c/9c), reproduced synthetically in
  :mod:`repro.data.membrane`.

All generators return a :class:`~repro.data.particles.ParticleSet` over
the unit square/cube scaled by ``box_side`` and accept a seeded
``numpy.random.Generator`` for reproducibility.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..geometry import AABB
from .particles import ParticleSet

__all__ = [
    "uniform",
    "zipf_clustered",
    "gaussian_clusters",
    "lattice",
    "random_types",
]


def _make_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _box(box_side: float, dim: int) -> AABB:
    if box_side <= 0:
        raise DatasetError(f"box_side must be positive, got {box_side}")
    return AABB.cube(box_side, dim)


def uniform(
    n: int,
    dim: int = 2,
    box_side: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> ParticleSet:
    """``n`` particles uniformly distributed in a cube of side ``box_side``.

    This is the paper's baseline "reasonable distribution" under which
    Theorem 2 (distance-calculation cost) is proved.
    """
    if n < 1:
        raise DatasetError(f"n must be >= 1, got {n}")
    rng = _make_rng(rng)
    box = _box(box_side, dim)
    positions = rng.uniform(0.0, box_side, size=(n, dim))
    return ParticleSet(positions, box)


def zipf_clustered(
    n: int,
    dim: int = 2,
    box_side: float = 1.0,
    grid: int = 16,
    exponent: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> ParticleSet:
    """Zipf-skewed data: cell occupancy follows a rank-``exponent`` law.

    The simulated space is divided into ``grid**dim`` equal cells; cell
    ranks are assigned in a random order and cell ``k`` (1-based rank)
    receives a particle with probability proportional to
    ``1 / k**exponent`` — a Zipf law of the requested order (the paper
    uses order one).  Within a cell, positions are uniform.  The result
    is strongly clustered data with many empty density-map cells, which
    is what makes DM-SDH *faster* on skewed inputs (Sec. VI-A).
    """
    if n < 1:
        raise DatasetError(f"n must be >= 1, got {n}")
    if grid < 1:
        raise DatasetError(f"grid must be >= 1, got {grid}")
    rng = _make_rng(rng)
    box = _box(box_side, dim)

    num_cells = grid**dim
    ranks = np.arange(1, num_cells + 1, dtype=float)
    weights = 1.0 / ranks**exponent
    weights /= weights.sum()
    # Random spatial placement of the ranks so the hot cells are not all
    # in one corner.
    order = rng.permutation(num_cells)
    cell_of_particle = order[
        rng.choice(num_cells, size=n, replace=True, p=weights)
    ]

    # Decode flat cell ids into per-axis indices, then jitter uniformly
    # within each cell.
    cell_side = box_side / grid
    coords = np.empty((n, dim), dtype=float)
    remaining = cell_of_particle.copy()
    for axis in range(dim):
        axis_idx = remaining % grid
        remaining //= grid
        coords[:, axis] = (axis_idx + rng.uniform(0.0, 1.0, size=n)) * cell_side
    coords = np.minimum(coords, np.nextafter(box_side, 0.0))
    return ParticleSet(coords, box)


def gaussian_clusters(
    n: int,
    dim: int = 2,
    box_side: float = 1.0,
    num_clusters: int = 8,
    spread: float = 0.05,
    rng: np.random.Generator | int | None = None,
) -> ParticleSet:
    """Particles drawn from isotropic Gaussian blobs with uniform noise.

    A second kind of skew used in the ablation benchmarks: smooth
    clusters rather than the blocky Zipf cells.  10% of particles form a
    uniform background so no region of the box is empty of data.
    """
    if n < 1:
        raise DatasetError(f"n must be >= 1, got {n}")
    if num_clusters < 1:
        raise DatasetError("need at least one cluster")
    rng = _make_rng(rng)
    box = _box(box_side, dim)

    background = max(1, n // 10)
    clustered = n - background
    centers = rng.uniform(0.2 * box_side, 0.8 * box_side, size=(num_clusters, dim))
    assignment = rng.integers(0, num_clusters, size=clustered)
    offsets = rng.normal(0.0, spread * box_side, size=(clustered, dim))
    points = centers[assignment] + offsets
    noise = rng.uniform(0.0, box_side, size=(background, dim))
    coords = np.vstack([points, noise])
    coords = np.clip(coords, 0.0, np.nextafter(box_side, 0.0))
    return ParticleSet(coords, box)


def lattice(
    per_side: int,
    dim: int = 2,
    box_side: float = 1.0,
    jitter: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> ParticleSet:
    """A regular grid of ``per_side**dim`` particles, optionally jittered.

    Regular structure produces strong peaks in the SDH/RDF, which the
    physics tests use to check that the histogram actually reflects
    inter-particle structure.
    """
    if per_side < 1:
        raise DatasetError(f"per_side must be >= 1, got {per_side}")
    box = _box(box_side, dim)
    spacing = box_side / per_side
    axes = [
        (np.arange(per_side) + 0.5) * spacing for _unused in range(dim)
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    coords = np.stack([m.ravel() for m in mesh], axis=1)
    if jitter > 0:
        rng = _make_rng(rng)
        coords = coords + rng.uniform(
            -jitter * spacing, jitter * spacing, size=coords.shape
        )
        coords = np.clip(coords, 0.0, np.nextafter(box_side, 0.0))
    return ParticleSet(coords, box)


def random_types(
    particles: ParticleSet,
    proportions: dict[str, float],
    rng: np.random.Generator | int | None = None,
) -> ParticleSet:
    """Attach random type labels with given proportions.

    ``proportions`` maps type names to relative weights (normalized
    internally).  Used to exercise the type-restricted query variety;
    the paper notes roughly 10 particle types occur in molecular
    simulations.
    """
    if not proportions:
        raise DatasetError("need at least one type")
    rng = _make_rng(rng)
    names = list(proportions)
    weights = np.asarray([proportions[name] for name in names], dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise DatasetError("type proportions must be non-negative, not all 0")
    weights /= weights.sum()
    codes = rng.choice(len(names), size=particles.size, p=weights)
    type_names = {i: name for i, name in enumerate(names)}
    return particles.with_types(codes.astype(np.int32), type_names)

"""Particle datasets: container, generators, example data, persistence.

This package supplies everything the SDH engines consume: the
:class:`~repro.data.particles.ParticleSet` container, the synthetic
workload generators matching the paper's experimental datasets
(uniform, Zipf-clustered, synthetic bilayer membrane), the exact Fig. 1
example data, file I/O, and multi-frame trajectories.
"""

from .figures import (
    FIG1_BUCKET_WIDTH,
    FIG1_COARSE_COUNTS,
    FIG1_FINE_COUNTS,
    fig1_cell,
    fig1_fine_cell,
    figure1_dataset,
    table2_expected,
)
from .generators import (
    gaussian_clusters,
    lattice,
    random_types,
    uniform,
    zipf_clustered,
)
from .io import (
    load_particles,
    load_trajectory,
    load_xyz,
    save_particles,
    save_trajectory,
    save_xyz,
)
from .membrane import MEMBRANE_TYPES, synthetic_bilayer
from .particles import ParticleSet
from .trajectory import Trajectory, random_walk_trajectory

__all__ = [
    "FIG1_BUCKET_WIDTH",
    "FIG1_COARSE_COUNTS",
    "FIG1_FINE_COUNTS",
    "MEMBRANE_TYPES",
    "ParticleSet",
    "Trajectory",
    "fig1_cell",
    "fig1_fine_cell",
    "figure1_dataset",
    "gaussian_clusters",
    "lattice",
    "load_particles",
    "load_trajectory",
    "load_xyz",
    "random_types",
    "random_walk_trajectory",
    "save_particles",
    "save_trajectory",
    "save_xyz",
    "synthetic_bilayer",
    "table2_expected",
    "uniform",
    "zipf_clustered",
]

"""The paper's worked example: Fig. 1 density maps and Table II.

Fig. 1 of the paper shows two density maps of one dataset:

* the low-resolution map (Fig. 1a) divides the space into six cells of
  side 2, labelled by row (X, Y, Z top to bottom) and column (A, B left
  to right), with particle counts::

        XA=14  XB=26
        YA= 8  YB=12
        ZA=29  ZB=15

* the high-resolution map (Fig. 1b) splits each cell into four of side
  1, labelled e.g. ``X0A0`` (sub-row 0 = upper half, sub-column 0 = left
  half), with the counts listed in :data:`FIG1_FINE_COUNTS`.

Table II lists the min/max inter-cell distance ranges between the four
``XA`` sub-cells and the four ``ZB`` sub-cells, six of which resolve
into buckets of width 3.  This module reconstructs the exact geometry so
tests and the Table II benchmark can verify the library reproduces the
paper's numbers digit for digit, and materializes a concrete particle
set realizing the published counts.
"""

from __future__ import annotations

import numpy as np

from ..geometry import AABB
from .particles import ParticleSet

__all__ = [
    "FIG1_COARSE_COUNTS",
    "FIG1_FINE_COUNTS",
    "FIG1_BUCKET_WIDTH",
    "fig1_cell",
    "fig1_fine_cell",
    "figure1_dataset",
    "table2_expected",
]

#: Coarse-map (side-2 cells) counts of Fig. 1a, keyed by row+column label.
FIG1_COARSE_COUNTS: dict[str, int] = {
    "XA": 14, "XB": 26,
    "YA": 8, "YB": 12,
    "ZA": 29, "ZB": 15,
}

#: Fine-map (side-1 cells) counts of Fig. 1b.  Key format ``<row><r><col><c>``
#: where ``r``/``c`` are the sub-row (0 = upper half) and sub-column
#: (0 = left half) indices, e.g. ``X0A0``.
FIG1_FINE_COUNTS: dict[str, int] = {
    "X0A0": 5, "X0A1": 4, "X0B0": 4, "X0B1": 0,
    "X1A0": 3, "X1A1": 2, "X1B0": 9, "X1B1": 13,
    "Y0A0": 2, "Y0A1": 2, "Y0B0": 0, "Y0B1": 5,
    "Y1A0": 3, "Y1A1": 1, "Y1B0": 4, "Y1B1": 3,
    "Z0A0": 5, "Z0A1": 3, "Z0B0": 4, "Z0B1": 1,
    "Z1A0": 9, "Z1A1": 12, "Z1B0": 3, "Z1B1": 7,
}

#: The case-study query uses buckets of width 3 ([0,3), [3,6), [6,9), ...).
FIG1_BUCKET_WIDTH: float = 3.0

# Row labels from the top of the figure downward; the coordinate system
# puts y=0 at the bottom, so row X spans y in [4, 6].
_ROW_Y = {"X": 4.0, "Y": 2.0, "Z": 0.0}
_COL_X = {"A": 0.0, "B": 2.0}


def fig1_cell(label: str) -> AABB:
    """The side-2 cell of Fig. 1a for a label like ``"XA"``."""
    row, col = label[0], label[1]
    x0 = _COL_X[col]
    y0 = _ROW_Y[row]
    return AABB((x0, y0), (x0 + 2.0, y0 + 2.0))


def fig1_fine_cell(label: str) -> AABB:
    """The side-1 cell of Fig. 1b for a label like ``"X0A0"``.

    Sub-row 0 is the *upper* half of the parent row (as drawn in the
    figure, where row indices grow downward) and sub-column 0 the left
    half.
    """
    row, sub_row, col, sub_col = label[0], int(label[1]), label[2], int(label[3])
    x0 = _COL_X[col] + sub_col * 1.0
    # sub-row 0 on top: its lower y edge is the parent's midline.
    y0 = _ROW_Y[row] + (1 - sub_row) * 1.0
    return AABB((x0, y0), (x0 + 1.0, y0 + 1.0))


def figure1_dataset(
    rng: np.random.Generator | int | None = 0,
    square_box: bool = True,
) -> ParticleSet:
    """A concrete 104-particle dataset realizing the Fig. 1b counts.

    Particles are placed uniformly at random inside their fine cells
    (seeded, so the dataset is reproducible).  ``square_box=True``
    embeds the 4x6 domain into a 6x6 square box so the dataset can be
    fed to the quadtree engines, which subdivide a square space; the
    particle coordinates are identical either way.
    """
    if isinstance(rng, np.random.Generator):
        generator = rng
    else:
        generator = np.random.default_rng(rng)

    sections = []
    for label, count in FIG1_FINE_COUNTS.items():
        if count == 0:
            continue
        cell = fig1_fine_cell(label)
        lo = np.asarray(cell.lo)
        hi = np.asarray(cell.hi)
        coords = generator.uniform(lo, hi, size=(count, 2))
        # Keep strictly inside the half-open cell.
        coords = np.minimum(coords, np.nextafter(hi, lo))
        sections.append(coords)
    positions = np.vstack(sections)

    if square_box:
        box = AABB((0.0, 0.0), (6.0, 6.0))
    else:
        box = AABB((0.0, 0.0), (4.0, 6.0))
    return ParticleSet(positions, box)


def table2_expected() -> dict[tuple[str, str], tuple[float, float, bool]]:
    """The 16 Table II entries, computed from the published geometry.

    Returns a mapping ``(xa_label, zb_label) -> (min, max, resolvable)``
    where *resolvable* means the range fits inside one width-3 bucket.
    The six resolvable entries match the ones starred in the paper, and
    the individual ranges match its radicals (e.g. ``X0A0 - Z0B0`` is
    ``[sqrt(10), sqrt(34)]``).
    """
    xa_cells = ["X0A0", "X0A1", "X1A0", "X1A1"]
    zb_cells = ["Z0B0", "Z0B1", "Z1B0", "Z1B1"]
    width = FIG1_BUCKET_WIDTH
    out: dict[tuple[str, str], tuple[float, float, bool]] = {}
    for xa in xa_cells:
        for zb in zb_cells:
            u, v = fig1_fine_cell(xa).distance_bounds(fig1_fine_cell(zb))
            resolvable = int(u // width) == int(v // width)
            out[(xa, zb)] = (u, v, resolvable)
    return out

"""Incremental SDH maintenance across simulation frames.

The paper's future work (Sec. VIII): "Simulation data are essentially
continuous snapshots (called frames) ... processing SDH separately for
each frame will take intolerably long ... Incremental solutions need to
be developed, taking advantage of the similarity between neighbouring
frames."

This module implements that extension.  When only ``k`` of ``N``
particles moved between frames, the new histogram differs from the old
one only in the distances involving moved particles:

    h_new = h_old
            - cross(moved_old, static) - intra(moved_old)
            + cross(moved_new, static) + intra(moved_new)

which costs ``O(k * N)`` distance computations instead of ``O(N^2)`` —
a win whenever ``k << N``, the regime of neighbouring frames.  All four
correction terms are chunked numpy; the result is *exact* (tests assert
integer equality with a from-scratch recomputation).
"""

from __future__ import annotations

import numpy as np

from ..core.buckets import BucketSpec, OverflowPolicy
from ..core.histogram import DistanceHistogram
from ..data.particles import ParticleSet
from ..data.trajectory import Trajectory
from ..errors import QueryError
from ..geometry import iter_cross_distance_chunks, iter_self_distance_chunks

__all__ = ["IncrementalSDH", "update_histogram", "sdh_over_trajectory"]


def update_histogram(
    histogram: DistanceHistogram,
    old_positions: np.ndarray,
    new_positions: np.ndarray,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
) -> DistanceHistogram:
    """Exact histogram for ``new_positions`` given one for ``old_positions``.

    The two coordinate arrays must describe the same particles (same
    order, same length); rows that changed are detected automatically.
    Returns a new histogram; the input is not modified.
    """
    old_positions = np.asarray(old_positions, dtype=float)
    new_positions = np.asarray(new_positions, dtype=float)
    if old_positions.shape != new_positions.shape:
        raise QueryError("frame shapes differ; not the same particle set")

    moved = np.any(old_positions != new_positions, axis=1)
    if not moved.any():
        return DistanceHistogram(histogram.spec, histogram.counts)

    spec = histogram.spec
    static = old_positions[~moved]
    out = DistanceHistogram(spec, histogram.counts)

    # Remove the moved particles' old contributions...
    _apply(out, spec, old_positions[moved], static, sign=-1.0, policy=policy)
    # ...and add their new ones.
    _apply(out, spec, new_positions[moved], static, sign=+1.0, policy=policy)
    return out


def _apply(
    histogram: DistanceHistogram,
    spec: BucketSpec,
    moved: np.ndarray,
    static: np.ndarray,
    sign: float,
    policy: OverflowPolicy,
) -> None:
    """Add/subtract cross(moved, static) + intra(moved) contributions."""
    for distances in iter_cross_distance_chunks(moved, static):
        histogram.add_counts(
            sign * spec.bin_counts_query(distances, policy=policy)
        )
    for distances in iter_self_distance_chunks(moved):
        histogram.add_counts(
            sign * spec.bin_counts_query(distances, policy=policy)
        )


class IncrementalSDH:
    """Stateful frame-to-frame SDH maintenance.

    Feed frames in order; the first frame pays a full computation (via
    the caller-provided base histogram or brute force), every following
    frame pays only for its moved particles.

    >>> inc = IncrementalSDH(spec, frame0)      # doctest: +SKIP
    >>> h1 = inc.advance(frame1)                # doctest: +SKIP
    """

    def __init__(
        self,
        spec: BucketSpec,
        initial: ParticleSet,
        base_histogram: DistanceHistogram | None = None,
        policy: OverflowPolicy = OverflowPolicy.RAISE,
    ):
        self.spec = spec
        self.policy = policy
        self._positions = initial.positions.copy()
        if base_histogram is None:
            from ..core.brute_force import brute_force_sdh

            base_histogram = brute_force_sdh(
                initial, spec=spec, policy=policy
            )
        elif base_histogram.spec != spec:
            raise QueryError("base histogram spec mismatch")
        self._histogram = DistanceHistogram(spec, base_histogram.counts)
        self.frames_processed = 1
        self.moved_total = 0

    @property
    def histogram(self) -> DistanceHistogram:
        """Histogram of the most recently ingested frame (a copy)."""
        return DistanceHistogram(self.spec, self._histogram.counts)

    def advance(self, frame: ParticleSet) -> DistanceHistogram:
        """Ingest the next frame and return its histogram."""
        new_positions = frame.positions
        if new_positions.shape != self._positions.shape:
            raise QueryError("frame shape changed mid-trajectory")
        moved = np.any(new_positions != self._positions, axis=1)
        self.moved_total += int(moved.sum())
        self._histogram = update_histogram(
            self._histogram, self._positions, new_positions,
            policy=self.policy,
        )
        self._positions = new_positions.copy()
        self.frames_processed += 1
        return self.histogram


def sdh_over_trajectory(
    trajectory: Trajectory,
    spec: BucketSpec,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
) -> list[DistanceHistogram]:
    """Histograms for every frame, maintained incrementally."""
    frames = trajectory.frames
    inc = IncrementalSDH(spec, frames[0], policy=policy)
    out = [inc.histogram]
    for frame in frames[1:]:
        out.append(inc.advance(frame))
    return out

"""Incremental SDH over trajectories (the paper's future work, Sec. VIII)."""

from .delta import IncrementalSDH, sdh_over_trajectory, update_histogram

__all__ = ["IncrementalSDH", "sdh_over_trajectory", "update_histogram"]

"""Structure factor from the radial distribution function.

The paper notes (Sec. I-A) that "for mono-atomic systems, the RDF can
also be directly related to the structure factor of the system".  The
relation (3D, isotropic) is the Fourier sine transform

    S(q) = 1 + 4 pi rho / q * integral r (g(r) - 1) sin(q r) dr

and in 2D the Hankel transform of order zero,

    S(q) = 1 + 2 pi rho * integral r (g(r) - 1) J0(q r) dr.

Both are evaluated by direct quadrature over the sampled g(r) bins —
adequate for the bin counts SDH queries produce, and dependency-free
(the 2D Bessel ``J0`` uses a series/asymptotic evaluation, so scipy is
optional).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import QueryError
from .rdf import RadialDistributionFunction

__all__ = ["structure_factor"]


def structure_factor(
    rdf: RadialDistributionFunction,
    q: np.ndarray,
) -> np.ndarray:
    """Evaluate S(q) at the requested wavenumbers.

    ``rdf`` should extend to a radius where g(r) has decayed toward 1;
    the integral is truncated at the last sampled bin (standard
    practice for finite systems).
    """
    q = np.asarray(q, dtype=float)
    if np.any(q <= 0):
        raise QueryError("wavenumbers must be positive")
    r = rdf.r
    if r.size < 2:
        raise QueryError("RDF too short for a structure factor")
    h = rdf.g - 1.0
    rho = rdf.density

    if rdf.dim == 3:
        integrand = r[None, :] * h[None, :] * np.sin(q[:, None] * r[None, :])
        integral = np.trapezoid(integrand, r, axis=1)
        return 1.0 + 4.0 * math.pi * rho / q * integral

    integrand = r[None, :] * h[None, :] * _bessel_j0(q[:, None] * r[None, :])
    integral = np.trapezoid(integrand, r, axis=1)
    return 1.0 + 2.0 * math.pi * rho * integral


def _bessel_j0(x: np.ndarray) -> np.ndarray:
    """Bessel function of the first kind, order zero.

    Power series for ``|x| < 12`` (converges to double precision there)
    and the standard large-argument asymptotic expansion beyond — the
    classic Abramowitz & Stegun split, accurate to ~1e-8 which is far
    below histogram noise.
    """
    x = np.abs(np.asarray(x, dtype=float))
    out = np.empty_like(x)

    small = x < 12.0
    if small.any():
        xs = x[small]
        term = np.ones_like(xs)
        total = np.ones_like(xs)
        quarter = (xs / 2.0) ** 2
        for k in range(1, 40):
            term = term * (-quarter) / (k * k)
            total += term
        out[small] = total

    large = ~small
    if large.any():
        xl = x[large]
        # J0(x) ~ sqrt(2/(pi x)) [P(x) cos(x - pi/4) - Q(x) sin(x - pi/4)]
        inv = 1.0 / (8.0 * xl)
        p = 1.0 - 4.5 * inv**2
        qq = -inv * (1.0 - 37.5 * inv**2)
        phase = xl - math.pi / 4.0
        out[large] = np.sqrt(2.0 / (math.pi * xl)) * (
            p * np.cos(phase) - qq * np.sin(phase)
        )
    return out

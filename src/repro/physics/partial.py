"""Partial radial distribution functions g_ab(r).

Multi-component systems (the paper's membrane has heads, tails, water,
ions) are characterized by *partial* RDFs: one g_ab(r) per pair of
particle types, each normalized so an uncorrelated mixture gives
``g_ab ~ 1``.  The SDH layer already answers the type-restricted
histograms (Sec. III-C.3 second variety); this module runs the full
matrix and normalizes every entry with the same exact finite-box (or
periodic) ideal-gas expectation as :func:`rdf_from_histogram`.
"""

from __future__ import annotations

import numpy as np

from ..core.buckets import BucketSpec
from ..core.histogram import DistanceHistogram
from ..core.query import compute_sdh
from ..data.particles import ParticleSet
from ..errors import DatasetError, QueryError
from .rdf import RadialDistributionFunction, _box_distance_cdf_diffs

__all__ = ["partial_rdfs"]


def partial_rdfs(
    particles: ParticleSet,
    spec: BucketSpec | None = None,
    num_buckets: int | None = None,
    periodic: bool = False,
    finite_size: str | None = None,
) -> dict[tuple[str, str], RadialDistributionFunction]:
    """All partial g_ab(r) of a typed particle set.

    Returns a dict keyed by ``(name_a, name_b)`` with ``name_a <=
    name_b``; the diagonal entries are the same-type RDFs.  Histograms
    come from the exact DM-SDH engine (cross pairs via the
    ``h(AxB) = h(AuB) - h(A) - h(B)`` identity); the normalization uses
    the exact box distance distribution, so uncorrelated components sit
    at ``g = 1`` across the whole range.

    Parameters mirror :func:`repro.core.query.compute_sdh`;
    ``finite_size`` defaults to ``"periodic"`` / ``"corrected"``
    matching the metric.
    """
    if particles.types is None:
        raise DatasetError("partial RDFs need a typed particle set")
    if finite_size is None:
        finite_size = "periodic" if periodic else "corrected"
    if finite_size not in ("periodic", "corrected"):
        raise QueryError(
            "finite_size must be 'periodic' or 'corrected' for partial "
            "RDFs"
        )

    names = _type_names(particles)
    volume = particles.box.volume

    # The per-bucket ideal-gas fraction is type-independent; compute
    # the (relatively expensive) quadrature once.
    probe = compute_sdh(
        particles,
        spec=spec,
        num_buckets=num_buckets,
        type_filter=names[0],
        periodic=periodic,
    )
    resolved_spec = probe.spec
    fractions = _box_distance_cdf_diffs(
        particles.box.sides,
        resolved_spec.edges,
        periodic=(finite_size == "periodic"),
    )
    centers = (resolved_spec.edges[:-1] + resolved_spec.edges[1:]) / 2.0

    out: dict[tuple[str, str], RadialDistributionFunction] = {}
    for i, name_a in enumerate(names):
        for name_b in names[i:]:
            if name_a == name_b:
                if name_a == names[0]:
                    histogram = probe
                else:
                    histogram = compute_sdh(
                        particles,
                        spec=resolved_spec,
                        type_filter=name_a,
                        periodic=periodic,
                    )
                n_a = particles.type_count(name_a)
                num_pairs = n_a * (n_a - 1) / 2.0
                partner_density = n_a / volume
            else:
                histogram = compute_sdh(
                    particles,
                    spec=resolved_spec,
                    type_pair=(name_a, name_b),
                    periodic=periodic,
                )
                n_a = particles.type_count(name_a)
                n_b = particles.type_count(name_b)
                num_pairs = float(n_a * n_b)
                partner_density = n_b / volume
            out[(name_a, name_b)] = _normalize(
                histogram,
                fractions,
                centers,
                num_pairs,
                partner_density,
                particles,
            )
    return out


def _type_names(particles: ParticleSet) -> list[str]:
    codes = sorted(int(c) for c in np.unique(particles.types))
    table = particles.type_names
    return [table.get(code, str(code)) for code in codes]


def _normalize(
    histogram: DistanceHistogram,
    fractions: np.ndarray,
    centers: np.ndarray,
    num_pairs: float,
    partner_density: float,
    particles: ParticleSet,
) -> RadialDistributionFunction:
    expected = num_pairs * fractions
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(expected > 0, histogram.counts / expected, 0.0)
    return RadialDistributionFunction(
        r=centers,
        g=g,
        edges=np.asarray(histogram.spec.edges, dtype=float),
        density=partner_density,
        num_particles=particles.size,
        dim=particles.dim,
    )

"""Radial distribution functions from distance histograms.

The paper's motivation (Sec. I-A): the SDH is a direct estimator of the
radial distribution function

    g(r) = <N(r)> / (4 pi r^2 dr rho)                        (Eq. 1)

where ``N(r)`` is the number of atoms in the shell ``[r, r + dr)``
around a particle, ``rho`` the mean particle density, and
``4 pi r^2 dr`` the shell volume — "the RDF can be viewed as a
normalized SDH".  This module performs exactly that normalization, for
3D (spherical shells) and 2D (annuli, ``2 pi r dr``), turning any
:class:`~repro.core.histogram.DistanceHistogram` — exact or
approximate — into a g(r) curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.histogram import DistanceHistogram
from ..data.particles import ParticleSet
from ..errors import QueryError

__all__ = ["RadialDistributionFunction", "rdf_from_histogram"]


@dataclass(frozen=True)
class RadialDistributionFunction:
    """A sampled g(r): bin edges/centers, values, provenance metadata."""

    r: np.ndarray
    g: np.ndarray
    edges: np.ndarray
    density: float
    num_particles: int
    dim: int

    def first_peak(self) -> tuple[float, float]:
        """Location and height of the first local maximum of g(r).

        The first RDF peak marks the nearest-neighbour shell; its
        presence distinguishes structured systems (lattices, liquids)
        from ideal gases, which the physics tests exploit.
        """
        if self.g.size == 0:
            raise QueryError("empty RDF")
        idx = int(np.argmax(self.g))
        return float(self.r[idx]), float(self.g[idx])

    def coordination_number(self, r_cut: float) -> float:
        """Average number of neighbours within ``r_cut``.

        Sums ``rho * g_i * shell_volume_i`` over the bins below the
        cutoff, with the exact shell volume between each bin's edges
        (partial last shell included), so an ideal gas recovers
        ``rho * V_ball(r_cut)`` exactly up to histogram noise.
        """
        lo = self.edges[:-1]
        hi = np.minimum(self.edges[1:], r_cut)
        live = hi > lo
        if not live.any():
            return 0.0
        if self.dim == 3:
            shell = 4.0 / 3.0 * math.pi * (hi[live] ** 3 - lo[live] ** 3)
        else:
            shell = math.pi * (hi[live] ** 2 - lo[live] ** 2)
        return float((self.density * self.g[live] * shell).sum())

    def truncated(self, r_max: float) -> "RadialDistributionFunction":
        """The RDF restricted to bins entirely below ``r_max``.

        Bins near the box diagonal carry almost no ideal-gas mass, so
        their g values are dominated by noise; integral transforms
        (structure factor, thermodynamics) should work on a truncated
        curve.
        """
        keep = self.edges[1:] <= r_max
        if not keep.any():
            raise QueryError(f"no bins below r_max={r_max}")
        stop = int(np.flatnonzero(keep)[-1]) + 1
        return RadialDistributionFunction(
            r=self.r[:stop],
            g=self.g[:stop],
            edges=self.edges[: stop + 1],
            density=self.density,
            num_particles=self.num_particles,
            dim=self.dim,
        )

    def __len__(self) -> int:
        return self.r.size


def rdf_from_histogram(
    histogram: DistanceHistogram,
    particles: ParticleSet,
    finite_size: str = "corrected",
) -> RadialDistributionFunction:
    """Normalize an SDH into g(r) per the paper's Eq. (1).

    Each bucket's pair count is divided by the ideal-gas expectation
    for its shell.  Two normalizations are offered:

    * ``"corrected"`` (default) — the *exact* finite-box ideal-gas
      expectation: the distance distribution of two uniform points in
      the simulation box (per-axis triangular laws, evaluated by a
      deterministic quadrature).  Uncorrelated data gives ``g(r) ~ 1``
      over the whole distance range; this is the right choice for the
      non-periodic configurations the SDH counts pairs in.
    * ``"shell"`` — the textbook Eq.-(1) normalization by the raw shell
      volume ``4 pi r^2 dr`` (3D) / ``2 pi r dr`` (2D).  For a finite
      non-periodic box, g(r) then decays at large r because part of
      each shell falls outside the box — the standard finite-size
      artefact, reproduced faithfully.
    * ``"periodic"`` — for histograms computed with ``periodic=True``
      (minimum-image distances): the exact ideal-gas expectation on the
      torus, whose per-axis coordinate-difference law is uniform on
      ``[0, L/2]``.  Identical to ``"shell"`` for ``r`` below half the
      shortest box side, exact beyond it.
    """
    n = particles.size
    volume = particles.box.volume
    if volume <= 0:
        raise QueryError("particle box has zero volume")
    rho = n / volume
    edges = histogram.spec.edges
    dim = particles.dim
    num_pairs = n * (n - 1) / 2.0

    if finite_size == "corrected":
        fractions = _box_distance_cdf_diffs(particles.box.sides, edges)
        expected = num_pairs * fractions
    elif finite_size == "periodic":
        fractions = _box_distance_cdf_diffs(
            particles.box.sides, edges, periodic=True
        )
        expected = num_pairs * fractions
    elif finite_size == "shell":
        if dim == 3:
            shell = (
                4.0 / 3.0 * math.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
            )
        else:
            shell = math.pi * (edges[1:] ** 2 - edges[:-1] ** 2)
        # Each of the N particles sees rho * shell neighbours; pairs
        # are counted once, hence the factor N/2.
        expected = (n / 2.0) * rho * shell
    else:
        raise QueryError(
            f"finite_size must be 'corrected', 'periodic' or 'shell', "
            f"got {finite_size!r}"
        )

    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(expected > 0, histogram.counts / expected, 0.0)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return RadialDistributionFunction(
        r=centers,
        g=g,
        edges=np.asarray(edges, dtype=float),
        density=rho,
        num_particles=n,
        dim=dim,
    )


#: Memo of computed bucket probabilities.  The quadrature depends only
#: on (box sides, bucket edges, metric); a long-running query service
#: answering many RDF requests over the same datasets pays it once.
_CDF_CACHE: dict[tuple, np.ndarray] = {}
_CDF_CACHE_MAX = 64


def _box_distance_cdf_diffs(
    sides: tuple[float, ...],
    edges: np.ndarray,
    periodic: bool = False,
) -> np.ndarray:
    """P(D in bucket) for the distance D of two uniform box points.

    The per-axis coordinate difference ``|x1 - x2|`` follows the
    triangular law ``f(t) = 2 (L - t) / L^2`` independently per axis —
    or, on the torus (``periodic``), the uniform law on ``[0, L/2]`` —
    and the bucket probabilities are obtained by quadrature over a fine
    per-axis grid (deterministic, ~1e-4 accurate with the default
    resolution, far below histogram noise).

    The 3D grid has 512^3 points; to keep the evaluation fast it is
    binned in *squared* distance (``d <= e`` iff ``d^2 <= e^2``, both
    sides non-negative, so no sqrt over the grid is needed) and in
    memory-bounded chunks rather than one giant broadcast.
    """
    edges = np.asarray(edges, dtype=float)
    cache_key = (tuple(sides), edges.tobytes(), periodic)
    cached = _CDF_CACHE.get(cache_key)
    if cached is not None:
        return cached.copy()
    resolution = 512 if len(sides) == 3 else 2048
    axes_t = []
    axes_w = []
    for length in sides:
        if periodic:
            half = length / 2.0
            t = (np.arange(resolution) + 0.5) * (half / resolution)
            w = np.full(resolution, 1.0 / resolution)
        else:
            t = (np.arange(resolution) + 0.5) * (length / resolution)
            w = 2.0 * (length - t) / length**2 * (length / resolution)
        axes_t.append(t)
        axes_w.append(w)
    if len(sides) == 2:
        sq = (axes_t[0][:, None] ** 2 + axes_t[1][None, :] ** 2).ravel()
        wq = (axes_w[0][:, None] * axes_w[1][None, :]).ravel()
        last_sq = np.empty(0)
        last_w = np.empty(0)
    else:
        # Collapse the first two axes, then chunk against the third.
        sq = (axes_t[0][:, None] ** 2 + axes_t[1][None, :] ** 2).ravel()
        wq = (axes_w[0][:, None] * axes_w[1][None, :]).ravel()
        last_sq = axes_t[2] ** 2
        last_w = axes_w[2]
    edges_sq = edges**2
    result = np.zeros(edges.size - 1)
    chunk = max(1, (4 << 20) // resolution)
    for start in range(0, sq.size, chunk):
        if last_sq.size:
            s = (sq[start : start + chunk, None] + last_sq[None, :]).ravel()
            weight = (
                wq[start : start + chunk, None] * last_w[None, :]
            ).ravel()
        else:
            s = sq[start : start + chunk]
            weight = wq[start : start + chunk]
        idx = np.clip(
            np.searchsorted(edges_sq, s, side="right") - 1,
            0,
            edges.size - 2,
        )
        # Distances beyond the last edge (none for a spec covering the
        # diagonal) are dropped to match OverflowPolicy-free binning.
        in_range = s <= edges_sq[-1]
        result += np.bincount(
            idx[in_range],
            weights=weight[in_range],
            minlength=edges.size - 1,
        )
    if len(_CDF_CACHE) >= _CDF_CACHE_MAX:
        _CDF_CACHE.clear()
    _CDF_CACHE[cache_key] = result
    return result.copy()

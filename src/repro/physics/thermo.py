"""Thermodynamic quantities from g(r).

The paper motivates SDH by noting that "some of the important
quantities like total pressure, and energy cannot be calculated without
g(r)" (Sec. I-A).  For a pairwise-additive potential ``u(r)`` the
standard statistical-mechanics expressions are

* excess internal energy per particle::

      U_ex / N = (rho / 2) * integral u(r) g(r) dV(r)

* pressure via the virial equation::

      P = rho k T - (rho^2 / (2 d)) * integral r u'(r) g(r) dV(r)

with ``dV = 4 pi r^2 dr`` in 3D and ``2 pi r dr`` in 2D.  This module
evaluates both by quadrature over a sampled RDF, plus the
Lennard-Jones potential the tests and examples use.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..errors import QueryError
from .rdf import RadialDistributionFunction

__all__ = [
    "lennard_jones",
    "lennard_jones_derivative",
    "excess_internal_energy",
    "virial_pressure",
]


def lennard_jones(
    r: np.ndarray, epsilon: float = 1.0, sigma: float = 1.0
) -> np.ndarray:
    """The 12-6 Lennard-Jones pair potential ``4e[(s/r)^12 - (s/r)^6]``."""
    r = np.asarray(r, dtype=float)
    if np.any(r <= 0):
        raise QueryError("LJ potential diverges at r <= 0")
    sr6 = (sigma / r) ** 6
    return 4.0 * epsilon * (sr6 * sr6 - sr6)


def lennard_jones_derivative(
    r: np.ndarray, epsilon: float = 1.0, sigma: float = 1.0
) -> np.ndarray:
    """d/dr of the Lennard-Jones potential."""
    r = np.asarray(r, dtype=float)
    if np.any(r <= 0):
        raise QueryError("LJ potential diverges at r <= 0")
    sr6 = (sigma / r) ** 6
    return 4.0 * epsilon * (-12.0 * sr6 * sr6 + 6.0 * sr6) / r


def _shell_measure(rdf: RadialDistributionFunction) -> np.ndarray:
    if rdf.dim == 3:
        return 4.0 * math.pi * rdf.r**2
    return 2.0 * math.pi * rdf.r


def excess_internal_energy(
    rdf: RadialDistributionFunction,
    potential: Callable[[np.ndarray], np.ndarray] = lennard_jones,
    r_min: float | None = None,
) -> float:
    """Per-particle excess energy ``(rho/2) * int u(r) g(r) dV``.

    ``r_min`` truncates the integral from below (histogram bins at tiny
    ``r`` carry huge potential values with near-zero pair counts; the
    default skips empty leading bins automatically).
    """
    r, g = _clipped(rdf, r_min)
    u = potential(r)
    integrand = u * g * _shell_measure_at(rdf.dim, r)
    return float(rdf.density / 2.0 * np.trapezoid(integrand, r))


def virial_pressure(
    rdf: RadialDistributionFunction,
    temperature: float = 1.0,
    potential_derivative: Callable[
        [np.ndarray], np.ndarray
    ] = lennard_jones_derivative,
    r_min: float | None = None,
) -> float:
    """Virial pressure ``rho k T - rho^2/(2 d) * int r u'(r) g(r) dV``.

    Units: ``k_B = 1`` (reduced units, the molecular-simulation
    convention).
    """
    if temperature < 0:
        raise QueryError("temperature must be non-negative")
    r, g = _clipped(rdf, r_min)
    du = potential_derivative(r)
    integrand = r * du * g * _shell_measure_at(rdf.dim, r)
    correction = (
        rdf.density**2 / (2.0 * rdf.dim) * np.trapezoid(integrand, r)
    )
    return float(rdf.density * temperature - correction)


def _shell_measure_at(dim: int, r: np.ndarray) -> np.ndarray:
    if dim == 3:
        return 4.0 * math.pi * r**2
    return 2.0 * math.pi * r


def _clipped(
    rdf: RadialDistributionFunction, r_min: float | None
) -> tuple[np.ndarray, np.ndarray]:
    """Drop leading bins (r == 0 or empty) that break the integrands."""
    r = rdf.r
    g = rdf.g
    if r_min is None:
        occupied = np.flatnonzero(g > 0)
        if occupied.size == 0:
            raise QueryError("RDF is identically zero")
        start = occupied[0]
    else:
        start = int(np.searchsorted(r, r_min, side="left"))
    r = r[start:]
    g = g[start:]
    if r.size < 2:
        raise QueryError("not enough RDF bins above r_min")
    return r, g

"""The analytics the paper's SDH query feeds: RDF, S(q), thermodynamics.

Sec. I-A of the paper motivates the SDH as "the main building block of
a series of critical quantities": this package implements those
quantities on top of any :class:`~repro.core.histogram.DistanceHistogram`.
"""

from .partial import partial_rdfs
from .rdf import RadialDistributionFunction, rdf_from_histogram
from .structure import structure_factor
from .thermo import (
    excess_internal_energy,
    lennard_jones,
    lennard_jones_derivative,
    virial_pressure,
)

__all__ = [
    "RadialDistributionFunction",
    "excess_internal_energy",
    "lennard_jones",
    "lennard_jones_derivative",
    "partial_rdfs",
    "rdf_from_histogram",
    "structure_factor",
    "virial_pressure",
]

"""Dependency-free metrics: counters, gauges, histograms with labels.

A small, thread-safe subset of the Prometheus client-library data model
(stdlib only, like the rest of the service layer):

* :class:`MetricsRegistry` owns a namespace of metrics and renders them
  in the Prometheus text exposition format (``GET /metrics``);
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` are the three
  instrument kinds, each optionally split by a fixed set of label names
  (``counter.labels(engine="grid").inc()``);
* :meth:`MetricsRegistry.add_collector` registers scrape-time callbacks
  so state that already keeps its own counters (the plan cache, the
  query executor) is folded into the exposition without double
  bookkeeping.

Instruments are created idempotently: asking a registry twice for the
same name returns the same object (with a type/label-compatibility
check), so modules can declare their metrics at call sites without
import-order coordination.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "render_prometheus",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets, in seconds — tuned for query phases that
#: range from sub-millisecond leaf scans to multi-second pyramid builds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class MetricSample:
    """One already-materialized metric family for scrape-time collectors.

    ``values`` maps a label dict (or None for an unlabelled metric) to a
    number; ``kind`` is ``"counter"`` or ``"gauge"``.
    """

    __slots__ = ("name", "kind", "help", "values")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        values: Sequence[tuple[Mapping[str, str] | None, float]],
    ):
        if kind not in ("counter", "gauge"):
            raise ValueError(f"collector samples must be counter/gauge, got {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.values = list(values)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_labels(labels: Mapping[str, str] | None, extra: str = "") -> str:
    parts = []
    if labels:
        parts.extend(
            f'{key}="{_escape_label_value(str(value))}"'
            for key, value in labels.items()
        )
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared machinery: a family of children keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labelvalues: object):
        """The child instrument for one combination of label values."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled by {self.labelnames}; "
                "call .labels(...) first"
            )
        return self.labels()

    def _new_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _child_items(self) -> list[tuple[dict[str, str] | None, object]]:
        with self._lock:
            items = list(self._children.items())
        rows = []
        for key, child in items:
            labels = dict(zip(self.labelnames, key)) if self.labelnames else None
            rows.append((labels, child))
        return rows


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Metric):
    """A monotonically increasing count (rendered with a ``_total`` name
    left to the caller — pass the full metric name)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def render(self) -> Iterable[str]:
        for labels, child in self._child_items():
            yield f"{self.name}{_format_labels(labels)} {_format_value(child.value)}"


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Metric):
    """A value that can go up and down (live segments, in-flight work)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def render(self) -> Iterable[str]:
        for labels, child in self._child_items():
            yield f"{self.name}{_format_labels(labels)} {_format_value(child.value)}"


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]):
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            # Buckets store per-interval counts; render() cumulates.
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[i] += 1
                    break

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "buckets": dict(zip(self._bounds, self._counts)),
                "sum": self._sum,
                "count": self._count,
            }


class Histogram(_Metric):
    """Cumulative-bucket distribution (Prometheus ``le`` convention)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds != sorted(set(bounds)):
            raise ValueError("histogram bucket bounds must be distinct")
        if not math.isinf(bounds[-1]):
            bounds.append(math.inf)
        self.buckets = tuple(bounds)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def snapshot(self) -> dict:
        return self._default_child().snapshot()

    def render(self) -> Iterable[str]:
        for labels, child in self._child_items():
            snap = child.snapshot()
            cumulative = 0
            for bound in self.buckets:
                cumulative += snap["buckets"][bound]
                le = _format_labels(labels, f'le="{_format_value(bound)}"')
                yield f"{self.name}_bucket{le} {cumulative}"
            plain = _format_labels(labels)
            yield f"{self.name}_sum{plain} {_format_value(snap['sum'])}"
            yield f"{self.name}_count{plain} {snap['count']}"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A namespace of metrics plus scrape-time collectors.

    Instrument getters are idempotent per name; a kind or label mismatch
    on re-declaration raises, so two modules cannot silently share a
    name with different meanings.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[[], Iterable[MetricSample]]] = []

    # -- declaration ---------------------------------------------------
    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames, buckets=buckets)

    def _declare(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, labelnames, **kwargs)
                return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        if metric.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}, requested {tuple(labelnames)}"
            )
        return metric

    def get(self, name: str) -> _Metric | None:
        """The metric registered under ``name``, or None."""
        with self._lock:
            return self._metrics.get(name)

    def add_collector(
        self, collector: Callable[[], Iterable[MetricSample]]
    ) -> None:
        """Register a scrape-time callback producing :class:`MetricSample`s."""
        with self._lock:
            self._collectors.append(collector)

    def remove_collector(
        self, collector: Callable[[], Iterable[MetricSample]]
    ) -> None:
        """Drop a previously registered collector (idempotent)."""
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    # -- exposition ----------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition of every metric + collector."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
            collectors = list(self._collectors)
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        for collector in collectors:
            for sample in collector():
                if sample.help:
                    lines.append(f"# HELP {sample.name} {sample.help}")
                lines.append(f"# TYPE {sample.name} {sample.kind}")
                for labels, value in sample.values:
                    lines.append(
                        f"{sample.name}{_format_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """A JSON-ready dump: metric name -> {labels-tuple: value}."""
        with self._lock:
            metrics = list(self._metrics.values())
        body: dict[str, dict] = {}
        for metric in metrics:
            entry: dict[str, object] = {}
            for labels, child in metric._child_items():
                key = (
                    ",".join(f"{k}={v}" for k, v in labels.items())
                    if labels
                    else ""
                )
                if isinstance(metric, Histogram):
                    entry[key] = child.snapshot()
                else:
                    entry[key] = child.value
            body[metric.name] = entry
        return body


def render_prometheus(registry: MetricsRegistry) -> str:
    """Module-level alias of :meth:`MetricsRegistry.render`."""
    return registry.render()

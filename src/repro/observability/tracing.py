"""Trace IDs and per-phase wall-clock spans.

A *trace ID* names one logical request end to end: the HTTP server
binds one per request (honouring an ``X-Trace-Id`` header when the
client sends one), the executor propagates it onto worker threads, and
every structured log record emitted underneath carries it — so one grep
reconstructs a request's whole phase timeline.

A *span* times one phase (pyramid build, per-level resolution, a
parallel shard) with :func:`time.perf_counter`, records the duration
into the ``sdh_phase_seconds`` histogram of a
:class:`~repro.observability.metrics.MetricsRegistry`, and emits one
structured log event::

    with trace_span("plan_build", particles=data.size):
        pyramid = GridPyramid(data)

Spans nest naturally (each is independent) and cost one clock read plus
one histogram observe when logging is disabled.
"""

from __future__ import annotations

import contextvars
import logging
import secrets
import time
from contextlib import contextmanager
from typing import Iterator

from .logs import get_logger, log_event

__all__ = [
    "Span",
    "bind_trace_id",
    "current_trace_id",
    "new_trace_id",
    "trace_span",
]

_trace_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)

#: Metric receiving every span duration, labelled by phase name.
PHASE_METRIC = "sdh_phase_seconds"

_span_logger = get_logger("trace")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID."""
    return secrets.token_hex(8)


def current_trace_id() -> str | None:
    """The trace ID bound to the current context, if any."""
    return _trace_id.get()


@contextmanager
def bind_trace_id(trace_id: str | None = None) -> Iterator[str]:
    """Bind a trace ID for the duration of the block (generating one
    when None); restores the previous binding on exit."""
    if trace_id is None:
        trace_id = new_trace_id()
    token = _trace_id.set(trace_id)
    try:
        yield trace_id
    finally:
        _trace_id.reset(token)


class Span:
    """The handle yielded by :func:`trace_span`.

    ``duration`` is populated on exit (and live-readable inside the
    block as elapsed-so-far); ``annotate`` attaches extra fields to the
    completion event.
    """

    __slots__ = ("name", "fields", "trace_id", "_started", "duration", "error")

    def __init__(self, name: str, fields: dict, trace_id: str | None):
        self.name = name
        self.fields = fields
        self.trace_id = trace_id
        self._started = time.perf_counter()
        self.duration: float = 0.0
        self.error: str | None = None

    def elapsed(self) -> float:
        """Seconds since the span started."""
        return time.perf_counter() - self._started

    def annotate(self, **fields: object) -> None:
        """Attach fields to the span's completion log event."""
        self.fields.update(fields)


@contextmanager
def trace_span(
    name: str,
    registry: "object | None" = None,
    logger: logging.Logger | None = None,
    level: int = logging.INFO,
    **fields: object,
) -> Iterator[Span]:
    """Time one phase; record it as a metric and a structured log event.

    Parameters
    ----------
    name:
        Phase name — becomes the ``phase`` label of
        ``sdh_phase_seconds`` and the ``event`` field of the log record.
    registry:
        Metrics registry; the package default when None.
    logger / level:
        Where the completion event goes (``repro.trace`` at INFO by
        default).  Failures inside the block are logged at ERROR with
        the exception type attached, and re-raised.
    fields:
        Extra structured fields (engine name, particle count, ...).
    """
    if registry is None:
        from . import get_registry

        registry = get_registry()
    span = Span(name, dict(fields), current_trace_id())
    try:
        yield span
    except BaseException as exc:
        span.error = type(exc).__name__
        raise
    finally:
        span.duration = span.elapsed()
        registry.histogram(
            PHASE_METRIC,
            "Wall-clock seconds spent per engine/service phase.",
            ("phase",),
        ).labels(phase=name).observe(span.duration)
        log = logger if logger is not None else _span_logger
        event_level = logging.ERROR if span.error else level
        if log.isEnabledFor(event_level):
            extra = dict(span.fields)
            extra["phase"] = name
            extra["duration_seconds"] = round(span.duration, 9)
            if span.error:
                extra["error"] = span.error
            log_event(log, event_level, f"span:{name}", **extra)

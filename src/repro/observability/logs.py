"""Structured (JSON-capable) logging for the repro library.

Everything logs under the ``repro.*`` logger hierarchy and carries its
structured payload in ``record.fields`` (a dict), never interpolated
into the message — so the same records render as human-readable lines
or as one-JSON-object-per-line depending on the configured formatter:

* :func:`configure_logging` — installs a stream handler on the
  ``repro`` root logger (idempotent; reconfiguring replaces it), either
  human-readable or JSON (``repro-sdh --log-json``);
* :func:`get_logger` — a namespaced child logger;
* :func:`log_event` — emit one structured event with arbitrary fields.

The JSON lines look like::

    {"ts": 1722950000.123, "level": "info", "logger": "repro.trace",
     "event": "span:plan_build", "trace_id": "a1b2...",
     "phase": "plan_build", "duration_seconds": 0.1834}

The active trace ID (:func:`repro.observability.tracing.current_trace_id`)
is stamped onto every record at emit time, in both output modes.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

__all__ = [
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
]

ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a dotted child (``get_logger("service")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: Any
) -> None:
    """Emit one structured event; ``fields`` ride on ``record.fields``."""
    logger.log(level, event, extra={"fields": fields})


def _record_fields(record: logging.LogRecord) -> dict:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, dict) else {}


def _record_trace_id(record: logging.LogRecord) -> str | None:
    # Imported lazily: tracing imports this module for its logger.
    from .tracing import current_trace_id

    fields = _record_fields(record)
    return fields.get("trace_id") or current_trace_id()


class JsonFormatter(logging.Formatter):
    """One JSON object per line; structured fields merged at top level."""

    def format(self, record: logging.LogRecord) -> str:
        body: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        trace_id = _record_trace_id(record)
        if trace_id:
            body["trace_id"] = trace_id
        for key, value in _record_fields(record).items():
            if key not in body:
                body[key] = _jsonable(value)
        if record.exc_info:
            body["exception"] = self.formatException(record.exc_info)
        return json.dumps(body, default=str)


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS level logger event key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        parts = [
            f"{stamp} {record.levelname.lower():<7} "
            f"{record.name} {record.getMessage()}"
        ]
        trace_id = _record_trace_id(record)
        if trace_id:
            parts.append(f"trace_id={trace_id}")
        parts.extend(
            f"{key}={_jsonable(value)}"
            for key, value in _record_fields(record).items()
        )
        line = " ".join(parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def configure_logging(
    level: int | str = "warning",
    json_output: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; returns the root.

    Idempotent: calling again replaces the previously installed handler
    (so tests and REPL sessions can reconfigure freely).  Records do not
    propagate to the Python root logger, keeping library output from
    colliding with application logging setups.
    """
    if isinstance(level, str):
        try:
            level = _LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; "
                f"choose from {sorted(_LEVELS)}"
            ) from None
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_installed", False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_installed = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonFormatter() if json_output else HumanFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root

"""Observability: metrics, trace spans, and structured logging.

Dependency-free (stdlib only) instrumentation shared by every layer of
the stack — see ``docs/OBSERVABILITY.md`` for the full metric and
logging reference:

* :mod:`~repro.observability.metrics` — a thread-safe
  :class:`MetricsRegistry` of counters, gauges, and histograms with
  labels, rendered in the Prometheus text format (the service exposes
  it at ``GET /metrics``);
* :mod:`~repro.observability.tracing` — :func:`trace_span` wall-clock
  phase timing plus request-scoped trace IDs carried on a contextvar;
* :mod:`~repro.observability.logs` — structured logging setup with a
  JSON formatter (``repro-sdh <cmd> --log-json``).

The module-level default registry (:func:`get_registry`) is what the
library records into when callers don't pass their own; it accumulates
for the lifetime of the process, exactly like a Prometheus client
registry.
"""

from __future__ import annotations

from .logs import JsonFormatter, configure_logging, get_logger, log_event
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    render_prometheus,
)
from .tracing import (
    Span,
    bind_trace_id,
    current_trace_id,
    new_trace_id,
    trace_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricSample",
    "MetricsRegistry",
    "Span",
    "bind_trace_id",
    "configure_logging",
    "current_trace_id",
    "get_logger",
    "get_registry",
    "log_event",
    "new_trace_id",
    "render_prometheus",
    "set_registry",
    "trace_span",
]

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous

"""The paper's analytical model: covering factors and cost equations.

Sec. IV of the paper analyzes DM-SDH through the *covering factor*: the
fraction of cell-pair (equivalently, under reasonable data
distributions, particle-pair) mass resolved after visiting ``m``
density-map levels below the start map ``DM_1``.  Its complement, the
*non-covering factor* ``alpha(m)``, obeys Lemma 1::

    lim_{p -> 0} alpha(m + 1) / alpha(m) = 1/2

which drives both the ``Theta(N^{(2d-1)/d})`` runtime of the exact
algorithm (Theorems 1-3) and the error bound of the approximate one
(Sec. V: visiting ``m ~ log2(1/epsilon)`` levels leaves less than an
``epsilon`` fraction of distances unresolved).

This module provides:

* :data:`PAPER_TABLE3` — the paper's published Table III (computed by
  the authors with Mathematica 6.0), used as the production model for
  :func:`choose_levels_for_error`;
* :func:`covering_factor_model` — an independent numerical recomputation
  of the covering factor from first principles (simulating the pure
  cell-pair geometry on an idealized density-map hierarchy), used by the
  Table III benchmark to validate the published numbers;
* the cost equations (3)-(5) and the complexity exponents.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import QueryError

__all__ = [
    "PAPER_TABLE3",
    "TABLE3_BUCKET_COUNTS",
    "non_covering_factor",
    "covering_factor",
    "choose_levels_for_budget",
    "choose_levels_for_error",
    "covering_factor_model",
    "dm_sdh_exponent",
    "geometric_progression_cost",
    "approximate_cost",
    "lemma1_ratios",
]

#: Bucket counts (columns) of the paper's Table III.
TABLE3_BUCKET_COUNTS: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256)

#: The paper's Table III: expected percentage of cell pairs resolvable
#: after visiting m levels (rows m = 1..10) for each total bucket count
#: (columns).  Values are percentages, verbatim from the paper.
PAPER_TABLE3: dict[int, tuple[float, ...]] = {
    1: (50.6565, 52.1591, 52.5131, 52.5969, 52.6167, 52.6214, 52.6225, 52.6227),
    2: (74.8985, 75.9917, 76.2390, 76.2951, 76.3078, 76.3106, 76.3112, 76.3114),
    3: (87.3542, 87.9794, 88.1171, 88.1473, 88.1539, 88.1553, 88.1556, 88.1557),
    4: (93.6550, 93.9863, 94.0582, 94.0737, 94.0770, 94.0777, 94.0778, 94.0778),
    5: (96.8222, 96.9924, 97.0290, 97.0369, 97.0385, 97.0388, 97.0389, 97.0389),
    6: (98.4098, 98.4960, 98.5145, 98.5184, 98.5193, 98.5194, 98.5195, 98.5195),
    7: (99.2046, 99.2480, 99.2572, 99.2592, 99.2596, 99.2597, 99.2597, 99.2597),
    8: (99.6022, 99.6240, 99.6286, 99.6296, 99.6298, 99.6299, 99.6299, 99.6299),
    9: (99.8011, 99.8120, 99.8143, 99.8148, 99.8149, 99.8149, 99.8149, 99.8149),
    10: (99.9005, 99.9060, 99.9072, 99.9074, 99.9075, 99.9075, 99.9075, 99.9075),
}


def _column_for(num_buckets: int) -> int:
    """Index of the Table III column to use for a bucket count.

    The table's values converge rapidly in ``l``; the nearest column
    with ``l' >= l`` is used (clamped at 256, since the values are flat
    there to all published digits).
    """
    for idx, l in enumerate(TABLE3_BUCKET_COUNTS):
        if num_buckets <= l:
            return idx
    return len(TABLE3_BUCKET_COUNTS) - 1


def covering_factor(m: int, num_buckets: int = 256) -> float:
    """Published covering factor ``1 - alpha(m)`` as a fraction in [0, 1].

    For ``m`` beyond the table's 10 rows, ``alpha`` is extrapolated by
    Lemma 1's halving.  ``m = 0`` returns 0 (nothing below the start map
    has been visited yet).
    """
    if m < 0:
        raise QueryError(f"m must be >= 0, got {m}")
    if m == 0:
        return 0.0
    column = _column_for(num_buckets)
    max_m = max(PAPER_TABLE3)
    if m <= max_m:
        return PAPER_TABLE3[m][column] / 100.0
    alpha_last = 1.0 - PAPER_TABLE3[max_m][column] / 100.0
    return 1.0 - alpha_last * 0.5 ** (m - max_m)


def non_covering_factor(m: int, num_buckets: int = 256) -> float:
    """Published non-covering factor ``alpha(m)`` as a fraction."""
    return 1.0 - covering_factor(m, num_buckets)


def choose_levels_for_error(
    error_bound: float,
    num_buckets: int = 256,
    dim: int = 2,
) -> int:
    """Smallest ``m`` with ``alpha(m) <= error_bound``.

    This is the Sec.-V procedure: "given a user-specified error bound
    epsilon, we can find the appropriate levels of density maps to
    visit" by consulting Table III.  The paper's 3D analysis also obeys
    Lemma 1, so the same table (a slightly conservative stand-in, since
    the paper gives no 3D table) is used for ``dim == 3``; the
    rule-of-thumb ``m = log2(1/epsilon)`` is the same in both cases.
    """
    if not 0 < error_bound < 1:
        raise QueryError(
            f"error_bound must be in (0, 1), got {error_bound}"
        )
    if dim not in (2, 3):
        raise QueryError(f"dim must be 2 or 3, got {dim}")
    m = 1
    # Lemma 1 guarantees alpha shrinks geometrically, so this terminates.
    while non_covering_factor(m, num_buckets) > error_bound:
        m += 1
    return m


# ----------------------------------------------------------------------
# Cost equations (Sec. IV-A and Sec. V)
# ----------------------------------------------------------------------
def dm_sdh_exponent(dim: int) -> float:
    """The exponent of Theorem 3: DM-SDH runs in Theta(N^{(2d-1)/d}).

    1.5 for 2D data, 5/3 for 3D.
    """
    if dim not in (2, 3):
        raise QueryError(f"dim must be 2 or 3, got {dim}")
    return (2 * dim - 1) / dim


def geometric_progression_cost(
    start_pairs: float, levels: int, dim: int
) -> float:
    """Equation (3): total cell-resolution operations.

    ``T_c = I * (2^{(2d-1)(n+1)} - 1) / (2^{2d-1} - 1)`` where ``I`` is
    the number of cell pairs on the start map and ``n`` the number of
    density maps visited below it.
    """
    if levels < 0:
        raise QueryError(f"levels must be >= 0, got {levels}")
    base = 2 ** (2 * dim - 1)
    return start_pairs * (base ** (levels + 1) - 1) / (base - 1)


def approximate_cost(
    start_pairs: float,
    error_bound: float | None = None,
    levels: int | None = None,
    dim: int = 2,
) -> float:
    """Equation (5): ADM-SDH cost, independent of the dataset size.

    ``T(N) ~ I * 2^{(2d-1) m} = I * (1/epsilon)^{2d-1}`` with
    ``m = log2(1/epsilon)``.  Provide either ``levels`` (m) or
    ``error_bound`` (epsilon).
    """
    if (levels is None) == (error_bound is None):
        raise QueryError("provide exactly one of levels / error_bound")
    if levels is None:
        assert error_bound is not None
        if not 0 < error_bound < 1:
            raise QueryError("error_bound must be in (0, 1)")
        levels = math.log2(1.0 / error_bound)
    return start_pairs * 2.0 ** ((2 * dim - 1) * levels)


def choose_levels_for_budget(
    start_pairs: float, budget: float, dim: int = 2
) -> int:
    """Deepest ``m`` whose Eq.-(3) resolution cost fits the budget.

    The anytime knob: given an operation budget (cell-resolution calls
    the caller is willing to spend), invert the geometric-progression
    cost model to find how many density-map levels ADM-SDH can afford
    to visit.  Returns 0 when even the start map alone exceeds the
    budget (the engine still answers, distributing everything
    heuristically after one map).
    """
    if start_pairs < 0 or budget <= 0:
        raise QueryError("start_pairs must be >= 0 and budget positive")
    if dim not in (2, 3):
        raise QueryError(f"dim must be 2 or 3, got {dim}")
    m = 0
    while (
        geometric_progression_cost(start_pairs, m + 1, dim) <= budget
        and m < 64
    ):
        m += 1
    return m


def lemma1_ratios(alphas: list[float] | np.ndarray) -> np.ndarray:
    """Successive ratios ``alpha(m+1) / alpha(m)`` (Lemma 1 says -> 1/2)."""
    arr = np.asarray(alphas, dtype=float)
    if arr.size < 2:
        return np.empty(0)
    with np.errstate(divide="ignore", invalid="ignore"):
        return arr[1:] / arr[:-1]


# ----------------------------------------------------------------------
# Independent numerical recomputation of the covering factor
# ----------------------------------------------------------------------
def covering_factor_model(
    m: int,
    num_buckets: int,
    dim: int = 2,
    samples: int = 64,
    rng: np.random.Generator | int | None = 0,
    max_tracked_pairs: int = 50_000_000,
) -> float:
    """Recompute the covering factor from the cell-pair geometry.

    The model simulates exactly what DM-SDH's resolution phase does, on
    an idealized hierarchy where the start map ``DM_1`` has cell
    diagonal exactly equal to the bucket width ``p`` (the theoretical
    setting of Sec. IV):

    * a reference start-map cell ``A`` is fixed; a level-``m`` sub-cell
      ``a`` of ``A`` is chosen (averaged over ``samples`` draws — the
      published table is the expectation over all sub-cells);
    * every start-map cell ``B`` whose distance range from ``A`` lies
      within the histogram (``v <= l*p``) starts one pair ``(A, B)``;
    * pairs resolve when their min/max distance bounds share a bucket;
      unresolved pairs split into the ``2^d`` children of the ``B`` side
      (the ``a`` side follows the fixed sub-cell's ancestor path), each
      child carrying ``2^-d`` of the parent's mass;
    * the covering factor after ``m`` levels is the resolved mass
      fraction.

    For 2D this reproduces the paper's Table III to within ~2 points at
    m=1 and well under 1 point from m=3 on (the residual difference is
    the boundary convention: the paper integrates idealized region
    areas, we count actual cells), and the Lemma-1 halving of the
    non-covering factor emerges exactly.  For 3D — where the paper
    reports only that numerical results obey Lemma 1 — it supplies
    those numbers.

    Labeling note: matching the published rows requires counting ``m``
    from one subdivision round below the idealized diagonal-equals-p
    map (on that map itself no pair can resolve, because every pair's
    min/max distance window is wider than a bucket).  The function
    follows the paper's labeling, so ``covering_factor_model(m, l)``
    is directly comparable with ``PAPER_TABLE3[m]``.
    """
    if m < 0:
        raise QueryError(f"m must be >= 0, got {m}")
    if dim not in (2, 3):
        raise QueryError(f"dim must be 2 or 3, got {dim}")
    if num_buckets < 1:
        raise QueryError("num_buckets must be >= 1")
    if m == 0:
        return 0.0
    if isinstance(rng, np.random.Generator):
        generator = rng
    else:
        generator = np.random.default_rng(rng)

    # Paper row m == m+1 subdivision rounds below the diag==p map (see
    # the labeling note in the docstring).
    m = m + 1

    # Work in units of the level-m cell side.  The start cell has side
    # 2^m and diagonal p, so p = sqrt(d) * 2^m in these units.
    scale = 1 << m
    p = math.sqrt(dim) * scale
    high = num_buckets * p

    # Start-map cells B within range: offsets (in start-map cells) whose
    # max distance to A stays within the histogram.
    reach = int(math.ceil(num_buckets * math.sqrt(dim))) + 1
    axes = [np.arange(-reach, reach + 1)] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    offsets0 = np.stack([g.ravel() for g in mesh], axis=1)  # start cells
    # v for start-map pairs (cell side = scale in fine units).
    span0 = (np.abs(offsets0) + 1) * float(scale)
    v0 = np.sqrt(np.einsum("ij,ij->i", span0, span0))
    in_scope = v0 <= high * (1 + 1e-12)
    offsets0 = offsets0[in_scope]
    # Drop the intra-cell pair (A, A): handled by the bucket-0 shortcut,
    # not by RESOLVETWOCELLS.
    keep = np.any(offsets0 != 0, axis=1)
    offsets0 = offsets0[keep]
    denom = float(offsets0.shape[0])
    if denom == 0:
        return 1.0

    resolved_mass = 0.0
    for _ in range(samples):
        # The fixed sub-cell a, in fine units within A = [0, scale)^d.
        a_fine = generator.integers(0, scale, size=dim)
        resolved_mass += _fixed_subcell_run(
            a_fine, offsets0 * scale, m, dim, p, num_buckets,
            max_tracked_pairs,
        )
    return resolved_mass / (samples * denom)


def _fixed_subcell_run(
    a_fine: np.ndarray,
    b_fine0: np.ndarray,
    m: int,
    dim: int,
    p: float,
    num_buckets: int,
    max_tracked_pairs: int,
) -> float:
    """Resolved mass (in start-map pair units) for one fixed sub-cell.

    ``b_fine0``: start-map B cells, lower corners in fine units.
    The B side refines by 2x per level; the a side follows the ancestors
    of ``a_fine``.
    """
    resolved = 0.0
    b_cells = b_fine0  # lower corners, fine units
    for level in range(0, m + 1):
        side = 1 << (m - level)  # cell side in fine units at this level
        a_lo = (a_fine // side) * side
        diff = np.abs(b_cells - a_lo)
        gap = np.maximum(diff - side, 0).astype(float)
        span = (diff + side).astype(float)
        u = np.sqrt(np.einsum("ij,ij->i", gap, gap))
        v = np.sqrt(np.einsum("ij,ij->i", span, span))
        bu = np.floor(u / p).astype(np.int64)
        bv = np.floor(v / p).astype(np.int64)
        # Closed last bucket: v == l*p belongs to bucket l-1.
        bv[np.isclose(v, num_buckets * p, rtol=1e-12, atol=0)] = (
            num_buckets - 1
        )
        res = bu == bv
        # Mass units: each level-`level` pair carries 2^{-d*level} of a
        # start-map pair.
        resolved += float(res.sum()) / (2 ** (dim * level))
        if level == m:
            break
        survivors = b_cells[~res]
        if survivors.shape[0] == 0:
            break
        child_side = side // 2
        shifts = _child_shifts(dim) * child_side
        b_cells = (
            survivors[:, None, :] + shifts[None, :, :]
        ).reshape(-1, dim)
        if b_cells.shape[0] > max_tracked_pairs:
            raise QueryError(
                f"covering-factor model would track {b_cells.shape[0]} "
                f"pairs (> {max_tracked_pairs}); reduce m or num_buckets"
            )
    return resolved


def _child_shifts(dim: int) -> np.ndarray:
    """The 2^d child-corner offsets in units of the child cell side."""
    shifts = np.zeros((2**dim, dim), dtype=np.int64)
    for code in range(2**dim):
        for axis in range(dim):
            shifts[code, axis] = (code >> axis) & 1
    return shifts

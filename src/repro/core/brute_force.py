"""The quadratic baseline: compute every pairwise distance.

This is the "current solution" the paper improves on — "calculate
distances between all pairs of particles and put the distances into
bins" (Sec. I-A) — and the ``Dist`` curves of Figs. 8 and 9.  The
implementation is blocked numpy, so it is a fair (actually generous)
baseline for the pure-Python engines; its operation count is exactly
``N(N-1)/2`` distance computations regardless.
"""

from __future__ import annotations

import numpy as np

from ..data.particles import ParticleSet
from ..geometry import AABB, iter_cross_distance_chunks, iter_self_distance_chunks
from ..kernels import fast_uniform_width, get_backend
from .buckets import BucketSpec, OverflowPolicy, UniformBuckets
from .histogram import DistanceHistogram
from .instrumentation import SDHStats

__all__ = ["brute_force_sdh", "brute_force_cross_sdh"]


def brute_force_sdh(
    particles: ParticleSet | np.ndarray,
    spec: BucketSpec | None = None,
    bucket_width: float | None = None,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    chunk: int = 2048,
    stats: SDHStats | None = None,
    periodic: bool = False,
    kernel: str = "auto",
) -> DistanceHistogram:
    """SDH of one particle set by exhaustive distance computation.

    Parameters
    ----------
    particles:
        A :class:`ParticleSet` or a raw ``(N, d)`` coordinate array.
    spec:
        Bucket specification.  When omitted, ``bucket_width`` must be
        given and the standard query's buckets are derived: equal width,
        covering ``[0, diagonal of the box]``.
    bucket_width:
        Width ``p`` for the derived standard buckets.
    policy:
        Overflow policy for distances beyond the last edge.
    chunk:
        Block size for the chunked distance sweep.
    stats:
        Optional counter object; receives the distance-computation count.
    periodic:
        Measure distances under the minimum-image convention over the
        particle set's box (requires a :class:`ParticleSet` input).
    kernel:
        Leaf-resolution backend tier (see :mod:`repro.kernels`):
        ``"auto"`` picks the fastest available, ``"numpy"`` / ``"numba"``
        pin a tier.  All tiers produce bit-identical histograms.
    """
    box_lengths = None
    if isinstance(particles, ParticleSet):
        positions = particles.positions
        if periodic:
            max_distance = particles.max_periodic_distance
            box_lengths = np.asarray(particles.box.sides)
        else:
            max_distance = particles.max_possible_distance
    else:
        if periodic:
            raise ValueError("periodic SDH needs a ParticleSet with a box")
        positions = np.asarray(particles, dtype=float)
        max_distance = None
    spec = _derive_spec(spec, bucket_width, max_distance, positions)
    backend = get_backend(kernel)

    fast_width = None
    if positions.shape[0] > 1:
        reach = max_distance
        if reach is None:
            reach = AABB.of_points(positions).diagonal
        fast_width = fast_uniform_width(spec, reach)

    histogram = DistanceHistogram(spec)
    if fast_width is not None:
        hist, computed = backend.bin_dense_self(
            positions, fast_width, spec.num_buckets, box_lengths, chunk=chunk
        )
        histogram.counts += hist
    else:
        computed = 0
        for distances in iter_self_distance_chunks(
            positions, chunk=chunk, box_lengths=box_lengths
        ):
            histogram.add_counts(
                spec.bin_counts_query(distances, policy=policy)
            )
            computed += distances.size
    if stats is not None:
        stats.distance_computations += computed
    return histogram


def brute_force_cross_sdh(
    a: ParticleSet | np.ndarray,
    b: ParticleSet | np.ndarray,
    spec: BucketSpec,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    chunk: int = 2048,
    stats: SDHStats | None = None,
    periodic: bool = False,
    kernel: str = "auto",
) -> DistanceHistogram:
    """Histogram of all cross distances between two particle sets.

    Used by the type-restricted query baseline (distances between, say,
    every carbon and every oxygen atom) and by tests of the engines'
    cross-cell arithmetic.  ``periodic`` applies the minimum-image
    convention over ``a``'s box (both sets must share it).  ``kernel``
    selects the leaf-resolution backend tier (see :mod:`repro.kernels`).
    """
    box_lengths = None
    if periodic:
        if not isinstance(a, ParticleSet):
            raise ValueError("periodic SDH needs ParticleSets with a box")
        box_lengths = np.asarray(a.box.sides)
    pos_a = a.positions if isinstance(a, ParticleSet) else np.asarray(a, float)
    pos_b = b.positions if isinstance(b, ParticleSet) else np.asarray(b, float)
    backend = get_backend(kernel)

    fast_width = None
    if pos_a.shape[0] and pos_b.shape[0]:
        if periodic:
            reach = a.max_periodic_distance
        else:
            reach = AABB.of_points(np.vstack((pos_a, pos_b))).diagonal
        fast_width = fast_uniform_width(spec, reach)

    histogram = DistanceHistogram(spec)
    if fast_width is not None:
        hist, computed = backend.bin_dense_cross(
            pos_a, pos_b, fast_width, spec.num_buckets, box_lengths,
            chunk=chunk,
        )
        histogram.counts += hist
    else:
        computed = 0
        for distances in iter_cross_distance_chunks(
            pos_a, pos_b, chunk=chunk, box_lengths=box_lengths
        ):
            histogram.add_counts(
                spec.bin_counts_query(distances, policy=policy)
            )
            computed += distances.size
    if stats is not None:
        stats.distance_computations += computed
    return histogram


def _derive_spec(
    spec: BucketSpec | None,
    bucket_width: float | None,
    max_distance: float | None,
    positions: np.ndarray,
) -> BucketSpec:
    """Resolve the (spec, bucket_width) calling convention."""
    if spec is not None:
        return spec
    if bucket_width is None:
        raise ValueError("provide either spec or bucket_width")
    if max_distance is None:
        from ..geometry import AABB

        max_distance = AABB.of_points(positions).diagonal
        if max_distance <= 0:
            max_distance = bucket_width
    return UniformBuckets.cover(max_distance, bucket_width)

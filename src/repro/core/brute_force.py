"""The quadratic baseline: compute every pairwise distance.

This is the "current solution" the paper improves on — "calculate
distances between all pairs of particles and put the distances into
bins" (Sec. I-A) — and the ``Dist`` curves of Figs. 8 and 9.  The
implementation is blocked numpy, so it is a fair (actually generous)
baseline for the pure-Python engines; its operation count is exactly
``N(N-1)/2`` distance computations regardless.
"""

from __future__ import annotations

import numpy as np

from ..data.particles import ParticleSet
from ..geometry import AABB, iter_cross_distance_chunks, iter_self_distance_chunks
from ..geometry.distance import minimum_image
from ..kernels import exact, fast_uniform_width, get_backend
from .buckets import BucketSpec, OverflowPolicy, UniformBuckets
from .histogram import DistanceHistogram
from .instrumentation import SDHStats
from .weighted import WeightedAccumulator

__all__ = ["brute_force_sdh", "brute_force_cross_sdh"]


def brute_force_sdh(
    particles: ParticleSet | np.ndarray,
    spec: BucketSpec | None = None,
    bucket_width: float | None = None,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    chunk: int = 2048,
    stats: SDHStats | None = None,
    periodic: bool = False,
    kernel: str = "auto",
) -> DistanceHistogram:
    """SDH of one particle set by exhaustive distance computation.

    Parameters
    ----------
    particles:
        A :class:`ParticleSet` or a raw ``(N, d)`` coordinate array.
    spec:
        Bucket specification.  When omitted, ``bucket_width`` must be
        given and the standard query's buckets are derived: equal width,
        covering ``[0, diagonal of the box]``.
    bucket_width:
        Width ``p`` for the derived standard buckets.
    policy:
        Overflow policy for distances beyond the last edge.
    chunk:
        Block size for the chunked distance sweep.
    stats:
        Optional counter object; receives the distance-computation count.
    periodic:
        Measure distances under the minimum-image convention over the
        particle set's box (requires a :class:`ParticleSet` input).
    kernel:
        Leaf-resolution backend tier (see :mod:`repro.kernels`):
        ``"auto"`` picks the fastest available, ``"numpy"`` / ``"numba"``
        pin a tier.  All tiers produce bit-identical histograms.
    """
    box_lengths = None
    if isinstance(particles, ParticleSet):
        positions = particles.positions
        if periodic:
            max_distance = particles.max_periodic_distance
            box_lengths = np.asarray(particles.box.sides)
        else:
            max_distance = particles.max_possible_distance
    else:
        if periodic:
            raise ValueError("periodic SDH needs a ParticleSet with a box")
        positions = np.asarray(particles, dtype=float)
        max_distance = None
    spec = _derive_spec(spec, bucket_width, max_distance, positions)
    backend = get_backend(kernel)

    fast_width = None
    if positions.shape[0] > 1:
        reach = max_distance
        if reach is None:
            reach = AABB.of_points(positions).diagonal
        fast_width = fast_uniform_width(spec, reach)

    weights = (
        particles.weights if isinstance(particles, ParticleSet) else None
    )
    histogram = DistanceHistogram(spec)
    if weights is not None:
        accum = WeightedAccumulator(spec, policy)
        if fast_width is not None:
            limbs, computed = backend.bin_dense_self_weighted(
                positions, weights, fast_width, spec.num_buckets,
                box_lengths, chunk=chunk,
            )
            accum.add_limbs(limbs, computed)
        else:
            computed = _slow_weighted_self(
                positions, weights, accum, box_lengths, chunk
            )
        accum.finalize_into(histogram)
    elif fast_width is not None:
        hist, computed = backend.bin_dense_self(
            positions, fast_width, spec.num_buckets, box_lengths, chunk=chunk
        )
        histogram.counts += hist
    else:
        computed = 0
        for distances in iter_self_distance_chunks(
            positions, chunk=chunk, box_lengths=box_lengths
        ):
            histogram.add_counts(
                spec.bin_counts_query(distances, policy=policy)
            )
            computed += distances.size
    if stats is not None:
        stats.distance_computations += computed
    return histogram


def brute_force_cross_sdh(
    a: ParticleSet | np.ndarray,
    b: ParticleSet | np.ndarray,
    spec: BucketSpec,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    chunk: int = 2048,
    stats: SDHStats | None = None,
    periodic: bool = False,
    kernel: str = "auto",
) -> DistanceHistogram:
    """Histogram of all cross distances between two particle sets.

    Used by the type-restricted query baseline (distances between, say,
    every carbon and every oxygen atom) and by tests of the engines'
    cross-cell arithmetic.  ``periodic`` applies the minimum-image
    convention over ``a``'s box (both sets must share it).  ``kernel``
    selects the leaf-resolution backend tier (see :mod:`repro.kernels`).
    """
    box_lengths = None
    if periodic:
        if not isinstance(a, ParticleSet):
            raise ValueError("periodic SDH needs ParticleSets with a box")
        box_lengths = np.asarray(a.box.sides)
    pos_a = a.positions if isinstance(a, ParticleSet) else np.asarray(a, float)
    pos_b = b.positions if isinstance(b, ParticleSet) else np.asarray(b, float)
    backend = get_backend(kernel)

    fast_width = None
    if pos_a.shape[0] and pos_b.shape[0]:
        if periodic:
            reach = a.max_periodic_distance
        else:
            reach = AABB.of_points(np.vstack((pos_a, pos_b))).diagonal
        fast_width = fast_uniform_width(spec, reach)

    weights_a = a.weights if isinstance(a, ParticleSet) else None
    weights_b = b.weights if isinstance(b, ParticleSet) else None
    weighted = weights_a is not None or weights_b is not None
    histogram = DistanceHistogram(spec)
    if weighted:
        if weights_a is None:
            weights_a = np.ones(pos_a.shape[0])
        if weights_b is None:
            weights_b = np.ones(pos_b.shape[0])
        accum = WeightedAccumulator(spec, policy)
        if fast_width is not None:
            limbs, computed = backend.bin_dense_cross_weighted(
                pos_a, pos_b, weights_a, weights_b, fast_width,
                spec.num_buckets, box_lengths, chunk=chunk,
            )
            accum.add_limbs(limbs, computed)
        else:
            computed = _slow_weighted_cross(
                pos_a, pos_b, weights_a, weights_b, accum, box_lengths,
                chunk,
            )
        accum.finalize_into(histogram)
    elif fast_width is not None:
        hist, computed = backend.bin_dense_cross(
            pos_a, pos_b, fast_width, spec.num_buckets, box_lengths,
            chunk=chunk,
        )
        histogram.counts += hist
    else:
        computed = 0
        for distances in iter_cross_distance_chunks(
            pos_a, pos_b, chunk=chunk, box_lengths=box_lengths
        ):
            histogram.add_counts(
                spec.bin_counts_query(distances, policy=policy)
            )
            computed += distances.size
    if stats is not None:
        stats.distance_computations += computed
    return histogram


def _slow_weighted_self(
    positions: np.ndarray,
    weights: np.ndarray,
    accum: WeightedAccumulator,
    box_lengths: np.ndarray | None,
    chunk: int,
) -> int:
    """Weighted self sweep for kernel-ineligible bucket specs.

    Enumerates the same blocked pair order (and the identical distance
    op-sequence) as the kernels, but bins through ``spec.bucket_of`` so
    custom buckets, ``low > 0`` and the overflow policy behave exactly
    like the unweighted ``bin_counts_query`` path.
    """
    positions = np.asarray(positions, dtype=float)
    w_ints = exact.weight_ints(weights)
    n, dim = positions.shape
    computed = 0
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = positions[start:stop]
        m = stop - start
        if m >= 2:
            iu, ju = np.triu_indices(m, k=1)
            delta = block[iu] - block[ju]
            if box_lengths is not None:
                delta = minimum_image(delta, box_lengths)
            distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            accum.bin_products(
                distances, w_ints[start + iu], w_ints[start + ju]
            )
            computed += distances.size
        for rstart in range(stop, n, chunk):
            rstop = min(rstart + chunk, n)
            delta = (
                block[:, None, :] - positions[rstart:rstop][None, :, :]
            ).reshape(-1, dim)
            if box_lengths is not None:
                delta = minimum_image(delta, box_lengths)
            distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            ia = np.repeat(np.arange(start, stop), rstop - rstart)
            ib = np.tile(np.arange(rstart, rstop), m)
            accum.bin_products(distances, w_ints[ia], w_ints[ib])
            computed += distances.size
    return computed


def _slow_weighted_cross(
    pos_a: np.ndarray,
    pos_b: np.ndarray,
    weights_a: np.ndarray,
    weights_b: np.ndarray,
    accum: WeightedAccumulator,
    box_lengths: np.ndarray | None,
    chunk: int,
) -> int:
    """Weighted cross sweep for kernel-ineligible bucket specs."""
    pos_a = np.asarray(pos_a, dtype=float)
    pos_b = np.asarray(pos_b, dtype=float)
    wa_ints = exact.weight_ints(weights_a)
    wb_ints = exact.weight_ints(weights_b)
    computed = 0
    for astart in range(0, pos_a.shape[0], chunk):
        astop = min(astart + chunk, pos_a.shape[0])
        ablock = pos_a[astart:astop]
        for bstart in range(0, pos_b.shape[0], chunk):
            bstop = min(bstart + chunk, pos_b.shape[0])
            delta = (
                ablock[:, None, :] - pos_b[bstart:bstop][None, :, :]
            ).reshape(-1, pos_a.shape[1])
            if box_lengths is not None:
                delta = minimum_image(delta, box_lengths)
            distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            ia = np.repeat(np.arange(astart, astop), bstop - bstart)
            ib = np.tile(np.arange(bstart, bstop), astop - astart)
            accum.bin_products(distances, wa_ints[ia], wb_ints[ib])
            computed += distances.size
    return computed


def _derive_spec(
    spec: BucketSpec | None,
    bucket_width: float | None,
    max_distance: float | None,
    positions: np.ndarray,
) -> BucketSpec:
    """Resolve the (spec, bucket_width) calling convention."""
    if spec is not None:
        return spec
    if bucket_width is None:
        raise ValueError("provide either spec or bucket_width")
    if max_distance is None:
        from ..geometry import AABB

        max_distance = AABB.of_points(positions).diagonal
        if max_distance <= 0:
            max_distance = bucket_width
    return UniformBuckets.cover(max_distance, bucket_width)

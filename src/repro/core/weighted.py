"""Shared exact accumulation state for weighted SDH engines.

Every engine that supports per-particle weights (brute, tree, grid)
funnels its weighted contributions through a :class:`WeightedAccumulator`
so that the whole query is one exact integer computation (see
:mod:`repro.kernels.exact`):

* resolved cell pairs add products of exact cell weight sums;
* kernel leaf batches add their limb arrays;
* slow-path leaf batches (custom buckets, ``low > 0``) add per-pair
  products keyed by :meth:`~repro.core.buckets.BucketSpec.bucket_of`
  indices, honouring the overflow policy exactly like
  :meth:`~repro.core.buckets.BucketSpec.bin_counts_query`;
* :meth:`finalize_into` rounds each bucket total once, so the result is
  the correctly-rounded double of the exact real sum regardless of
  which engine (or kernel tier, or chunking) produced it.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistanceOverflowError
from ..kernels import exact
from .buckets import BucketSpec, OverflowPolicy
from .histogram import DistanceHistogram

__all__ = ["WeightedAccumulator"]


class WeightedAccumulator:
    """Exact per-bucket integer sums of pair-weight products."""

    def __init__(self, spec: BucketSpec, policy: OverflowPolicy):
        self.spec = spec
        self.policy = policy
        #: Arbitrary-precision bucket totals (engine-level resolution).
        self.buckets = exact.zero_ints(spec.num_buckets)
        #: Fixed-width limb totals (kernel-level batches), merged into
        #: :attr:`buckets` once at finalization.
        self._limbs = exact.new_limbs(spec.num_buckets)
        self._pending = 0

    # ------------------------------------------------------------------
    def add_mass(self, bucket: int, mass: int) -> None:
        """Add one exact product-scale integer to a bucket."""
        self.buckets[bucket] += mass

    def add_resolved(self, bucket_idx: np.ndarray, masses: np.ndarray) -> None:
        """Add a batch of resolved-pair masses (object-int array)."""
        if bucket_idx.size:
            np.add.at(self.buckets, bucket_idx, masses)

    def add_limbs(self, limbs: np.ndarray, pairs: int) -> None:
        """Merge one kernel batch's limb array (exact integer addition)."""
        self._limbs += limbs
        self._pending += max(int(pairs), 1)
        if self._pending >= exact.SCATTER_LIMIT:
            exact.normalize_limbs(self._limbs)
            self._pending = 0

    def add_overflow(self, mass: int, pairs: int) -> None:
        """A batch of pairs entirely above the last edge, per policy."""
        if self.policy is OverflowPolicy.RAISE:
            raise DistanceOverflowError(
                f"{pairs} weighted pair(s) above {self.spec.high}"
            )
        if self.policy is OverflowPolicy.CLAMP:
            self.buckets[self.spec.num_buckets - 1] += mass
        # DROP: nothing to do.

    def bin_products(
        self,
        distances: np.ndarray,
        mass_a: np.ndarray,
        mass_b: np.ndarray,
    ) -> None:
        """Slow-path binning of realized distances with exact products.

        ``mass_a`` / ``mass_b`` are object-int weight arrays aligned
        with ``distances``.  Below-range distances are dropped (the
        query convention of ``bin_counts_query``); above-range ones
        follow the overflow policy.
        """
        idx = self.spec.bucket_of(distances)
        num = self.spec.num_buckets
        high = idx >= num
        if high.any():
            if self.policy is OverflowPolicy.RAISE:
                bad = np.asarray(distances)[high]
                raise DistanceOverflowError(
                    f"{bad.size} distance(s) above {self.spec.high}, "
                    f"e.g. {bad.flat[0]!r}"
                )
            if self.policy is OverflowPolicy.CLAMP:
                idx = np.where(high, num - 1, idx)
            else:  # DROP
                keep = ~high
                idx, mass_a, mass_b = idx[keep], mass_a[keep], mass_b[keep]
        keep = idx >= 0
        if not keep.all():
            idx, mass_a, mass_b = idx[keep], mass_a[keep], mass_b[keep]
        if idx.size:
            np.add.at(self.buckets, idx, mass_a * mass_b)

    # ------------------------------------------------------------------
    def totals(self) -> np.ndarray:
        """Exact product-scale integer total per bucket (object array)."""
        return self.buckets + exact.limbs_to_ints(self._limbs)

    def finalize_into(self, histogram: DistanceHistogram) -> DistanceHistogram:
        """Overwrite a histogram's counts with the rounded exact totals."""
        histogram.counts[:] = exact.finalize(self.totals())
        return histogram

"""Run statistics collected by the SDH engines.

The paper's complexity analysis (Sec. IV) counts two operations:

1. *resolving two cells* (line 0 of ``RESOLVETWOCELLS``) — constant time
   each, ``Theta(N^{(2d-1)/d})`` in total (Theorem 1);
2. *distance calculations* for cells unresolved on the finest map —
   also ``Theta(N^{(2d-1)/d})`` (Theorem 2).

:class:`SDHStats` counts both, per density-map level, so tests and
benchmarks can verify the theorems (and Lemma 1's halving of the
non-covering factor) directly from operation counts — a machine- and
implementation-independent complement to wall-clock measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SDHStats", "publish_stats"]


@dataclass
class SDHStats:
    """Operation counters for one SDH computation.

    Per-level dictionaries are keyed by tree level (0 = coarsest map).
    """

    #: Level DM-SDH started on (Fig. 2 line 2), None when brute force.
    start_level: int | None = None
    #: Cell pairs examined per level (calls to RESOLVETWOCELLS).
    resolve_calls: dict[int, int] = field(default_factory=dict)
    #: Cell pairs that resolved per level.
    resolved_pairs: dict[int, int] = field(default_factory=dict)
    #: Particle pair-distances credited via cell resolution, per level.
    resolved_distances: dict[int, float] = field(default_factory=dict)
    #: Point-to-point distances actually computed.
    distance_computations: int = 0
    #: Pair-distances handed to an approximation heuristic (ADM-SDH).
    approximated_distances: float = 0.0
    #: Cell pairs handed to an approximation heuristic (ADM-SDH).
    approximated_pairs: int = 0
    #: Number of density-map levels visited (start level included).
    levels_visited: int = 0

    # ------------------------------------------------------------------
    def record_batch(
        self,
        level: int,
        examined: int,
        resolved: int,
        resolved_distances: float,
    ) -> None:
        """Accumulate one batch of resolution attempts at a level."""
        self.resolve_calls[level] = self.resolve_calls.get(level, 0) + examined
        self.resolved_pairs[level] = (
            self.resolved_pairs.get(level, 0) + resolved
        )
        self.resolved_distances[level] = (
            self.resolved_distances.get(level, 0.0) + resolved_distances
        )

    def merge(self, other: "SDHStats") -> "SDHStats":
        """Fold another run's counters into this one (returns self).

        Used by the parallel engine: each worker accumulates stats for
        its shard of the frontier, and the parent merges them so the
        totals equal what a single-process run would have recorded.
        Counters are sums; ``start_level`` keeps the first known value
        and ``levels_visited`` the maximum (workers each descend the
        same level range, not disjoint ones).
        """
        if self.start_level is None:
            self.start_level = other.start_level
        for level, examined in other.resolve_calls.items():
            self.resolve_calls[level] = (
                self.resolve_calls.get(level, 0) + examined
            )
        for level, resolved in other.resolved_pairs.items():
            self.resolved_pairs[level] = (
                self.resolved_pairs.get(level, 0) + resolved
            )
        for level, distances in other.resolved_distances.items():
            self.resolved_distances[level] = (
                self.resolved_distances.get(level, 0.0) + distances
            )
        self.distance_computations += other.distance_computations
        self.approximated_distances += other.approximated_distances
        self.approximated_pairs += other.approximated_pairs
        self.levels_visited = max(self.levels_visited, other.levels_visited)
        return self

    @property
    def total_resolve_calls(self) -> int:
        """Operation-1 count: all cell-pair resolution attempts."""
        return sum(self.resolve_calls.values())

    @property
    def total_resolved_pairs(self) -> int:
        """Cell pairs that resolved, across levels."""
        return sum(self.resolved_pairs.values())

    @property
    def total_operations(self) -> int:
        """Operations 1 + 2 combined — the quantity of Theorem 3."""
        return self.total_resolve_calls + self.distance_computations

    def resolution_rate(self, level: int) -> float:
        """Fraction of the level's examined pairs that resolved.

        Lemma 1 predicts this tends to 1/2 on every level below the
        start map (of the pairs *examined there*, i.e. the children of
        unresolved parents, about half resolve).
        """
        examined = self.resolve_calls.get(level, 0)
        if examined == 0:
            return 0.0
        return self.resolved_pairs.get(level, 0) / examined

    def per_level_summary(self) -> list[tuple[int, int, int, float]]:
        """Rows of ``(level, examined, resolved, rate)`` sorted by level."""
        rows = []
        for level in sorted(self.resolve_calls):
            examined = self.resolve_calls[level]
            resolved = self.resolved_pairs.get(level, 0)
            rate = resolved / examined if examined else 0.0
            rows.append((level, examined, resolved, rate))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SDHStats(start={self.start_level}, "
            f"resolve_calls={self.total_resolve_calls}, "
            f"distances={self.distance_computations}, "
            f"approx={self.approximated_distances:g})"
        )


def publish_stats(stats: SDHStats, engine: str, registry=None) -> None:
    """Fold one run's :class:`SDHStats` into a metrics registry.

    Bridges the per-run operation counters (the paper's two operation
    kinds) into the process-wide cumulative metrics so dashboards see
    per-level resolution behaviour across *all* queries — the registry
    analogue of what a single ``stats=`` argument shows for one run.
    Levels become the ``level`` label of the per-level counters.
    """
    from ..observability import get_registry

    reg = registry if registry is not None else get_registry()
    reg.counter(
        "sdh_queries_total", "SDH computations completed.", ("engine",)
    ).labels(engine=engine).inc()
    resolve = reg.counter(
        "sdh_resolve_calls_total",
        "Cell-pair resolution attempts (operation 1), by pyramid level.",
        ("engine", "level"),
    )
    resolved = reg.counter(
        "sdh_resolved_pairs_total",
        "Cell pairs that resolved, by pyramid level.",
        ("engine", "level"),
    )
    for level, examined in stats.resolve_calls.items():
        resolve.labels(engine=engine, level=level).inc(examined)
    for level, pairs in stats.resolved_pairs.items():
        resolved.labels(engine=engine, level=level).inc(pairs)
    if stats.distance_computations:
        reg.counter(
            "sdh_distance_computations_total",
            "Point-to-point distances computed (operation 2).",
            ("engine",),
        ).labels(engine=engine).inc(stats.distance_computations)
    if stats.approximated_distances:
        reg.counter(
            "sdh_approximated_distances_total",
            "Pair-distances distributed by ADM-SDH heuristics.",
            ("engine",),
        ).labels(engine=engine).inc(stats.approximated_distances)

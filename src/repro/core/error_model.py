"""A statistical model of ADM-SDH's real error (paper Sec. VI-C).

The paper observes that its Table-III bound is loose — "the real error
bound should be described as ``epsilon = epsilon_1 * epsilon_2`` where
``epsilon_1`` is the percentage given by Table III and ``epsilon_2`` is
the error rate created by the heuristic binning" — and calls for
statistical models of that bound as future work.  This module builds
one:

* ``epsilon_1 = alpha(m)`` — the unresolved pair-mass fraction, from
  the covering-factor machinery of :mod:`repro.core.analysis`;
* ``epsilon_2`` — the *net* misbinning rate of a heuristic over the
  population of pairs that actually survive to the stop level.  The
  population is simulated exactly like the covering-factor model
  (idealized diag == p hierarchy); for each surviving cell-pair offset
  class, the true distance distribution (Monte-Carlo, uniform points in
  the two cells) is compared with the heuristic's allocation, and the
  *signed* per-bucket differences are accumulated — capturing the
  cancellation effect the paper highlights ("the effects of this
  mistake could be cancelled out by a subsequent mistake").

The predicted histogram error rate is ``alpha(m) * epsilon_2``;
``benchmarks/bench_error_model.py`` compares it against measured
ADM-SDH errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from .analysis import _child_shifts, non_covering_factor
from .buckets import UniformBuckets
from .heuristics import AllocationContext, Allocator, make_allocator

__all__ = [
    "PredictedError",
    "survivor_population",
    "heuristic_binning_error",
    "predict_error",
]


@dataclass(frozen=True)
class PredictedError:
    """Decomposition of the predicted ADM-SDH error."""

    #: Unresolved pair-mass fraction after m levels (Table III's alpha).
    alpha: float
    #: Net misbinning rate of the heuristic over the unresolved mass.
    epsilon2: float

    @property
    def total(self) -> float:
        """Predicted histogram error rate ``alpha * epsilon2``."""
        return self.alpha * self.epsilon2


def survivor_population(
    m: int,
    num_buckets: int,
    dim: int = 2,
    samples: int = 8,
    rng: np.random.Generator | int | None = 0,
    max_tracked_pairs: int = 20_000_000,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Offset classes of pairs still unresolved after m levels.

    Returns ``(offsets, weights, cell_scale)`` where ``offsets`` is an
    ``(k, d)`` integer array of per-axis cell offsets (in level-m cell
    units, deduplicated), ``weights`` the pair-mass share of each class
    within the unresolved population, and ``cell_scale`` the bucket
    width measured in level-m cell sides (``p / delta_m``).

    Labeling matches the published Table III (see
    :func:`~repro.core.analysis.covering_factor_model`).
    """
    if m < 1:
        raise QueryError(f"m must be >= 1, got {m}")
    if dim not in (2, 3):
        raise QueryError(f"dim must be 2 or 3, got {dim}")
    if isinstance(rng, np.random.Generator):
        generator = rng
    else:
        generator = np.random.default_rng(rng)

    # Paper row m == m+1 subdivision rounds below the diag==p map.
    rounds = m + 1
    scale = 1 << rounds
    p = math.sqrt(dim) * scale
    high = num_buckets * p

    reach = int(math.ceil(num_buckets * math.sqrt(dim))) + 1
    axes = [np.arange(-reach, reach + 1)] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    offsets0 = np.stack([g.ravel() for g in mesh], axis=1)
    span0 = (np.abs(offsets0) + 1) * float(scale)
    v0 = np.sqrt(np.einsum("ij,ij->i", span0, span0))
    offsets0 = offsets0[v0 <= high * (1 + 1e-12)]
    offsets0 = offsets0[np.any(offsets0 != 0, axis=1)]
    if offsets0.shape[0] == 0:
        raise QueryError("no in-scope start pairs; increase num_buckets")

    collected: dict[tuple[int, ...], float] = {}
    shifts = _child_shifts(dim)
    for _ in range(samples):
        a_fine = generator.integers(0, scale, size=dim)
        b_cells = offsets0 * scale
        survived = None
        for level in range(0, rounds + 1):
            side = 1 << (rounds - level)
            a_lo = (a_fine // side) * side
            diff = np.abs(b_cells - a_lo)
            gap = np.maximum(diff - side, 0).astype(float)
            span = (diff + side).astype(float)
            u = np.sqrt(np.einsum("ij,ij->i", gap, gap))
            v = np.sqrt(np.einsum("ij,ij->i", span, span))
            bu = np.floor(u / p).astype(np.int64)
            bv = np.floor(v / p).astype(np.int64)
            bv[np.isclose(v, num_buckets * p, rtol=1e-12, atol=0)] = (
                num_buckets - 1
            )
            res = bu == bv
            if level == rounds:
                survived = b_cells[~res]
                break
            survivors = b_cells[~res]
            if survivors.shape[0] == 0:
                survived = survivors
                break
            child_side = side // 2
            b_cells = (
                survivors[:, None, :] + shifts[None, :, :] * child_side
            ).reshape(-1, dim)
            if b_cells.shape[0] > max_tracked_pairs:
                raise QueryError(
                    "survivor population too large; reduce m or "
                    "num_buckets"
                )
        assert survived is not None
        for offset in np.abs(survived - a_fine):
            key = tuple(int(o) for o in offset)
            collected[key] = collected.get(key, 0.0) + 1.0

    if not collected:
        return (
            np.empty((0, dim), dtype=np.int64),
            np.empty(0),
            p,
        )
    offsets = np.asarray(sorted(collected), dtype=np.int64)
    weights = np.asarray([collected[tuple(o)] for o in offsets])
    weights = weights / weights.sum()
    return offsets, weights, p


def heuristic_binning_error(
    heuristic: int | str | Allocator,
    m: int,
    num_buckets: int,
    dim: int = 2,
    samples: int = 8,
    mc_samples: int = 2048,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """``epsilon_2``: net misbinning rate of a heuristic at level m.

    For each surviving offset class, the heuristic's allocation of one
    unit of pair mass is compared against the Monte-Carlo truth; the
    *signed* differences are summed over the whole population per
    bucket, then their absolute values added up — exactly how the
    paper's error metric treats an actual histogram, so cancellation
    between classes (and within buckets) is accounted for.
    """
    if isinstance(rng, np.random.Generator):
        generator = rng
    else:
        generator = np.random.default_rng(rng)
    offsets, weights, p = survivor_population(
        m, num_buckets, dim=dim, samples=samples, rng=generator
    )
    if offsets.shape[0] == 0:
        return 0.0

    allocator = make_allocator(heuristic)
    spec = UniformBuckets(p, num_buckets)
    net = np.zeros(num_buckets)
    context = AllocationContext(rng=generator)
    for offset, weight in zip(offsets, weights):
        # Truth: sampled distance distribution of the two unit cells.
        a = generator.uniform(size=(mc_samples, dim))
        b = generator.uniform(size=(mc_samples, dim)) + offset
        delta = a - b
        d = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        idx = np.clip(
            spec.bucket_of(d), 0, num_buckets - 1
        )
        truth = np.bincount(idx, minlength=num_buckets) / mc_samples

        # Heuristic allocation of the same unit mass.
        gap = np.maximum(np.abs(offset) - 1, 0).astype(float)
        span = (np.abs(offset) + 1).astype(float)
        u = float(np.sqrt((gap * gap).sum()))
        v = float(np.sqrt((span * span).sum()))
        context_local = AllocationContext(
            offsets=offset[None, :].astype(np.int64),
            cell_sides=np.ones(dim),
            rng=context.rng,
        )
        alloc = allocator.allocate(
            spec,
            np.asarray([u]),
            np.asarray([v]),
            np.asarray([1.0]),
            context_local,
        )
        net += weight * (alloc - truth)
    return float(np.abs(net).sum())


def predict_error(
    heuristic: int | str | Allocator,
    m: int,
    num_buckets: int,
    dim: int = 2,
    samples: int = 8,
    rng: np.random.Generator | int | None = 0,
) -> PredictedError:
    """The full decomposition ``epsilon = alpha(m) * epsilon_2``."""
    alpha = non_covering_factor(m, num_buckets)
    epsilon2 = heuristic_binning_error(
        heuristic, m, num_buckets, dim=dim, samples=samples, rng=rng
    )
    return PredictedError(alpha=alpha, epsilon2=epsilon2)

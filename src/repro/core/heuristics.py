"""Distribution heuristics for unresolved cell pairs (paper Sec. V).

When the approximate algorithm stops descending the tree, each
surviving cell pair carries ``n1 * n2`` distances known only to lie in
the range ``[u, v]``, which may span several buckets (Fig. 7).  The
paper proposes four heuristics, "ordered in their expected
correctness", to distribute those counts:

1. put all counts into one overlapped bucket;
2. split the counts evenly over the overlapped buckets;
3. split proportionally to the overlap length of ``[u, v]`` with each
   bucket (assumes uniformly distributed distances);
4. derive the distance distribution from a spatial model of the
   particles within the cells (here: uniform-in-cell Monte Carlo,
   computed once per cell-offset class and cached — the paper notes the
   distribution "can be derived offline").

All allocators are vectorized over the pair arrays and preserve total
mass exactly: the histogram gains ``sum(weights)`` counts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..errors import QueryError
from .buckets import BucketSpec

__all__ = [
    "AllocationContext",
    "Allocator",
    "SingleBucketAllocator",
    "EvenSplitAllocator",
    "ProportionalAllocator",
    "DistributionModelAllocator",
    "make_allocator",
]


@dataclass
class AllocationContext:
    """Extra geometry the engine knows about the unresolved pairs.

    Only :class:`DistributionModelAllocator` needs it; the simpler
    heuristics work from ``[u, v]`` alone.
    """

    #: Per-pair absolute per-axis cell index offsets, shape ``(n, d)``.
    offsets: np.ndarray | None = None
    #: Per-axis cell side lengths at the level the pairs live on.
    cell_sides: np.ndarray | None = None
    #: Random generator for sampled models (seeded by the engine).
    rng: np.random.Generator = field(
        default_factory=np.random.default_rng
    )


class Allocator(ABC):
    """Interface: distribute pair counts over the histogram buckets."""

    @abstractmethod
    def allocate(
        self,
        spec: BucketSpec,
        u: np.ndarray,
        v: np.ndarray,
        weights: np.ndarray,
        context: AllocationContext | None = None,
    ) -> np.ndarray:
        """Per-bucket counts for pairs with ranges ``[u, v]``.

        Returns a float array of length ``spec.num_buckets`` whose sum
        equals ``weights.sum()``.
        """

    # Helper shared by the subclasses ----------------------------------
    @staticmethod
    def _clipped_span(
        spec: BucketSpec, u: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """First/last overlapped bucket index per pair, clipped valid."""
        l = spec.num_buckets
        lo = np.clip(spec.bucket_of(u), 0, l - 1)
        hi = np.clip(spec.bucket_of(v), 0, l - 1)
        return lo, hi


class SingleBucketAllocator(Allocator):
    """Heuristic 1: all counts into one bucket.

    ``choice='first'`` uses the first overlapped bucket (the "chosen
    arbitrarily beforehand" variant); ``choice='random'`` picks one of
    the overlapped buckets uniformly at runtime.
    """

    def __init__(self, choice: str = "first"):
        if choice not in ("first", "random"):
            raise QueryError(f"unknown choice {choice!r}")
        self.choice = choice

    def allocate(self, spec, u, v, weights, context=None):
        lo, hi = self._clipped_span(spec, u, v)
        if self.choice == "first":
            target = lo
        else:
            rng = (context or AllocationContext()).rng
            span = hi - lo + 1
            target = lo + (rng.random(lo.shape) * span).astype(np.int64)
            target = np.minimum(target, hi)
        return np.bincount(
            target, weights=weights, minlength=spec.num_buckets
        ).astype(float)


class EvenSplitAllocator(Allocator):
    """Heuristic 2: equal shares for every overlapped bucket.

    Implemented with a difference array so the cost is
    ``O(pairs + buckets)`` regardless of how many buckets each range
    spans.
    """

    def allocate(self, spec, u, v, weights, context=None):
        lo, hi = self._clipped_span(spec, u, v)
        l = spec.num_buckets
        share = np.asarray(weights, dtype=float) / (hi - lo + 1)
        diff = np.zeros(l + 1, dtype=float)
        np.add.at(diff, lo, share)
        np.add.at(diff, hi + 1, -share)
        return np.cumsum(diff)[:l]


class ProportionalAllocator(Allocator):
    """Heuristic 3: shares proportional to bucket overlap with [u, v].

    Equivalent to assuming the distances of each pair are uniformly
    distributed over their feasible range.  Interior buckets receive
    ``w * width_j / (v - u)``; the two boundary buckets receive the
    partial overlaps.  Degenerate ranges (``v == u``) collapse to
    heuristic 1.
    """

    def allocate(self, spec, u, v, weights, context=None):
        u = np.asarray(u, dtype=float)
        v = np.asarray(v, dtype=float)
        weights = np.asarray(weights, dtype=float)
        lo, hi = self._clipped_span(spec, u, v)
        l = spec.num_buckets
        edges = spec.edges
        out = np.zeros(l, dtype=float)

        length = v - u
        degenerate = length <= 0
        if degenerate.any():
            out += np.bincount(
                lo[degenerate], weights=weights[degenerate], minlength=l
            )
        live = ~degenerate
        if not live.any():
            return out
        u, v = u[live], v[live]
        weights, lo, hi = weights[live], lo[live], hi[live]
        length = length[live]

        # Clip the range into the histogram domain; out-of-domain mass
        # is squeezed into the boundary buckets, preserving totals.
        single = lo == hi
        if single.any():
            out += np.bincount(
                lo[single], weights=weights[single], minlength=l
            )
        multi = ~single
        if not multi.any():
            return out
        u, v = u[multi], v[multi]
        weights, lo, hi = weights[multi], lo[multi], hi[multi]
        length = length[multi]

        rate = weights / length
        # First bucket: overlap from u to its upper edge.
        first_overlap = np.maximum(edges[lo + 1] - np.maximum(u, edges[lo]), 0.0)
        out += np.bincount(lo, weights=rate * first_overlap, minlength=l)
        # Last bucket: overlap from its lower edge to v.
        last_overlap = np.maximum(np.minimum(v, edges[hi + 1]) - edges[hi], 0.0)
        out += np.bincount(hi, weights=rate * last_overlap, minlength=l)
        # Interior buckets: rate * bucket width, via difference array.
        interior = hi - lo >= 2
        if interior.any():
            diff = np.zeros(l + 1, dtype=float)
            np.add.at(diff, lo[interior] + 1, rate[interior])
            np.add.at(diff, hi[interior], -rate[interior])
            out += np.cumsum(diff)[:l] * spec.widths

        # Mass that fell outside the domain (u below low / v above high)
        # is re-normalized into the allocated buckets per pair.
        allocated = (
            rate * (first_overlap + last_overlap)
        )
        if interior.any():
            # per-pair interior mass = rate * (edges[hi] - edges[lo+1])
            inner = np.zeros_like(rate)
            inner[interior] = rate[interior] * (
                edges[hi[interior]] - edges[lo[interior] + 1]
            )
            allocated = allocated + inner
        missing = weights - allocated
        tiny = np.abs(missing) <= 1e-9 * np.maximum(weights, 1.0)
        if not tiny.all():
            # Ranges extending past the domain boundaries: put the
            # out-of-domain share into the nearest boundary bucket.
            below = np.maximum(np.minimum(v, edges[lo]) - u, 0.0)
            above = np.maximum(v - np.maximum(u, edges[hi + 1]), 0.0)
            out += np.bincount(lo, weights=rate * below, minlength=l)
            out += np.bincount(hi, weights=rate * above, minlength=l)
        return out


class DistributionModelAllocator(Allocator):
    """Heuristic 4: Monte-Carlo distance model of uniform cells.

    For each distinct *offset class* (the per-axis integer offset of the
    two cells, which fully determines their relative geometry on a given
    level) the allocator samples ``samples`` point pairs uniformly from
    the two cells, bins the sampled distances, and uses the resulting
    empirical distribution as the allocation profile for every pair in
    the class.  Profiles are cached, so the marginal cost per additional
    pair is one table lookup — constant time per pair, as the paper
    requires.
    """

    def __init__(self, samples: int = 512):
        if samples < 1:
            raise QueryError("samples must be >= 1")
        self.samples = int(samples)
        self._cache: dict[tuple, np.ndarray] = {}

    def allocate(self, spec, u, v, weights, context=None):
        if (
            context is None
            or context.offsets is None
            or context.cell_sides is None
        ):
            # Fall back to the proportional heuristic when the engine
            # cannot supply cell geometry (e.g. MBR-shaped cells).
            return ProportionalAllocator().allocate(spec, u, v, weights)
        offsets = np.abs(np.asarray(context.offsets, dtype=np.int64))
        # Geometry is invariant under axis permutation only for square
        # cells; keep axes as-is and let the cache key include sides.
        sides = tuple(float(s) for s in np.asarray(context.cell_sides))
        weights = np.asarray(weights, dtype=float)
        l = spec.num_buckets
        out = np.zeros(l, dtype=float)

        classes, inverse = np.unique(offsets, axis=0, return_inverse=True)
        class_weights = np.bincount(
            inverse, weights=weights, minlength=classes.shape[0]
        )
        rng = context.rng
        for class_id in range(classes.shape[0]):
            key = (
                sides,
                tuple(int(o) for o in classes[class_id]),
                spec.edges.tobytes(),
            )
            profile = self._cache.get(key)
            if profile is None:
                profile = self._sample_profile(
                    spec, classes[class_id], np.asarray(sides), rng
                )
                self._cache[key] = profile
            out += class_weights[class_id] * profile
        return out

    def _sample_profile(
        self,
        spec: BucketSpec,
        offset: np.ndarray,
        sides: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Empirical bucket distribution for one cell-offset class."""
        dim = offset.shape[0]
        a = rng.uniform(0.0, 1.0, size=(self.samples, dim)) * sides
        b = (
            rng.uniform(0.0, 1.0, size=(self.samples, dim)) + offset
        ) * sides
        delta = a - b
        distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
        idx = np.clip(
            spec.bucket_of(distances), 0, spec.num_buckets - 1
        )
        counts = np.bincount(idx, minlength=spec.num_buckets).astype(float)
        total = counts.sum()
        if total == 0:  # pragma: no cover - cannot happen with samples>=1
            counts[0] = 1.0
            total = 1.0
        return counts / total


def make_allocator(heuristic: int | str | Allocator, **kwargs) -> Allocator:
    """Factory mapping the paper's heuristic numbers to allocators.

    Accepts 1-4 (or the names ``"single"``, ``"even"``,
    ``"proportional"``, ``"model"``) and forwards keyword options to the
    chosen class.  An :class:`Allocator` instance passes through.
    """
    if isinstance(heuristic, Allocator):
        return heuristic
    table: dict[int | str, type[Allocator]] = {
        1: SingleBucketAllocator,
        2: EvenSplitAllocator,
        3: ProportionalAllocator,
        4: DistributionModelAllocator,
        "single": SingleBucketAllocator,
        "even": EvenSplitAllocator,
        "proportional": ProportionalAllocator,
        "model": DistributionModelAllocator,
    }
    try:
        cls = table[heuristic]
    except KeyError:
        raise QueryError(f"unknown heuristic {heuristic!r}") from None
    return cls(**kwargs)

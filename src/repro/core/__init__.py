"""The paper's contribution: DM-SDH, ADM-SDH, and their analysis.

Modules:

* :mod:`~repro.core.buckets`, :mod:`~repro.core.histogram` — the query
  and result types;
* :mod:`~repro.core.brute_force` — the quadratic baseline;
* :mod:`~repro.core.dm_sdh` — the node-recursive reference engine
  (paper Fig. 2, with region/type varieties and MBR);
* :mod:`~repro.core.dm_sdh_grid` — the vectorized engine with identical
  output;
* :mod:`~repro.core.approximate`, :mod:`~repro.core.heuristics` —
  ADM-SDH and the Sec.-V distribution heuristics;
* :mod:`~repro.core.analysis` — covering factors, Table III, cost model;
* :mod:`~repro.core.query` — the high-level front door.
"""

from .analysis import (
    PAPER_TABLE3,
    approximate_cost,
    choose_levels_for_error,
    covering_factor,
    covering_factor_model,
    dm_sdh_exponent,
    geometric_progression_cost,
    lemma1_ratios,
    non_covering_factor,
)
from .approximate import adm_sdh, levels_for_error
from .brute_force import brute_force_cross_sdh, brute_force_sdh
from .buckets import BucketSpec, CustomBuckets, OverflowPolicy, UniformBuckets
from .dm_sdh import TreeSDHEngine, dm_sdh_tree
from .error_model import (
    PredictedError,
    heuristic_binning_error,
    predict_error,
    survivor_population,
)
from .dm_sdh_grid import GridSDHEngine, dm_sdh_grid
from .engines import (
    Engine,
    EngineCapabilities,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from .heuristics import (
    AllocationContext,
    Allocator,
    DistributionModelAllocator,
    EvenSplitAllocator,
    ProportionalAllocator,
    SingleBucketAllocator,
    make_allocator,
)
from .histogram import DistanceHistogram
from .instrumentation import SDHStats
from .query import SDHQuery, build_plan, compute_sdh, resolve_engine_name
from .request import SDHRequest

__all__ = [
    "PAPER_TABLE3",
    "AllocationContext",
    "Allocator",
    "BucketSpec",
    "CustomBuckets",
    "DistanceHistogram",
    "DistributionModelAllocator",
    "Engine",
    "EngineCapabilities",
    "EvenSplitAllocator",
    "GridSDHEngine",
    "OverflowPolicy",
    "PredictedError",
    "ProportionalAllocator",
    "SDHQuery",
    "SDHRequest",
    "SDHStats",
    "SingleBucketAllocator",
    "TreeSDHEngine",
    "UniformBuckets",
    "adm_sdh",
    "approximate_cost",
    "available_engines",
    "brute_force_cross_sdh",
    "brute_force_sdh",
    "build_plan",
    "choose_levels_for_error",
    "compute_sdh",
    "get_engine",
    "covering_factor",
    "covering_factor_model",
    "dm_sdh_exponent",
    "dm_sdh_grid",
    "dm_sdh_tree",
    "geometric_progression_cost",
    "heuristic_binning_error",
    "lemma1_ratios",
    "levels_for_error",
    "make_allocator",
    "non_covering_factor",
    "predict_error",
    "register_engine",
    "resolve_engine_name",
    "survivor_population",
    "unregister_engine",
]

"""The one canonical description of an SDH query: :class:`SDHRequest`.

Historically :func:`repro.core.query.compute_sdh` took ~16 loose keyword
arguments, and every layer that carried a query (CLI, HTTP service, plan
cache) re-validated and re-plumbed them independently.  ``SDHRequest``
replaces that with a single frozen dataclass that

* captures the *full* query — bucket spec, engine, region, type
  filters, approximation budget, overflow policy, periodic boundaries,
  and the parallel worker count;
* validates once (:meth:`validate` / :meth:`normalize`), so the same
  error surfaces identically from the library, the CLI, and the wire;
* round-trips through JSON (:meth:`to_dict` / :meth:`from_dict`), which
  is exactly what the HTTP service speaks — the server builds a request
  straight from the POST body with no hand-mapping;
* derives the plan-cache key fields (:meth:`plan_key`), so cached
  pyramids are shared by every request that can legally use them.

Runtime-only concerns stay *out* of the request: an
:class:`~repro.core.instrumentation.SDHStats` sink and an ``rng`` are
call-time arguments of :func:`~repro.core.query.compute_sdh` and
:meth:`~repro.core.query.SDHQuery.run`, because they are not part of
the query's identity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..errors import BucketSpecError, QueryError
from ..geometry import AABB, BallRegion, RectRegion, Region, UnionRegion
from .buckets import BucketSpec, CustomBuckets, OverflowPolicy, UniformBuckets
from .heuristics import Allocator

__all__ = ["SDHRequest"]


@dataclass(frozen=True)
class SDHRequest:
    """A complete, immutable SDH query description.

    Exactly one of ``bucket_width`` / ``spec`` / ``num_buckets`` must be
    given (the three parameterizations of the paper's standard query).
    Everything else defaults to the plain exact query.

    Parameters
    ----------
    bucket_width / spec / num_buckets:
        The bucket parameterization: a width ``p``, a full
        :class:`~repro.core.buckets.BucketSpec`, or a total count ``l``.
    engine:
        ``"auto"`` or a registered engine name (see
        :mod:`repro.core.engines`).  ``"auto"`` resolves to the
        vectorized grid engine, or to the multi-core parallel engine
        when ``workers`` asks for more than one process.
    use_mbr:
        Resolve cells via particle MBRs (Sec. III-C.3 optimization).
    region / type_filter / type_pair:
        The restricted query varieties of Sec. III-C.3.
    error_bound / levels / heuristic:
        The ADM-SDH approximation budget (Sec. V).
    policy:
        Overflow handling for distances past the last edge.
    periodic:
        Minimum-image distances over the simulation box.
    workers:
        Process count for the parallel engine; ``None`` leaves the
        choice to the engine (CPU count).  ``workers=1`` is the inline
        single-core path.
    latency_budget_ms:
        Wall-clock SLO: the cost-based planner must pick a strategy
        predicted to finish within this many milliseconds, or reject
        the query with :class:`~repro.errors.SLOInfeasibleError`.
        Requires ``planner="auto"``.
    planner:
        ``"auto"`` lets the cost-based planner choose the execution
        strategy for ``engine="auto"`` requests (and enforce any
        latency budget); ``"off"`` restores the static resolution rule
        (grid, or parallel when ``workers > 1``).
    kernel:
        The leaf-resolution kernel tier (see :mod:`repro.kernels`):
        ``"auto"`` picks the fastest available backend (numba when
        installed, numpy otherwise); ``"numpy"`` / ``"numba"`` pin one.
        Pinning ``"numba"`` on a host without numba is rejected by the
        engine capability check.
    weights:
        Optional per-particle weights for the (first) dataset, one
        float per particle; a pair then contributes ``w_i * w_j`` to
        its bucket instead of 1.  Overrides any weights the dataset
        itself carries.  Must be finite; zero and negative values are
        allowed.  Incompatible with approximate mode (the allocator
        distributes float shares, which cannot stay exact).
    dataset_b:
        Reference to a second dataset, turning the query into a
        *cross-set* SDH: one histogram of all ``|A| * |B|`` distances
        between the two sets (both must share a simulation box).  Over
        the wire this is the registered dataset's fingerprint; at the
        library level :func:`~repro.core.query.compute_sdh` takes the
        resolved :class:`~repro.data.particles.ParticleSet` as ``b=``.
        Incompatible with region/type restrictions and approximate
        mode.
    """

    bucket_width: float | None = None
    spec: BucketSpec | None = None
    num_buckets: int | None = None
    engine: str = "auto"
    use_mbr: bool = False
    region: Region | None = None
    type_filter: int | str | None = None
    type_pair: tuple[int | str, int | str] | None = None
    error_bound: float | None = None
    levels: int | None = None
    heuristic: int | str | Allocator = 3
    policy: OverflowPolicy = OverflowPolicy.RAISE
    periodic: bool = False
    workers: int | None = None
    latency_budget_ms: float | None = None
    planner: str = "auto"
    kernel: str = "auto"
    weights: tuple[float, ...] | None = None
    dataset_b: str | None = None

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def approximate(self) -> bool:
        """Whether this request runs ADM-SDH (Sec. V)."""
        return self.error_bound is not None or self.levels is not None

    @property
    def cross(self) -> bool:
        """Whether this is a two-dataset cross-set query."""
        return self.dataset_b is not None

    @property
    def restricted(self) -> bool:
        """Whether this is a region- or type-restricted query."""
        return (
            self.region is not None
            or self.type_filter is not None
            or self.type_pair is not None
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def normalize(self) -> "SDHRequest":
        """Coerce loosely-typed fields and validate.

        Accepts the spellings that arrive over the wire — a policy name
        string, a two-element list for ``type_pair``, a float-ish
        ``workers`` — and returns an equivalent request with canonical
        field types.  Raises :class:`~repro.errors.QueryError` on
        anything inconsistent.
        """
        changes: dict = {}
        if isinstance(self.policy, str):
            try:
                changes["policy"] = OverflowPolicy[self.policy.upper()]
            except KeyError:
                names = [p.name.lower() for p in OverflowPolicy]
                raise QueryError(
                    f"unknown overflow policy {self.policy!r}; "
                    f"pick from {names}"
                )
        if self.type_pair is not None and not isinstance(
            self.type_pair, tuple
        ):
            changes["type_pair"] = tuple(self.type_pair)
        if self.engine is not None and self.engine != self.engine.lower():
            changes["engine"] = self.engine.lower()
        if self.workers is not None and not isinstance(self.workers, int):
            changes["workers"] = int(self.workers)
        if self.levels is not None and not isinstance(self.levels, int):
            changes["levels"] = int(self.levels)
        if isinstance(self.planner, str) and self.planner != self.planner.lower():
            changes["planner"] = self.planner.lower()
        if isinstance(self.kernel, str) and self.kernel != self.kernel.lower():
            changes["kernel"] = self.kernel.lower()
        if self.latency_budget_ms is not None and not isinstance(
            self.latency_budget_ms, float
        ):
            changes["latency_budget_ms"] = float(self.latency_budget_ms)
        if self.weights is not None and not (
            isinstance(self.weights, tuple)
            and all(isinstance(w, float) for w in self.weights)
        ):
            try:
                changes["weights"] = tuple(
                    float(w) for w in np.asarray(self.weights).ravel()
                )
            except (TypeError, ValueError):
                raise QueryError(
                    "weights must be a sequence of numbers, "
                    f"got {self.weights!r}"
                )
        request = self.replace(**changes) if changes else self
        request.validate()
        return request

    def validate(self) -> "SDHRequest":
        """Structural consistency checks; returns self when valid.

        This is the *single* validation path shared by
        :func:`~repro.core.query.compute_sdh`, the plan cache, the CLI,
        and the HTTP service — engine-specific capability checks (e.g.
        "the node tree is non-periodic") live in the engine registry,
        not here.
        """
        given = sum(
            value is not None
            for value in (self.bucket_width, self.spec, self.num_buckets)
        )
        if given != 1:
            raise QueryError(
                "provide exactly one of bucket_width / spec / num_buckets"
            )
        if self.bucket_width is not None and not (
            np.isfinite(self.bucket_width) and self.bucket_width > 0
        ):
            raise BucketSpecError(
                f"bucket_width must be finite and positive, "
                f"got {self.bucket_width}"
            )
        if self.num_buckets is not None and self.num_buckets < 1:
            raise BucketSpecError(
                f"a histogram needs at least one bucket, "
                f"got num_buckets={self.num_buckets}"
            )
        if self.spec is not None and not isinstance(self.spec, BucketSpec):
            raise QueryError(
                f"spec must be a BucketSpec, got {type(self.spec).__name__}"
            )
        if not isinstance(self.engine, str) or not self.engine:
            raise QueryError("engine must be a non-empty string")
        if self.type_pair is not None and len(self.type_pair) != 2:
            raise QueryError("type_pair must name exactly two types")
        if self.region is not None and not isinstance(self.region, Region):
            raise QueryError(
                f"region must be a Region, got {type(self.region).__name__}"
            )
        if not isinstance(self.policy, OverflowPolicy):
            raise QueryError(
                f"policy must be an OverflowPolicy, got {self.policy!r}"
            )
        if self.approximate and self.restricted:
            raise QueryError("approximate restricted queries are not supported")
        if self.error_bound is not None and not (
            np.isfinite(self.error_bound) and self.error_bound > 0
        ):
            raise QueryError(
                f"error_bound must be finite and positive, "
                f"got {self.error_bound}"
            )
        if self.levels is not None and self.levels < 0:
            raise QueryError(f"levels must be >= 0, got {self.levels}")
        if self.workers is not None and self.workers < 1:
            raise QueryError(f"workers must be >= 1, got {self.workers}")
        if self.use_mbr and self.periodic:
            raise QueryError(
                "MBR resolution is not defined under periodic boundaries"
            )
        if self.planner not in ("auto", "off"):
            raise QueryError(
                f"planner must be 'auto' or 'off', got {self.planner!r}"
            )
        from ..kernels import KERNEL_TIERS

        if self.kernel not in ("auto", *KERNEL_TIERS):
            raise QueryError(
                f"kernel must be one of {('auto', *KERNEL_TIERS)}, "
                f"got {self.kernel!r}"
            )
        if self.latency_budget_ms is not None:
            if not (
                np.isfinite(self.latency_budget_ms)
                and self.latency_budget_ms > 0
            ):
                raise QueryError(
                    f"latency_budget_ms must be finite and positive, "
                    f"got {self.latency_budget_ms}"
                )
            if self.planner == "off":
                raise QueryError(
                    "latency_budget_ms needs the planner; "
                    "it cannot be combined with planner='off'"
                )
        if self.weights is not None:
            if not isinstance(self.weights, tuple) or not self.weights:
                raise QueryError(
                    "weights must be a non-empty sequence of numbers"
                )
            arr = np.asarray(self.weights, dtype=np.float64)
            if not np.all(np.isfinite(arr)):
                raise QueryError("weights must all be finite")
            if self.approximate:
                raise QueryError(
                    "weighted queries cannot run in approximate mode "
                    "(fractional allocation is not exact)"
                )
        if self.dataset_b is not None:
            if not isinstance(self.dataset_b, str) or not self.dataset_b:
                raise QueryError("dataset_b must be a non-empty string")
            if self.restricted:
                raise QueryError(
                    "cross-set queries cannot be combined with region "
                    "or type restrictions"
                )
            if self.approximate:
                raise QueryError(
                    "cross-set queries cannot run in approximate mode"
                )
        return self

    def replace(self, **changes) -> "SDHRequest":
        """A copy of this request with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Resolution against a dataset
    # ------------------------------------------------------------------
    def resolved_spec(self, particles) -> BucketSpec:
        """The concrete :class:`BucketSpec` this request means for a dataset.

        ``bucket_width`` and ``num_buckets`` parameterizations cover the
        box diagonal (or the half-diagonal reach under periodic
        boundaries); an explicit ``spec`` is returned as-is.
        """
        if self.spec is not None:
            return self.spec
        if self.periodic:
            reach = particles.max_periodic_distance
        else:
            reach = particles.max_possible_distance
        if self.bucket_width is not None:
            return UniformBuckets.cover(reach, self.bucket_width)
        if self.num_buckets is None:
            raise QueryError(
                "provide exactly one of bucket_width / spec / num_buckets"
            )
        return UniformBuckets.with_count(reach, self.num_buckets)

    # ------------------------------------------------------------------
    # Cache keying
    # ------------------------------------------------------------------
    def plan_key(self) -> str:
        """The plan-cache variant this request needs.

        A cached :class:`~repro.core.query.SDHQuery` plan is a built
        density-map pyramid; the only request field that changes *what
        must be built* is ``use_mbr``.  The empty string is the plain
        variant, so plain plans keep their historical cache keys (the
        bare dataset fingerprint).
        """
        return "mbr" if self.use_mbr else ""

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    @classmethod
    def json_field_names(cls) -> frozenset[str]:
        """Field names accepted by :meth:`from_dict` (the wire vocabulary)."""
        return frozenset(f.name for f in dataclasses.fields(cls))

    def to_dict(self) -> dict:
        """A JSON-ready dict; defaults are omitted for compactness.

        Raises :class:`~repro.errors.QueryError` when the request holds
        a non-serializable value (an :class:`Allocator` instance as the
        heuristic, or a custom :class:`Region` subclass).
        """
        body: dict = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value == field.default and not isinstance(value, np.ndarray):
                continue
            if field.name == "spec":
                value = _spec_to_json(value)
            elif field.name == "region":
                value = _region_to_json(value)
            elif field.name == "policy":
                value = value.name.lower()
            elif field.name == "heuristic":
                if isinstance(value, Allocator):
                    raise QueryError(
                        "an Allocator instance cannot be serialized; "
                        "use a heuristic number or name"
                    )
            body[field.name] = value
        return body

    @classmethod
    def from_dict(cls, body: dict) -> "SDHRequest":
        """Build (and normalize) a request from a JSON-shaped dict.

        Unknown keys raise :class:`~repro.errors.QueryError` listing
        the accepted vocabulary, so typos fail loudly at the edge.
        """
        if not isinstance(body, dict):
            raise QueryError("an SDH request must be a JSON object")
        allowed = cls.json_field_names()
        unknown = set(body) - allowed
        if unknown:
            raise QueryError(
                f"unknown query parameters: {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        payload = dict(body)
        if payload.get("spec") is not None:
            payload["spec"] = _spec_from_json(payload["spec"])
        if payload.get("region") is not None:
            payload["region"] = _region_from_json(payload["region"])
        return cls(**payload).normalize()


# ----------------------------------------------------------------------
# Spec / region (de)serialization helpers
# ----------------------------------------------------------------------
def _spec_to_json(spec: BucketSpec | None) -> dict | None:
    if spec is None:
        return None
    if isinstance(spec, UniformBuckets):
        return {
            "kind": "uniform",
            "width": spec.width,
            "num_buckets": spec.num_buckets,
        }
    if isinstance(spec, CustomBuckets):
        return {"kind": "custom", "edges": spec.edges.tolist()}
    raise QueryError(
        f"cannot serialize bucket spec of type {type(spec).__name__}"
    )


def _finite(value, what: str) -> float:
    """``float(value)``, rejecting NaN/inf with a :class:`QueryError`.

    JSON has no literal for them, but Python's parser (and our own
    loose callers) accept ``float("nan")`` — which would silently
    corrupt bucket edges and region bounds downstream.
    """
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise QueryError(f"{what} must be a number, got {value!r}")
    if not np.isfinite(number):
        raise QueryError(f"{what} must be finite, got {number}")
    return number


def _spec_from_json(body) -> BucketSpec:
    if isinstance(body, BucketSpec):
        return body
    if not isinstance(body, dict) or "kind" not in body:
        raise QueryError(
            "spec must be {'kind': 'uniform'|'custom', ...}"
        )
    kind = body["kind"]
    if kind == "uniform":
        return UniformBuckets(
            _finite(body["width"], "spec width"), int(body["num_buckets"])
        )
    if kind == "custom":
        return CustomBuckets(
            [_finite(e, "spec edge") for e in body["edges"]]
        )
    raise QueryError(f"unknown bucket spec kind {kind!r}")


def _region_to_json(region: Region | None) -> dict | None:
    if region is None:
        return None
    if isinstance(region, RectRegion):
        return {
            "kind": "rect",
            "lo": list(region.box.lo),
            "hi": list(region.box.hi),
        }
    if isinstance(region, BallRegion):
        return {
            "kind": "ball",
            "center": list(region.center),
            "radius": region.radius,
        }
    if isinstance(region, UnionRegion):
        return {
            "kind": "union",
            "members": [_region_to_json(m) for m in region.members],
        }
    raise QueryError(
        f"cannot serialize region of type {type(region).__name__}"
    )


def _region_from_json(body) -> Region:
    if isinstance(body, Region):
        return body
    if not isinstance(body, dict) or "kind" not in body:
        raise QueryError(
            "region must be {'kind': 'rect'|'ball'|'union', ...}"
        )
    kind = body["kind"]
    if kind == "rect":
        return RectRegion(
            AABB(
                tuple(_finite(v, "region lo") for v in body["lo"]),
                tuple(_finite(v, "region hi") for v in body["hi"]),
            )
        )
    if kind == "ball":
        return BallRegion(
            [_finite(v, "region center") for v in body["center"]],
            _finite(body["radius"], "region radius"),
        )
    if kind == "union":
        return UnionRegion(
            [_region_from_json(m) for m in body["members"]]
        )
    raise QueryError(f"unknown region kind {kind!r}")

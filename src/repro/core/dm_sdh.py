"""DM-SDH: the density-map-based SDH algorithm (paper Fig. 2).

This is the *reference* engine: a direct, readable implementation of the
paper's pseudocode on the linked-node tree, including the two query
varieties of Sec. III-C.3 (region-restricted and type-restricted
queries) and the MBR optimization.  Its recursive structure mirrors
``RESOLVETWOCELLS`` line by line:

* start on the first density map whose cell diagonal fits inside the
  first bucket, crediting each cell's internal pairs to bucket 0;
* for every pair of cells, compute the min/max inter-cell distance
  bounds (constant time from the cell corners, Fig. 3); when the bounds
  fall inside one bucket the pair *resolves* and contributes
  ``n1 * n2`` to that bucket;
* otherwise recurse into all child-pair combinations on the next map,
  or compute the remaining distances directly at the leaf level.

A vectorized translation with identical output lives in
:mod:`repro.core.dm_sdh_grid`; tests assert the two agree exactly.
"""

from __future__ import annotations

import numpy as np

from ..data.particles import ParticleSet
from ..errors import QueryError
from ..geometry import Region, Relation, cross_distances, pairwise_distances
from ..kernels import exact, fast_uniform_width, get_backend
from ..quadtree.node import DensityNode
from ..quadtree.tree import DensityMapTree
from .buckets import BucketSpec, OverflowPolicy, UniformBuckets
from .histogram import DistanceHistogram
from .instrumentation import SDHStats
from .weighted import WeightedAccumulator

__all__ = ["TreeSDHEngine", "dm_sdh_tree"]


def dm_sdh_tree(
    data: DensityMapTree | ParticleSet,
    spec: BucketSpec | None = None,
    bucket_width: float | None = None,
    use_mbr: bool = False,
    region: Region | None = None,
    type_filter: int | str | None = None,
    type_pair: tuple[int | str, int | str] | None = None,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    stats: SDHStats | None = None,
    kernel: str = "auto",
) -> DistanceHistogram:
    """Compute an SDH with the node-recursive DM-SDH engine.

    Parameters
    ----------
    data:
        A pre-built :class:`DensityMapTree`, or a :class:`ParticleSet`
        (a tree with default height is built on the fly).
    spec / bucket_width:
        Either an explicit bucket specification, or a width ``p`` from
        which the standard query's buckets are derived (equal width,
        covering the box diagonal).
    use_mbr:
        Resolve cells by their particle MBRs instead of the full cell
        boundary (requires a tree built ``with_mbr=True``).
    region:
        Restrict the histogram to particles inside a query region
        (first variety of Sec. III-C.3).
    type_filter:
        Restrict to particles of one type (second variety).
    type_pair:
        Count only *cross* pairs between two distinct types (one
        particle of each), e.g. carbon-oxygen distances.
    policy:
        Overflow policy for distances beyond the last bucket edge.
    stats:
        Optional :class:`SDHStats` receiving operation counts.
    kernel:
        Leaf-resolution backend tier (see :mod:`repro.kernels`):
        ``"auto"`` picks the fastest available, ``"numpy"`` / ``"numba"``
        pin a tier.  All tiers produce bit-identical histograms.
    """
    if isinstance(data, DensityMapTree):
        tree = data
    else:
        tree = DensityMapTree(data, with_mbr=use_mbr)
    engine = TreeSDHEngine(
        tree,
        spec=spec,
        bucket_width=bucket_width,
        use_mbr=use_mbr,
        region=region,
        type_filter=type_filter,
        type_pair=type_pair,
        policy=policy,
        stats=stats,
        kernel=kernel,
    )
    return engine.run()


class TreeSDHEngine:
    """One DM-SDH computation over a density-map tree.

    The class exists to hold per-run state (histogram, caches, counters)
    so the recursion stays close to the paper's pseudocode; use
    :func:`dm_sdh_tree` for the one-call interface.
    """

    def __init__(
        self,
        tree: DensityMapTree,
        spec: BucketSpec | None = None,
        bucket_width: float | None = None,
        use_mbr: bool = False,
        region: Region | None = None,
        type_filter: int | str | None = None,
        type_pair: tuple[int | str, int | str] | None = None,
        policy: OverflowPolicy = OverflowPolicy.RAISE,
        stats: SDHStats | None = None,
        kernel: str = "auto",
    ):
        self.tree = tree
        self.particles = tree.particles
        self.spec = _resolve_spec(spec, bucket_width, self.particles)
        # Fast binning applies when the spec is the standard uniform
        # cover of the reachable range; otherwise leaf batches fall back
        # to the spec's general bin_counts_query path.
        self._fast_bin_width = fast_uniform_width(
            self.spec, self.particles.max_possible_distance
        )
        self._kernel_backend = get_backend(kernel)
        self.kernel = self._kernel_backend.NAME
        if use_mbr and not tree.has_mbr:
            raise QueryError("use_mbr requires a tree built with_mbr=True")
        self.use_mbr = use_mbr
        self.region = region
        if region is not None and region.dim != self.particles.dim:
            raise QueryError("region dimensionality does not match data")
        if region is not None and not bool(
            region.contains_points(self.particles.positions).any()
        ):
            # Same contract as the subsetting engines: an empty region
            # is a caller error, not a silently-zero histogram.
            raise QueryError("query region contains no particles")
        self.policy = policy
        self.stats = stats if stats is not None else SDHStats()
        self.histogram = DistanceHistogram(self.spec)

        if type_filter is not None and type_pair is not None:
            raise QueryError("type_filter and type_pair are exclusive")
        self._type_a: int | None = None
        self._type_b: int | None = None
        if type_filter is not None:
            code = self.particles.resolve_type(type_filter)
            self._type_a = self._type_b = code
        elif type_pair is not None:
            code_a = self.particles.resolve_type(type_pair[0])
            code_b = self.particles.resolve_type(type_pair[1])
            if code_a == code_b:
                raise QueryError(
                    "type_pair needs two distinct types; use type_filter"
                )
            self._type_a, self._type_b = code_a, code_b

        # Per-node caches for filtered particle indices and effective
        # counts under region/type restrictions.
        self._indices_cache: dict[int, tuple[np.ndarray, ...]] = {}
        self._count_cache: dict[int, tuple[float, ...]] = {}

        # Weighted datasets route every contribution through one exact
        # accumulator (see repro.core.weighted); control flow stays
        # count-based so a zero *mass* never prunes unresolved pairs.
        self.weighted = self.particles.weighted
        self._accum: WeightedAccumulator | None = None
        self._w_ints: np.ndarray | None = None
        self._mass_cache: dict[int, tuple[int, int, int]] = {}
        if self.weighted:
            self._accum = WeightedAccumulator(self.spec, policy)
            self._w_ints = exact.weight_ints(self.particles.weights)

    # ------------------------------------------------------------------
    # Entry point (Algorithm DM-SDH, Fig. 2)
    # ------------------------------------------------------------------
    def run(self) -> DistanceHistogram:
        """Execute the algorithm and return the histogram."""
        start = self._start_level()
        self.stats.start_level = start
        self.stats.levels_visited = self.tree.height - start
        dm = self.tree.density_map(start)
        shortcut = (
            self.spec.low == 0.0
            and dm.cell_diagonal <= float(self.spec.edges[1])
        )

        cells = [cell for cell in dm.cells if self._cell_active(cell)]
        # Lines 3-5: intra-cell pairs all land in the first bucket.
        for cell in cells:
            if shortcut:
                weight = self._self_weight(cell)
                if weight:
                    if self._accum is not None:
                        self._accum.add_mass(0, self._self_mass(cell))
                    else:
                        self.histogram.add(0, weight)
            else:
                self._intra_distances(cell)
        # Lines 6-7: resolve every pair of cells on the start map.
        for i, m1 in enumerate(cells):
            for m2 in cells[i + 1 :]:
                self._resolve_two_cells(m1, m2)
        if self._accum is not None:
            self._accum.finalize_into(self.histogram)
        return self.histogram

    # ------------------------------------------------------------------
    # Procedure RESOLVETWOCELLS (Fig. 2)
    # ------------------------------------------------------------------
    def _resolve_two_cells(self, m1: DensityNode, m2: DensityNode) -> None:
        weight = self._pair_weight(m1, m2)
        if weight == 0:
            return
        b1 = m1.resolution_bounds(self.use_mbr)
        b2 = m2.resolution_bounds(self.use_mbr)
        u, v = b1.distance_bounds(b2)

        level = m1.level
        self.stats.record_batch(level, examined=1, resolved=0,
                                resolved_distances=0.0)

        # Entirely outside the queried distance range?
        if v < self.spec.low:
            return
        if u > self.spec.high:
            self._handle_overflow_pair(weight, m1, m2)
            return

        bucket = self.spec.resolve_range(u, v)
        clean_region = self.region is None or (
            self._relation(m1) is Relation.INSIDE
            and self._relation(m2) is Relation.INSIDE
        )
        if bucket is not None and clean_region:
            # Lines 2-5: the pair resolves.
            self.stats.record_batch(level, examined=0, resolved=1,
                                    resolved_distances=float(weight))
            if self._accum is not None:
                self._accum.add_mass(bucket, self._pair_mass(m1, m2))
            else:
                self.histogram.add(bucket, weight)
            return

        if m1.is_leaf or m2.is_leaf:
            # Lines 6-11: no finer map; fall back to real distances —
            # except that with filters active a resolvable bucket can
            # still be credited using the *filtered* counts.
            if bucket is not None:
                self.stats.record_batch(level, examined=0, resolved=1,
                                        resolved_distances=float(weight))
                if self._accum is not None:
                    self._accum.add_mass(bucket, self._pair_mass(m1, m2))
                else:
                    self.histogram.add(bucket, weight)
                return
            self._leaf_distances(m1, m2)
            return

        # Lines 12-16: recurse into all child pairs on the next map.
        for c1 in m1.children():
            if c1.p_count == 0:
                continue
            for c2 in m2.children():
                if c2.p_count == 0:
                    continue
                self._resolve_two_cells(c1, c2)

    # ------------------------------------------------------------------
    # Weights under region/type restrictions
    # ------------------------------------------------------------------
    def _cell_active(self, cell: DensityNode) -> bool:
        """Whether a cell can contribute anything to the query."""
        if cell.p_count == 0:
            return False
        if self.region is not None and self._relation(cell) is Relation.OUTSIDE:
            return False
        return True

    def _relation(self, cell: DensityNode) -> Relation:
        assert self.region is not None
        return self.region.classify(cell.bounds)

    def _effective_counts(self, cell: DensityNode) -> tuple[float, float]:
        """Counts of qualifying particles (type a, type b) in a cell.

        For untyped queries both entries equal the plain (possibly
        region-filtered) count.  Region-partial cells require walking to
        the subtree's leaves; results are cached per node.
        """
        key = id(cell)
        cached = self._count_cache.get(key)
        if cached is not None:
            return cached

        if self.region is not None:
            relation = self._relation(cell)
            if relation is Relation.OUTSIDE:
                result = (0.0, 0.0)
                self._count_cache[key] = result
                return result
            if relation is Relation.PARTIAL:
                idx_a, idx_b = self._qualifying_indices(cell)
                result = (float(idx_a.size), float(idx_b.size))
                self._count_cache[key] = result
                return result

        if self._type_a is None:
            result = (float(cell.p_count), float(cell.p_count))
        else:
            counts = cell.type_counts
            if counts is None:
                raise QueryError("typed query on an untyped tree")
            na = float(counts[self._type_a]) if self._type_a < len(counts) else 0.0
            nb = float(counts[self._type_b]) if self._type_b < len(counts) else 0.0
            result = (na, nb)
        self._count_cache[key] = result
        return result

    def _pair_weight(self, m1: DensityNode, m2: DensityNode) -> float:
        """Number of qualifying particle pairs across two distinct cells."""
        a1, b1 = self._effective_counts(m1)
        a2, b2 = self._effective_counts(m2)
        if self._type_a is not None and self._type_a != self._type_b:
            return a1 * b2 + b1 * a2
        return a1 * a2

    def _self_weight(self, cell: DensityNode) -> float:
        """Number of qualifying particle pairs within one cell."""
        a, b = self._effective_counts(cell)
        if self._type_a is not None and self._type_a != self._type_b:
            return a * b
        return a * (a - 1) / 2.0

    # ------------------------------------------------------------------
    # Exact weight masses (weighted datasets only)
    # ------------------------------------------------------------------
    def _mass_sums(self, cell: DensityNode) -> tuple[int, int, int]:
        """Exact (type-a sum, type-b sum, type-a sum of squares) of a cell.

        Sums are weight-scale integers (see :mod:`repro.kernels.exact`);
        the sum of squares is product-scale and only consumed by the
        untyped :meth:`_self_mass`.  Cached per node like the counts.
        """
        assert self._w_ints is not None
        key = id(cell)
        cached = self._mass_cache.get(key)
        if cached is None:
            idx_a, idx_b = self._qualifying_indices(cell)
            wa = sum(self._w_ints[idx_a].tolist(), 0)
            if idx_b is idx_a:
                wb = wa
            else:
                wb = sum(self._w_ints[idx_b].tolist(), 0)
            s2 = sum((x * x for x in self._w_ints[idx_a].tolist()), 0)
            cached = (wa, wb, s2)
            self._mass_cache[key] = cached
        return cached

    def _pair_mass(self, m1: DensityNode, m2: DensityNode) -> int:
        """Exact product-scale pair mass across two distinct cells.

        ``(Σa)(Σb) = ΣΣ aᵢbⱼ`` holds exactly over the scaled integers,
        so crediting a resolved pair here agrees bit for bit with the
        leaf-level enumeration of the same pairs.
        """
        wa1, wb1, _ = self._mass_sums(m1)
        wa2, wb2, _ = self._mass_sums(m2)
        if self._type_a is not None and self._type_a != self._type_b:
            return wa1 * wb2 + wb1 * wa2
        return wa1 * wa2

    def _self_mass(self, cell: DensityNode) -> int:
        """Exact product-scale mass of qualifying pairs within one cell."""
        wa, wb, s2 = self._mass_sums(cell)
        if self._type_a is not None and self._type_a != self._type_b:
            return wa * wb
        # Σ_{i<j} wᵢwⱼ = (W² − Σw²)/2; the numerator is exactly even.
        return (wa * wa - s2) >> 1

    # ------------------------------------------------------------------
    # Leaf-level distance computation
    # ------------------------------------------------------------------
    def _qualifying_indices(self, node: DensityNode) -> tuple[np.ndarray, np.ndarray]:
        """Dataset indices of qualifying particles in a node's subtree.

        Returns the (type-a, type-b) index arrays; for untyped queries
        both refer to the same array.  Region filtering is applied here.
        """
        key = id(node)
        cached = self._indices_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]

        idx = _collect_indices(node)
        positions = self.particles.positions
        if self.region is not None and idx.size:
            relation = self._relation(node)
            if relation is Relation.OUTSIDE:
                idx = idx[:0]
            elif relation is Relation.PARTIAL:
                idx = idx[self.region.contains_points(positions[idx])]
        if self._type_a is None:
            result = (idx, idx)
        else:
            types = self.particles.types
            assert types is not None
            cell_types = types[idx]
            result = (
                idx[cell_types == self._type_a],
                idx[cell_types == self._type_b],
            )
        self._indices_cache[key] = result
        return result

    def _leaf_distances(self, m1: DensityNode, m2: DensityNode) -> None:
        """Fig. 2 lines 7-11: bin every qualifying cross distance."""
        positions = self.particles.positions
        a1, b1 = self._qualifying_indices(m1)
        a2, b2 = self._qualifying_indices(m2)
        if self._type_a is not None and self._type_a != self._type_b:
            batches = [(a1, b2), (b1, a2)]
        else:
            batches = [(a1, a2)]
        for left, right in batches:
            if left.size == 0 or right.size == 0:
                continue
            if self.weighted:
                self._weighted_cross_batch(left, right)
                continue
            if self._fast_bin_width is not None:
                hist, computed = self._kernel_backend.bin_dense_cross(
                    positions[left],
                    positions[right],
                    self._fast_bin_width,
                    self.spec.num_buckets,
                )
                self.stats.distance_computations += computed
                self.histogram.counts += hist
                continue
            distances = cross_distances(positions[left], positions[right])
            self.stats.distance_computations += distances.size
            self.histogram.add_counts(
                self.spec.bin_counts_query(distances, policy=self.policy)
            )

    def _intra_distances(self, cell: DensityNode) -> None:
        """Distances within one start-map cell when no bucket-0 shortcut.

        This happens when even the finest map's diagonal exceeds the
        first bucket (the small-N / large-l corner of Fig. 8) or when
        the query's ``r_0 > 0``.
        """
        positions = self.particles.positions
        a, b = self._qualifying_indices(cell)
        if self._type_a is not None and self._type_a != self._type_b:
            if a.size and b.size:
                if self.weighted:
                    self._weighted_cross_batch(a, b)
                    return
                if self._fast_bin_width is not None:
                    hist, computed = self._kernel_backend.bin_dense_cross(
                        positions[a],
                        positions[b],
                        self._fast_bin_width,
                        self.spec.num_buckets,
                    )
                    self.stats.distance_computations += computed
                    self.histogram.counts += hist
                    return
                distances = cross_distances(positions[a], positions[b])
                self.stats.distance_computations += distances.size
                self.histogram.add_counts(
                    self.spec.bin_counts_query(distances, policy=self.policy)
                )
            return
        if a.size < 2:
            return
        if self.weighted:
            self._weighted_self_batch(a)
            return
        if self._fast_bin_width is not None:
            hist, computed = self._kernel_backend.bin_dense_self(
                positions[a], self._fast_bin_width, self.spec.num_buckets
            )
            self.stats.distance_computations += computed
            self.histogram.counts += hist
            return
        distances = pairwise_distances(positions[a])
        self.stats.distance_computations += distances.size
        self.histogram.add_counts(
            self.spec.bin_counts_query(distances, policy=self.policy)
        )

    def _weighted_cross_batch(
        self, left: np.ndarray, right: np.ndarray
    ) -> None:
        """Bin all cross pairs of two index sets into the accumulator."""
        assert self._accum is not None and self._w_ints is not None
        positions = self.particles.positions
        weights = self.particles.weights
        if self._fast_bin_width is not None:
            limbs, computed = self._kernel_backend.bin_dense_cross_weighted(
                positions[left],
                positions[right],
                weights[left],
                weights[right],
                self._fast_bin_width,
                self.spec.num_buckets,
            )
            self.stats.distance_computations += computed
            self._accum.add_limbs(limbs, computed)
            return
        distances = cross_distances(positions[left], positions[right])
        self.stats.distance_computations += distances.size
        ia = np.repeat(left, right.size)
        ib = np.tile(right, left.size)
        self._accum.bin_products(
            distances, self._w_ints[ia], self._w_ints[ib]
        )

    def _weighted_self_batch(self, idx: np.ndarray) -> None:
        """Bin all intra-set pairs of one index set into the accumulator."""
        assert self._accum is not None and self._w_ints is not None
        positions = self.particles.positions
        weights = self.particles.weights
        if self._fast_bin_width is not None:
            limbs, computed = self._kernel_backend.bin_dense_self_weighted(
                positions[idx],
                weights[idx],
                self._fast_bin_width,
                self.spec.num_buckets,
            )
            self.stats.distance_computations += computed
            self._accum.add_limbs(limbs, computed)
            return
        distances = pairwise_distances(positions[idx])
        self.stats.distance_computations += distances.size
        iu, ju = np.triu_indices(idx.size, k=1)
        self._accum.bin_products(
            distances, self._w_ints[idx[iu]], self._w_ints[idx[ju]]
        )

    # ------------------------------------------------------------------
    def _handle_overflow_pair(
        self, weight: float, m1: DensityNode, m2: DensityNode
    ) -> None:
        """A whole cell pair lies beyond the histogram's range."""
        if self._accum is not None:
            self._accum.add_overflow(self._pair_mass(m1, m2), int(weight))
            return
        if self.policy is OverflowPolicy.RAISE:
            from ..errors import DistanceOverflowError

            raise DistanceOverflowError(
                f"cell pair with all distances above {self.spec.high}"
            )
        if self.policy is OverflowPolicy.CLAMP:
            self.histogram.add(self.spec.num_buckets - 1, weight)
        # DROP: nothing to do.

    def _start_level(self) -> int:
        """Fig. 2 line 2, falling back to the leaf map when p is tiny."""
        if self.spec.low == 0.0:
            first_width = float(self.spec.edges[1])
            level = self.tree.start_level_for(first_width)
            if level is not None:
                return level
        return self.tree.height - 1


def _collect_indices(node: DensityNode) -> np.ndarray:
    """All dataset indices in a node's subtree (leaf p-lists union)."""
    if node.is_leaf:
        if node.p_list is None:
            return np.empty(0, dtype=np.int64)
        return node.p_list
    parts = [
        _collect_indices(child)
        for child in node.children()
        if child.p_count > 0
    ]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def _resolve_spec(
    spec: BucketSpec | None,
    bucket_width: float | None,
    particles: ParticleSet,
) -> BucketSpec:
    if spec is not None:
        if bucket_width is not None:
            raise QueryError("provide spec or bucket_width, not both")
        return spec
    if bucket_width is None:
        raise QueryError("provide either spec or bucket_width")
    return UniformBuckets.cover(particles.max_possible_distance, bucket_width)

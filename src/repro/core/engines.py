"""Capability-based SDH engine registry.

The dispatch in :mod:`repro.core.query` used to be a hard-coded tuple
of names plus an if-chain of ``raise QueryError`` branches; adding an
engine meant editing the dispatcher.  This module turns both into data:

* an engine registers itself with :func:`register_engine`, supplying a
  runner and an :class:`EngineCapabilities` record;
* :func:`get_engine` resolves a name (or fails listing what exists);
* :meth:`Engine.check` rejects a request that asks for a feature the
  engine lacks, with one uniform error message.

The runner protocol is

``run(particles, request, spec, *, stats, rng) -> DistanceHistogram``

where ``request`` is a normalized :class:`~repro.core.request.SDHRequest`
and ``spec`` its resolved :class:`~repro.core.buckets.BucketSpec`.
The built-in engines (brute / tree / grid / parallel) are registered by
:mod:`repro.core.query` at import time; external code can plug in more
without touching the dispatcher.

Capabilities are per-feature ``supports_*`` flags plus the engine's
:attr:`~EngineCapabilities.kernel_tiers` — the leaf-resolution backends
(:mod:`repro.kernels`) the engine can execute with.  The pre-kernel
representations (coarse ``periodic``/``restricted``/... keywords and
properties, and the original string-set form) keep working for one
release behind :class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import QueryError
from ..kernels import KERNEL_TIERS

__all__ = [
    "EngineCapabilities",
    "Engine",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
]


#: Pre-kernel capability vocabulary -> the fields it expands to.  The
#: coarse ``restricted`` flag covered region and type restrictions
#: together; it fans out to all three fine-grained flags.
_LEGACY_FIELDS: dict[str, tuple[str, ...]] = {
    "periodic": ("supports_periodic",),
    "restricted": (
        "supports_region",
        "supports_type_filter",
        "supports_type_pair",
    ),
    "approximate": ("supports_approximate",),
    "mbr": ("supports_mbr",),
    "workers": ("supports_workers",),
}


def _warn_legacy(what: str) -> None:
    warnings.warn(
        f"{what} is deprecated; use the supports_*/kernel_tiers "
        "EngineCapabilities fields (one-release compatibility shim)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True, init=False)
class EngineCapabilities:
    """What query varieties an engine supports.

    Each flag guards one :class:`~repro.core.request.SDHRequest`
    feature; :meth:`Engine.check` compares the request against these and
    raises a single :class:`~repro.errors.QueryError` naming every
    unsupported feature at once.  :attr:`kernel_tiers` lists the
    leaf-resolution backends the engine can run with (see
    :mod:`repro.kernels`); a request pinning ``kernel=`` to a tier the
    engine does not advertise is rejected the same way.

    The pre-kernel constructor keywords (``periodic``, ``restricted``,
    ``approximate``, ``mbr``, ``workers``) and the matching read
    properties still work behind a :class:`DeprecationWarning` for one
    release.
    """

    supports_periodic: bool = False
    supports_region: bool = False
    supports_type_filter: bool = False
    supports_type_pair: bool = False
    supports_approximate: bool = False
    supports_mbr: bool = False
    supports_workers: bool = False
    supports_weights: bool = False
    supports_cross: bool = False
    kernel_tiers: tuple[str, ...] = ("numpy",)

    def __init__(
        self,
        supports_periodic: bool = False,
        supports_region: bool = False,
        supports_type_filter: bool = False,
        supports_type_pair: bool = False,
        supports_approximate: bool = False,
        supports_mbr: bool = False,
        supports_workers: bool = False,
        supports_weights: bool = False,
        supports_cross: bool = False,
        kernel_tiers: Iterable[str] = ("numpy",),
        **legacy: bool,
    ):
        values = {
            "supports_periodic": bool(supports_periodic),
            "supports_region": bool(supports_region),
            "supports_type_filter": bool(supports_type_filter),
            "supports_type_pair": bool(supports_type_pair),
            "supports_approximate": bool(supports_approximate),
            "supports_mbr": bool(supports_mbr),
            "supports_workers": bool(supports_workers),
            "supports_weights": bool(supports_weights),
            "supports_cross": bool(supports_cross),
        }
        if legacy:
            unknown = sorted(set(legacy) - set(_LEGACY_FIELDS))
            if unknown:
                raise QueryError(
                    f"unknown EngineCapabilities field(s) {unknown}; "
                    f"known: {sorted(values) + ['kernel_tiers']} "
                    f"(deprecated: {sorted(_LEGACY_FIELDS)})"
                )
            _warn_legacy(
                "constructing EngineCapabilities with the "
                f"{sorted(legacy)} keyword(s)"
            )
            for key, flag in legacy.items():
                for name in _LEGACY_FIELDS[key]:
                    values[name] = bool(flag)
        for name, flag in values.items():
            object.__setattr__(self, name, flag)
        object.__setattr__(
            self, "kernel_tiers", _normalize_tiers(kernel_tiers)
        )

    # -- deprecated pre-kernel read API --------------------------------
    @property
    def periodic(self) -> bool:
        _warn_legacy("EngineCapabilities.periodic")
        return self.supports_periodic

    @property
    def restricted(self) -> bool:
        _warn_legacy("EngineCapabilities.restricted")
        return (
            self.supports_region
            and self.supports_type_filter
            and self.supports_type_pair
        )

    @property
    def approximate(self) -> bool:
        _warn_legacy("EngineCapabilities.approximate")
        return self.supports_approximate

    @property
    def mbr(self) -> bool:
        _warn_legacy("EngineCapabilities.mbr")
        return self.supports_mbr

    @property
    def workers(self) -> bool:
        _warn_legacy("EngineCapabilities.workers")
        return self.supports_workers


def _normalize_tiers(tiers: Iterable[str]) -> tuple[str, ...]:
    """Validate and canonicalize a kernel-tier declaration."""
    if isinstance(tiers, str):
        tiers = (tiers,)
    seen: list[str] = []
    for tier in tiers:
        name = str(tier).lower()
        if name not in KERNEL_TIERS:
            raise QueryError(
                f"unknown kernel tier {tier!r} in EngineCapabilities; "
                f"known tiers: {KERNEL_TIERS}"
            )
        if name not in seen:
            seen.append(name)
    if not seen:
        raise QueryError(
            "EngineCapabilities.kernel_tiers must name at least one tier"
        )
    if "numpy" not in seen:
        raise QueryError(
            "EngineCapabilities.kernel_tiers must include the 'numpy' "
            "fallback tier"
        )
    return tuple(seen)


def _coerce_capabilities(capabilities) -> EngineCapabilities:
    """Accept the deprecated string-set capability form.

    ``register_engine(..., capabilities={"periodic", "restricted"})``
    predates the dataclass; keep it working for one release.
    """
    if isinstance(capabilities, EngineCapabilities):
        return capabilities
    if isinstance(capabilities, (set, frozenset, list, tuple)):
        names = [str(item) for item in capabilities]
        unknown = sorted(set(names) - set(_LEGACY_FIELDS))
        if unknown:
            raise QueryError(
                f"unknown capability string(s) {unknown}; "
                f"known: {sorted(_LEGACY_FIELDS)}"
            )
        _warn_legacy(
            "registering an engine with a capability string set"
        )
        values: dict[str, bool] = {}
        for name in names:
            for fieldname in _LEGACY_FIELDS[name]:
                values[fieldname] = True
        return EngineCapabilities(**values)
    raise QueryError(
        "capabilities must be an EngineCapabilities instance "
        "(or the deprecated capability string set)"
    )


@dataclass(frozen=True)
class Engine:
    """A registered engine: a name, a runner, and its capabilities."""

    name: str
    run: Callable
    capabilities: EngineCapabilities = field(
        default_factory=EngineCapabilities
    )

    def check(
        self, request, weighted: bool = False, cross: bool = False
    ) -> None:
        """Raise :class:`QueryError` if the request needs missing features.

        ``weighted`` lets the dispatcher flag a dataset that carries
        per-particle weights even when the request itself has none (the
        request's ``weights`` field is only the per-call override);
        ``cross`` likewise flags a second operand supplied directly to
        :func:`~repro.core.query.compute_sdh` without a wire-level
        ``dataset_b`` name.
        """
        caps = self.capabilities
        missing = []
        if (
            weighted or getattr(request, "weights", None) is not None
        ) and not caps.supports_weights:
            missing.append("weighted datasets")
        if (
            cross or getattr(request, "dataset_b", None) is not None
        ) and not caps.supports_cross:
            missing.append("cross-set queries")
        if request.periodic and not caps.supports_periodic:
            missing.append("periodic boundaries")
        if request.region is not None and not caps.supports_region:
            missing.append("region-restricted queries")
        if (
            request.type_filter is not None
            and not caps.supports_type_filter
        ):
            missing.append("type-restricted queries")
        if request.type_pair is not None and not caps.supports_type_pair:
            missing.append("type-pair-restricted queries")
        if request.approximate and not caps.supports_approximate:
            missing.append("approximate mode")
        if request.use_mbr and not caps.supports_mbr:
            missing.append("MBR resolution")
        if (
            request.workers is not None
            and request.workers > 1
            and not caps.supports_workers
        ):
            missing.append("multi-process workers")
        kernel = getattr(request, "kernel", "auto")
        if kernel != "auto" and kernel not in caps.kernel_tiers:
            missing.append(f"kernel tier {kernel!r}")
        if missing:
            raise QueryError(
                f"engine {self.name!r} does not support "
                + ", ".join(missing)
            )


_REGISTRY: dict[str, Engine] = {}


def register_engine(
    name: str,
    run: Callable,
    capabilities: EngineCapabilities | None = None,
    replace: bool = False,
) -> Engine:
    """Register an engine under ``name`` and return the registry entry.

    ``capabilities`` must be an :class:`EngineCapabilities` (the
    deprecated string-set form is still coerced, with a warning); its
    kernel-tier declaration is validated at registration time so a bad
    tier fails here rather than at query time.  ``replace=False`` (the
    default) refuses to shadow an existing registration, so accidental
    double-registration fails loudly.
    """
    if not isinstance(name, str) or not name:
        raise QueryError("engine name must be a non-empty string")
    key = name.lower()
    if key == "auto":
        raise QueryError("'auto' is the dispatcher's selector, not an engine")
    if key in _REGISTRY and not replace:
        raise QueryError(
            f"engine {key!r} is already registered; pass replace=True "
            "to override"
        )
    if capabilities is None:
        capabilities = EngineCapabilities()
    else:
        capabilities = _coerce_capabilities(capabilities)
    # Re-validate even for ready-made instances: dataclasses.replace()
    # bypasses __init__-time normalization on some construction paths.
    _normalize_tiers(capabilities.kernel_tiers)
    entry = Engine(name=key, run=run, capabilities=capabilities)
    _REGISTRY[key] = entry
    return entry


def unregister_engine(name: str) -> None:
    """Remove a registration (mainly for tests plugging in fakes)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise QueryError(f"engine {key!r} is not registered")
    del _REGISTRY[key]


def get_engine(name: str) -> Engine:
    """Resolve a registered engine by name.

    The error message lists what *is* registered (plus the ``auto``
    selector), so a typo is self-diagnosing.
    """
    key = name.lower() if isinstance(name, str) else name
    entry = _REGISTRY.get(key)
    if entry is None:
        raise QueryError(
            f"unknown engine {name!r}; pick from "
            f"{('auto', *sorted(_REGISTRY))}"
        )
    return entry


def available_engines() -> dict[str, EngineCapabilities]:
    """Every registered engine's capabilities, keyed by sorted name.

    Returns a mapping (``auto`` not included).  Iterating it yields the
    engine names, so pre-kernel call sites that treated the return value
    as a name sequence (``list(...)``, ``for name in ...``, ``"grid" in
    ...``) keep working unchanged; the values expose each engine's
    :class:`EngineCapabilities`, including its ``kernel_tiers``.
    """
    return {name: _REGISTRY[name].capabilities for name in sorted(_REGISTRY)}

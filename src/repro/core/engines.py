"""Capability-based SDH engine registry.

The dispatch in :mod:`repro.core.query` used to be a hard-coded tuple
of names plus an if-chain of ``raise QueryError`` branches; adding an
engine meant editing the dispatcher.  This module turns both into data:

* an engine registers itself with :func:`register_engine`, supplying a
  runner and an :class:`EngineCapabilities` record;
* :func:`get_engine` resolves a name (or fails listing what exists);
* :meth:`Engine.check` rejects a request that asks for a feature the
  engine lacks, with one uniform error message.

The runner protocol is

``run(particles, request, spec, *, stats, rng) -> DistanceHistogram``

where ``request`` is a normalized :class:`~repro.core.request.SDHRequest`
and ``spec`` its resolved :class:`~repro.core.buckets.BucketSpec`.
The built-in engines (brute / tree / grid / parallel) are registered by
:mod:`repro.core.query` at import time; external code can plug in more
without touching the dispatcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import QueryError

__all__ = [
    "EngineCapabilities",
    "Engine",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
]


@dataclass(frozen=True)
class EngineCapabilities:
    """What query varieties an engine supports.

    Each flag guards one :class:`~repro.core.request.SDHRequest` feature;
    :meth:`Engine.check` compares the request against these and raises a
    single :class:`~repro.errors.QueryError` naming every unsupported
    feature at once.
    """

    periodic: bool = False
    restricted: bool = False
    approximate: bool = False
    mbr: bool = False
    workers: bool = False


@dataclass(frozen=True)
class Engine:
    """A registered engine: a name, a runner, and its capabilities."""

    name: str
    run: Callable
    capabilities: EngineCapabilities = field(
        default_factory=EngineCapabilities
    )

    def check(self, request) -> None:
        """Raise :class:`QueryError` if the request needs missing features."""
        caps = self.capabilities
        missing = []
        if request.periodic and not caps.periodic:
            missing.append("periodic boundaries")
        if request.restricted and not caps.restricted:
            missing.append("restricted queries")
        if request.approximate and not caps.approximate:
            missing.append("approximate mode")
        if request.use_mbr and not caps.mbr:
            missing.append("MBR resolution")
        if (
            request.workers is not None
            and request.workers > 1
            and not caps.workers
        ):
            missing.append("multi-process workers")
        if missing:
            raise QueryError(
                f"engine {self.name!r} does not support "
                + ", ".join(missing)
            )


_REGISTRY: dict[str, Engine] = {}


def register_engine(
    name: str,
    run: Callable,
    capabilities: EngineCapabilities | None = None,
    replace: bool = False,
) -> Engine:
    """Register an engine under ``name`` and return the registry entry.

    ``replace=False`` (the default) refuses to shadow an existing
    registration, so accidental double-registration fails loudly.
    """
    if not isinstance(name, str) or not name:
        raise QueryError("engine name must be a non-empty string")
    key = name.lower()
    if key == "auto":
        raise QueryError("'auto' is the dispatcher's selector, not an engine")
    if key in _REGISTRY and not replace:
        raise QueryError(
            f"engine {key!r} is already registered; pass replace=True "
            "to override"
        )
    entry = Engine(
        name=key,
        run=run,
        capabilities=capabilities or EngineCapabilities(),
    )
    _REGISTRY[key] = entry
    return entry


def unregister_engine(name: str) -> None:
    """Remove a registration (mainly for tests plugging in fakes)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise QueryError(f"engine {key!r} is not registered")
    del _REGISTRY[key]


def get_engine(name: str) -> Engine:
    """Resolve a registered engine by name.

    The error message lists what *is* registered (plus the ``auto``
    selector), so a typo is self-diagnosing.
    """
    key = name.lower() if isinstance(name, str) else name
    entry = _REGISTRY.get(key)
    if entry is None:
        raise QueryError(
            f"unknown engine {name!r}; pick from "
            f"{('auto', *sorted(_REGISTRY))}"
        )
    return entry


def available_engines() -> tuple[str, ...]:
    """Sorted names of every registered engine (``auto`` not included)."""
    return tuple(sorted(_REGISTRY))

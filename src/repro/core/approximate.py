"""ADM-SDH: the approximate SDH algorithm (paper Sec. V).

The approximate algorithm is DM-SDH stopped early: after visiting
``m + 1`` density maps, the remaining unresolved cell pairs distribute
their counts heuristically instead of recursing further, and **no**
point-to-point distance is ever computed.  Its cost (Eq. 5) is

    T(N) ~ I * 2^{(2d-1) m}  ~  I * (1/epsilon)^{2d-1}

independent of the dataset size N; the analytical model of
:mod:`repro.core.analysis` converts a requested error bound ``epsilon``
into the number of levels ``m`` to visit (rule of thumb:
``m = log2(1 / epsilon)``) — or, in anytime mode, converts an operation
budget into the deepest affordable ``m`` by inverting Eq. (3).

This module is a thin, user-facing layer over
:class:`repro.core.dm_sdh_grid.GridSDHEngine`'s approximate mode.
"""

from __future__ import annotations

import numpy as np

from ..data.particles import ParticleSet
from ..errors import QueryError
from ..quadtree.grid import GridPyramid
from .analysis import choose_levels_for_budget, choose_levels_for_error
from .buckets import BucketSpec, OverflowPolicy
from .dm_sdh_grid import GridSDHEngine, _resolve_spec
from .heuristics import Allocator, make_allocator
from .histogram import DistanceHistogram
from .instrumentation import SDHStats

__all__ = ["adm_sdh", "levels_for_error"]


def adm_sdh(
    data: GridPyramid | ParticleSet,
    spec: BucketSpec | None = None,
    bucket_width: float | None = None,
    levels: int | None = None,
    error_bound: float | None = None,
    op_budget: float | None = None,
    heuristic: int | str | Allocator = 3,
    use_mbr: bool = False,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    stats: SDHStats | None = None,
    rng: np.random.Generator | int | None = None,
    periodic: bool = False,
) -> DistanceHistogram:
    """Approximate SDH with guaranteed-bounded unresolved mass.

    Parameters
    ----------
    data:
        A pre-built :class:`GridPyramid` or a raw :class:`ParticleSet`.
    spec / bucket_width:
        Bucket specification, as in the exact engines.
    levels:
        The paper's ``m``: number of density maps visited below the
        start map.  Mutually exclusive with ``error_bound``.
    error_bound:
        Desired bound ``epsilon`` on the fraction of distances left to
        the heuristic (the conservative guarantee of Sec. V).  The
        required ``m`` is read off the covering-factor model
        (:func:`repro.core.analysis.choose_levels_for_error`).
    op_budget:
        Anytime mode: spend at most roughly this many cell-resolution
        operations; the deepest affordable ``m`` comes from inverting
        the Eq.-(3) cost model against the actual start-map pair count.
    heuristic:
        Which Sec.-V heuristic distributes the unresolved counts: 1-4 or
        an :class:`Allocator` instance.  Defaults to 3 (proportional),
        the best constant-time heuristic in the paper's experiments.
    use_mbr / policy / stats / rng:
        As in the exact engines.
    """
    given = sum(
        value is not None for value in (levels, error_bound, op_budget)
    )
    if given != 1:
        raise QueryError(
            "provide exactly one of levels / error_bound / op_budget"
        )

    if isinstance(data, GridPyramid):
        pyramid = data
    else:
        pyramid = GridPyramid(data, with_mbr=use_mbr)

    resolved_spec = _resolve_spec(
        spec, bucket_width, pyramid.particles, periodic=periodic
    )
    if levels is None and error_bound is not None:
        levels = levels_for_error(
            error_bound,
            num_buckets=resolved_spec.num_buckets,
            dim=pyramid.dim,
        )
    elif levels is None:
        assert op_budget is not None
        levels = choose_levels_for_budget(
            _start_pair_count(pyramid, resolved_spec),
            op_budget,
            dim=pyramid.dim,
        )

    engine = GridSDHEngine(
        pyramid,
        spec=resolved_spec,
        use_mbr=use_mbr,
        policy=policy,
        stats=stats,
        stop_after_levels=levels,
        allocator=make_allocator(heuristic),
        rng=rng,
        periodic=periodic,
    )
    return engine.run()


def _start_pair_count(pyramid: GridPyramid, spec) -> float:
    """Non-empty cell pairs on the map DM-SDH would start from."""
    if spec.low == 0.0:
        level = pyramid.start_level_for(float(spec.edges[1]))
        if level is None:
            level = pyramid.leaf_level
    else:
        level = pyramid.leaf_level
    import numpy as _np

    nonempty = int(_np.count_nonzero(pyramid.counts(level)))
    return nonempty * (nonempty - 1) / 2.0


def levels_for_error(
    error_bound: float,
    num_buckets: int,
    dim: int = 2,
) -> int:
    """Levels ``m`` to visit so unresolved mass stays below the bound.

    Thin forwarding wrapper over the analytical model; kept here so the
    approximate API is self-contained.
    """
    if not 0 < error_bound < 1:
        raise QueryError(
            f"error_bound must be in (0, 1), got {error_bound}"
        )
    return choose_levels_for_error(error_bound, num_buckets, dim)

"""Histogram bucket specifications.

Section II of the paper defines the *standard* SDH query: ``l`` buckets
of equal width ``p`` covering ``[0, l*p]``, the last bucket closed so the
maximum pairwise distance lands in bucket ``l-1``.  It also notes the
extension to non-uniform bucket widths, which costs ``O(log l)`` per
lookup instead of ``O(1)``.  Both live here:

* :class:`UniformBuckets` — the standard query (constant-time lookup via
  ``floor(D / p)``);
* :class:`CustomBuckets` — arbitrary monotone edges (binary-search
  lookup).

All SDH engines talk to the :class:`BucketSpec` interface only, so every
algorithm in the library supports both forms, exactly as claimed in the
paper.

A shared *edge convention* keeps cell resolution consistent with direct
distance binning (see DESIGN.md): a distance maps to the bucket whose
half-open range contains it; a distance exactly equal to the overall
upper edge is clamped into the last bucket.  Distances beyond the upper
edge are governed by :class:`OverflowPolicy`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from enum import Enum
from typing import Sequence

import numpy as np

from ..errors import BucketSpecError, DistanceOverflowError

__all__ = ["OverflowPolicy", "BucketSpec", "UniformBuckets", "CustomBuckets"]

# Relative tolerance when deciding whether a distance that landed just
# past the final edge is a floating-point artefact of the edge itself.
_EDGE_RTOL = 1e-9


class OverflowPolicy(Enum):
    """What to do with distances beyond the last bucket edge."""

    RAISE = "raise"  #: raise :class:`DistanceOverflowError`
    CLAMP = "clamp"  #: count them in the last bucket
    DROP = "drop"  #: silently ignore them


class BucketSpec(ABC):
    """Interface for a series of distance buckets ``[e_0, e_1, ..., e_l]``.

    Buckets are ``[e_i, e_{i+1})`` for ``i < l-1`` and ``[e_{l-1}, e_l]``
    for the last one, matching the paper's standard query where the final
    edge is the maximum pairwise distance.
    """

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def num_buckets(self) -> int:
        """Number of buckets ``l``."""

    @property
    @abstractmethod
    def edges(self) -> np.ndarray:
        """Float array of ``l + 1`` monotonically increasing edges."""

    @property
    def low(self) -> float:
        """Lower edge of the first bucket (``r_0``)."""
        return float(self.edges[0])

    @property
    def high(self) -> float:
        """Upper edge of the last bucket (``r_l``)."""
        return float(self.edges[-1])

    @property
    def widths(self) -> np.ndarray:
        """Per-bucket widths."""
        return np.diff(self.edges)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @abstractmethod
    def bucket_of(self, distances: np.ndarray) -> np.ndarray:
        """Bucket index for each distance, **without** overflow handling.

        Returns an int64 array; distances below ``low`` map to ``-1`` and
        distances above ``high`` (beyond tolerance) map to
        ``num_buckets``.  Engines needing policy enforcement should call
        :meth:`bin_counts` or :meth:`apply_policy` instead.
        """

    def apply_policy(
        self,
        distances: np.ndarray,
        policy: OverflowPolicy = OverflowPolicy.RAISE,
    ) -> np.ndarray:
        """Bucket indices with the overflow policy applied.

        Under ``DROP`` the returned array may be shorter than the input
        (out-of-range distances removed); under ``CLAMP`` every distance
        maps to a valid index; under ``RAISE`` any out-of-range distance
        aborts with :class:`DistanceOverflowError`.
        """
        distances = np.asarray(distances, dtype=float)
        idx = self.bucket_of(distances)
        out_low = idx < 0
        out_high = idx >= self.num_buckets
        if policy is OverflowPolicy.RAISE:
            if out_low.any() or out_high.any():
                bad = distances[out_low | out_high]
                raise DistanceOverflowError(
                    f"{bad.size} distance(s) outside [{self.low}, "
                    f"{self.high}], e.g. {bad.flat[0]!r}"
                )
            return idx
        if policy is OverflowPolicy.CLAMP:
            return np.clip(idx, 0, self.num_buckets - 1)
        keep = ~(out_low | out_high)
        return idx[keep]

    def bin_counts(
        self,
        distances: np.ndarray,
        weights: np.ndarray | None = None,
        policy: OverflowPolicy = OverflowPolicy.RAISE,
    ) -> np.ndarray:
        """Histogram an array of distances into per-bucket counts.

        Returns a float64 array of length ``num_buckets`` (float so that
        weighted/approximate counts can share the code path; exact
        engines produce integral values).
        """
        distances = np.asarray(distances, dtype=float)
        if policy is OverflowPolicy.DROP and weights is not None:
            idx_all = self.bucket_of(distances)
            keep = (idx_all >= 0) & (idx_all < self.num_buckets)
            idx = idx_all[keep]
            weights = np.asarray(weights, dtype=float)[keep]
        else:
            idx = self.apply_policy(distances, policy)
        if weights is None:
            return np.bincount(idx, minlength=self.num_buckets).astype(float)
        return np.bincount(
            idx, weights=weights, minlength=self.num_buckets
        ).astype(float)

    def bin_counts_query(
        self,
        distances: np.ndarray,
        policy: OverflowPolicy = OverflowPolicy.RAISE,
    ) -> np.ndarray:
        """Histogram distances for a *query*: below-range is not an error.

        An SDH query with ``r_0 > 0`` simply does not count distances
        below ``r_0``; only the high side is governed by ``policy``.
        For the standard query (``low == 0``) this is identical to
        :meth:`bin_counts`.
        """
        distances = np.asarray(distances, dtype=float)
        if self.low > 0:
            distances = distances[distances >= self.low]
        return self.bin_counts(distances, policy=policy)

    # ------------------------------------------------------------------
    # Cell resolution (the heart of DM-SDH)
    # ------------------------------------------------------------------
    def _bucket_index_scalar(self, d: float) -> int:
        """Scalar :meth:`bucket_of` for one distance.

        The node-recursive engines call :meth:`resolve_range` once per
        visited cell pair, so this path must not pay per-call numpy
        array construction.  Subclasses override with an O(1) or
        O(log l) pure-Python lookup; this fallback keeps exotic
        subclasses correct by deferring to their vectorized
        :meth:`bucket_of`.
        """
        return int(self.bucket_of(np.asarray([d], dtype=float))[0])

    def resolve_range(self, u: float, v: float) -> int | None:
        """Bucket that the whole distance range ``[u, v]`` falls into.

        Returns the bucket index when every distance in ``[u, v]`` is
        guaranteed to land in one bucket (the two cells *resolve*, paper
        Sec. III-B), else ``None``.
        """
        lo = self._bucket_index_scalar(float(u))
        if lo < 0 or lo >= self.num_buckets:
            return None
        if lo != self._bucket_index_scalar(float(v)):
            return None
        return lo

    def resolve_ranges(
        self, u: np.ndarray, v: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized bucket indices of range endpoints.

        For each pair the range resolves iff the two returned indices are
        equal (and in range).  The upper endpoint uses the same clamping
        convention as :meth:`bucket_of`, so resolution can never disagree
        with direct binning of the realized distances.
        """
        return self.bucket_of(u), self.bucket_of(v)

    def overlapped_buckets(self, u: float, v: float) -> tuple[int, int]:
        """Inclusive index range of buckets overlapped by ``[u, v]``.

        Used by the approximate heuristics (Sec. V, Fig. 7) to know which
        buckets receive shares of an unresolved pair.  Endpoints are
        clipped into the valid bucket range.
        """
        last = self.num_buckets - 1
        lo = min(max(self._bucket_index_scalar(float(u)), 0), last)
        hi = min(max(self._bucket_index_scalar(float(v)), 0), last)
        return lo, hi

    def __len__(self) -> int:
        return self.num_buckets

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BucketSpec):
            return NotImplemented
        return self.num_buckets == other.num_buckets and bool(
            np.array_equal(self.edges, other.edges)
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.num_buckets, self.edges.tobytes()))


class UniformBuckets(BucketSpec):
    """The paper's standard SDH buckets: equal width ``p`` starting at 0.

    ``bucket_of`` is a constant-time ``floor(D / p)``, as assumed by the
    complexity analysis in Sec. II.
    """

    def __init__(self, width: float, num_buckets: int):
        if not math.isfinite(width) or width <= 0:
            raise BucketSpecError(f"bucket width must be positive, got {width}")
        if num_buckets < 1:
            raise BucketSpecError(
                f"need at least one bucket, got {num_buckets}"
            )
        self._width = float(width)
        self._num = int(num_buckets)
        self._edges = np.arange(self._num + 1, dtype=float) * self._width
        self._high_tol = float(self._edges[-1]) * (1.0 + _EDGE_RTOL)

    # ------------------------------------------------------------------
    @staticmethod
    def cover(max_distance: float, width: float) -> "UniformBuckets":
        """Buckets of width ``width`` covering ``[0, max_distance]``.

        The standard query sets the last edge to the maximum pairwise
        distance; this helper rounds the bucket count up so the whole
        range is covered.
        """
        if max_distance <= 0:
            raise BucketSpecError(
                f"max_distance must be positive, got {max_distance}"
            )
        num = max(1, int(math.ceil(max_distance / width - _EDGE_RTOL)))
        return UniformBuckets(width, num)

    @staticmethod
    def with_count(max_distance: float, num_buckets: int) -> "UniformBuckets":
        """``num_buckets`` equal buckets exactly covering ``[0, max_distance]``.

        This is how the paper's experiments parameterize queries: a total
        bucket count ``l`` over the domain diameter, giving
        ``p = max_distance / l``.
        """
        if max_distance <= 0:
            raise BucketSpecError(
                f"max_distance must be positive, got {max_distance}"
            )
        if num_buckets < 1:
            raise BucketSpecError(
                f"need at least one bucket, got {num_buckets}"
            )
        return UniformBuckets(max_distance / num_buckets, num_buckets)

    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """The bucket width ``p``."""
        return self._width

    @property
    def num_buckets(self) -> int:
        return self._num

    @property
    def edges(self) -> np.ndarray:
        return self._edges

    def bucket_of(self, distances: np.ndarray) -> np.ndarray:
        distances = np.asarray(distances, dtype=float)
        idx = np.floor(distances / self._width).astype(np.int64)
        # Clamp the closed upper edge of the last bucket: D == l*p (up to
        # floating-point noise of the edge itself) belongs to bucket l-1.
        high = self.high
        at_edge = (idx == self._num) & (
            distances <= high * (1.0 + _EDGE_RTOL)
        )
        idx[at_edge] = self._num - 1
        idx[distances < 0] = -1
        return idx

    def _bucket_index_scalar(self, d: float) -> int:
        # Mirrors bucket_of exactly: floor(d / p), the closed last edge
        # clamped (within _EDGE_RTOL) into the final bucket.
        if d < 0:
            return -1
        idx = int(d / self._width)
        if idx == self._num and d <= self._high_tol:
            return self._num - 1
        return idx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformBuckets(width={self._width:g}, l={self._num})"


class CustomBuckets(BucketSpec):
    """Non-uniform buckets defined by an explicit edge sequence.

    Lookup is ``O(log l)``, matching the paper's remark in Sec. II that
    binary search over the edge index is the only complication of
    non-uniform widths (the tree-structured bucket index of Buccafurri
    et al.): array lookups go through :func:`numpy.searchsorted`, the
    per-cell-pair scalar path through :func:`bisect.bisect_right` over
    a cached plain-Python edge list, so the node-recursive engines
    never pay numpy array construction per resolved pair.
    """

    def __init__(self, edges: Sequence[float]):
        arr = np.asarray(list(edges), dtype=float)
        if arr.ndim != 1 or arr.size < 2:
            raise BucketSpecError("need at least two edges")
        if not np.all(np.isfinite(arr)):
            raise BucketSpecError("edges must be finite")
        if not np.all(np.diff(arr) > 0):
            raise BucketSpecError("edges must be strictly increasing")
        if arr[0] < 0:
            raise BucketSpecError("edges must be non-negative distances")
        self._edges = arr
        # Cached for the scalar bisect path: plain floats beat numpy
        # scalars by ~10x in bisect_right comparisons.
        self._edge_list = arr.tolist()
        self._high_tol = float(arr[-1]) * (1.0 + _EDGE_RTOL)

    @property
    def num_buckets(self) -> int:
        return self._edges.size - 1

    @property
    def edges(self) -> np.ndarray:
        return self._edges

    def bucket_of(self, distances: np.ndarray) -> np.ndarray:
        distances = np.asarray(distances, dtype=float)
        idx = np.searchsorted(self._edges, distances, side="right") - 1
        idx = idx.astype(np.int64)
        high = self.high
        at_edge = (distances >= high) & (
            distances <= high * (1.0 + _EDGE_RTOL)
        )
        idx[at_edge] = self.num_buckets - 1
        idx[distances < self._edges[0]] = -1
        idx[distances > high * (1.0 + _EDGE_RTOL)] = self.num_buckets
        return idx

    def _bucket_index_scalar(self, d: float) -> int:
        # Mirrors bucket_of exactly, including the closed-last-edge
        # clamp and the below-low / above-high sentinels.
        edges = self._edge_list
        high = edges[-1]
        if d >= high:
            return self.num_buckets - 1 if d <= self._high_tol \
                else self.num_buckets
        if d < edges[0]:
            return -1
        return bisect_right(edges, d) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CustomBuckets(l={self.num_buckets}, high={self.high:g})"

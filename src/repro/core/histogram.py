"""The distance-histogram result container.

The output of every SDH engine is a :class:`DistanceHistogram`: the
bucket spec it was computed against plus one (possibly fractional, for
the approximate algorithm) count per bucket.  The class also carries the
error metric of the paper's Sec. VI-B (``sum |h_i - h'_i| / sum h_i``)
and the conversion hooks the physics layer builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import QueryError
from .buckets import BucketSpec

__all__ = ["DistanceHistogram"]


@dataclass
class DistanceHistogram:
    """Counts of pairwise distances per bucket.

    Attributes
    ----------
    spec:
        The bucket specification the counts refer to.
    counts:
        Float array of length ``spec.num_buckets``.  Exact engines
        produce integral values; the approximate engine may distribute
        fractional shares (heuristics 2 and 3 of Sec. V).
    """

    spec: BucketSpec
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.counts is None:
            self.counts = np.zeros(self.spec.num_buckets, dtype=float)
        else:
            self.counts = np.asarray(self.counts, dtype=float).copy()
            if self.counts.shape != (self.spec.num_buckets,):
                raise QueryError(
                    f"counts shape {self.counts.shape} does not match "
                    f"{self.spec.num_buckets} buckets"
                )

    # ------------------------------------------------------------------
    # Mutation (used by the engines while accumulating)
    # ------------------------------------------------------------------
    def add(self, bucket: int, amount: float) -> None:
        """Add ``amount`` pair-counts to one bucket."""
        self.counts[bucket] += amount

    def add_counts(self, counts: np.ndarray) -> None:
        """Accumulate a whole per-bucket count array."""
        counts = np.asarray(counts, dtype=float)
        if counts.shape != self.counts.shape:
            raise QueryError("count array shape mismatch")
        self.counts += counts

    def merge(self, other: "DistanceHistogram") -> "DistanceHistogram":
        """Sum of two histograms over the same spec (new object)."""
        if self.spec != other.spec:
            raise QueryError("cannot merge histograms with different specs")
        return DistanceHistogram(self.spec, self.counts + other.counts)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """Total number of pair-distances recorded."""
        return float(self.counts.sum())

    @property
    def edges(self) -> np.ndarray:
        """Bucket edges, forwarded from the spec."""
        return self.spec.edges

    @property
    def centers(self) -> np.ndarray:
        """Bucket mid-points (useful for plotting and for the RDF)."""
        edges = self.spec.edges
        return (edges[:-1] + edges[1:]) / 2.0

    def as_integers(self) -> np.ndarray:
        """Counts rounded to exact integers.

        Raises :class:`QueryError` when the histogram holds genuinely
        fractional counts (i.e. it came from the approximate engine with
        a fractional heuristic), to prevent silently presenting an
        approximation as exact.
        """
        rounded = np.rint(self.counts)
        if not np.allclose(self.counts, rounded, rtol=0, atol=1e-6):
            raise QueryError("histogram holds fractional counts")
        return rounded.astype(np.int64)

    def density(self) -> np.ndarray:
        """Counts normalized to a probability density over distance."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts)
        return self.counts / (total * self.spec.widths)

    # ------------------------------------------------------------------
    # Comparison (paper Sec. VI-B)
    # ------------------------------------------------------------------
    def error_rate(self, reference: "DistanceHistogram") -> float:
        """The paper's error metric ``sum_i |h_i - h'_i| / sum_i h_i``.

        ``self`` plays the role of the approximate histogram ``h'`` and
        ``reference`` the exact one ``h``.
        """
        if self.spec != reference.spec:
            raise QueryError("error_rate requires identical bucket specs")
        denom = reference.counts.sum()
        if denom == 0:
            return 0.0
        return float(np.abs(reference.counts - self.counts).sum() / denom)

    def max_bucket_deviation(self, reference: "DistanceHistogram") -> float:
        """Largest single-bucket absolute deviation, as a fraction of total."""
        if self.spec != reference.spec:
            raise QueryError("comparison requires identical bucket specs")
        denom = reference.counts.sum()
        if denom == 0:
            return 0.0
        return float(np.abs(reference.counts - self.counts).max() / denom)

    def allclose(self, other: "DistanceHistogram", atol: float = 1e-9) -> bool:
        """Near-equality of counts over the same spec."""
        return self.spec == other.spec and bool(
            np.allclose(self.counts, other.counts, rtol=0, atol=atol)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistanceHistogram):
            return NotImplemented
        return self.spec == other.spec and bool(
            np.array_equal(self.counts, other.counts)
        )

    def __iter__(self) -> Iterator[tuple[float, float, float]]:
        """Yield ``(lower_edge, upper_edge, count)`` per bucket."""
        edges = self.spec.edges
        for i, count in enumerate(self.counts):
            yield float(edges[i]), float(edges[i + 1]), float(count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistanceHistogram(l={self.spec.num_buckets}, "
            f"total={self.total:g})"
        )

    def to_text(self, width: int = 50) -> str:
        """A small ASCII rendering, handy in examples and the CLI."""
        lines = []
        peak = self.counts.max() if self.counts.size else 0.0
        for lo, hi, count in self:
            bar = ""
            if peak > 0:
                bar = "#" * int(round(width * count / peak))
            lines.append(f"[{lo:10.4f}, {hi:10.4f})  {count:14.1f}  {bar}")
        return "\n".join(lines)

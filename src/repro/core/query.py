"""High-level SDH query interface.

The canonical entry points take an :class:`~repro.core.request.SDHRequest`
— one frozen dataclass describing the whole query — and dispatch through
the capability-based engine registry (:mod:`repro.core.engines`):

* ``compute_sdh(particles, request)`` — one-shot;
* ``SDHQuery.run(request)`` — against a prebuilt, reusable plan (the
  scenario the paper's storage discussion assumes, where the quadtree
  is a persistent index answering many queries);
* the classic keyword style (``compute_sdh(particles, num_buckets=8)``)
  still works as a thin shim that builds the request internally.

Registered engines:

* ``brute`` — the O(N^2) baseline;
* ``tree`` — the node-recursive reference engine (the paper's in-index
  pruning for region- and type-restricted queries);
* ``grid`` — the vectorized engine (the ``auto`` default; restricted
  queries run on it by subsetting, approximate requests run ADM-SDH);
* ``parallel`` — the multi-core engine (:mod:`repro.parallel`), chosen
  by ``auto`` whenever ``workers`` asks for more than one process.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..data.particles import ParticleSet
from ..errors import QueryError
from ..geometry import Region
from ..observability import trace_span
from ..quadtree.grid import GridPyramid
from ..quadtree.tree import DensityMapTree
from .approximate import adm_sdh
from .brute_force import brute_force_sdh
from .buckets import BucketSpec, OverflowPolicy
from ..kernels import available_kernel_tiers
from .dm_sdh import dm_sdh_tree
from .dm_sdh_grid import dm_sdh_grid
from .engines import EngineCapabilities, get_engine, register_engine
from .heuristics import Allocator
from .histogram import DistanceHistogram
from .instrumentation import SDHStats, publish_stats
from .request import SDHRequest

__all__ = [
    "compute_sdh",
    "build_plan",
    "SDHQuery",
    "resolve_engine_name",
]


def compute_sdh(
    particles: ParticleSet,
    request: SDHRequest | BucketSpec | float | None = None,
    *,
    b: ParticleSet | None = None,
    stats: SDHStats | None = None,
    rng: np.random.Generator | int | None = None,
    **kwargs,
) -> DistanceHistogram:
    """Compute a spatial distance histogram.

    The primary form is ``compute_sdh(particles, SDHRequest(...))``;
    see :class:`~repro.core.request.SDHRequest` for every query knob.
    ``stats`` and ``rng`` are runtime arguments (counters and sampling
    randomness), not part of the query itself.

    ``b`` makes the query a *cross-set* SDH: the histogram counts every
    pair with one particle from ``particles`` and one from ``b``
    (``N_a * N_b`` pairs), never intra-set pairs.  Both sets must share
    the simulation box and dimensionality.  ``request.weights``
    attaches per-particle weights to ``particles`` for this call
    (equivalent to ``particles.with_weights(...)``); ``b`` carries its
    own weights, if any, on the set itself.

    Two shims keep older call styles working, both deprecated in favour
    of an explicit :class:`SDHRequest` (one-release compatibility):

    * plain keywords (``compute_sdh(data, num_buckets=8,
      engine="grid")``) build the request internally — same semantics,
      with a :class:`DeprecationWarning`;
    * a bare number or :class:`BucketSpec` as the second positional
      argument is read as ``bucket_width`` / ``spec``.

    Passing *both* a request and keyword overrides is ambiguous and
    also deprecated: the keywords win, a :class:`DeprecationWarning` is
    emitted, and callers should use ``request.replace(...)`` instead.
    """
    request = _coerce_request(request, kwargs)
    particles, request = _apply_request_weights(particles, request)
    b = _check_cross_operand(particles, request, b)
    request = _maybe_plan(particles, request, b=b)
    spec = request.resolved_spec(particles)
    name = resolve_engine_name(request)
    engine = get_engine(name)
    weighted = particles.weighted or (b is not None and b.weighted)
    engine.check(request, weighted=weighted, cross=b is not None)
    if stats is None:
        stats = SDHStats()
    extra = {} if b is None else {"b": b}
    with trace_span("query", engine=name, particles=particles.size):
        result = engine.run(
            particles, request, spec, stats=stats, rng=rng, **extra
        )
    publish_stats(stats, name)
    return result


def _apply_request_weights(
    particles: ParticleSet, request: SDHRequest
) -> tuple[ParticleSet, SDHRequest]:
    """Fold ``request.weights`` into the dataset for this call.

    The request field is the wire/per-call override; engines only ever
    see weights on the :class:`ParticleSet` itself.  Returns the
    (possibly reweighted) dataset and the request with the field
    cleared, so downstream caching and checks key off the dataset.
    """
    if request.weights is None:
        return particles, request
    weights = np.asarray(request.weights, dtype=float)
    if weights.size != particles.size:
        raise QueryError(
            f"request carries {weights.size} weight(s) for a dataset of "
            f"{particles.size} particle(s)"
        )
    return particles.with_weights(weights), request.replace(weights=None)


def _check_cross_operand(
    particles: ParticleSet, request: SDHRequest, b: ParticleSet | None
) -> ParticleSet | None:
    """Validate the second operand of a cross-set query.

    ``request.dataset_b`` is the wire-level name of the second set; at
    the library level the caller must supply the actual
    :class:`ParticleSet` via ``compute_sdh(a, request, b=...)``.
    """
    if b is None:
        if request.dataset_b is not None:
            raise QueryError(
                f"request names dataset_b={request.dataset_b!r} but no "
                "second particle set was supplied; call "
                "compute_sdh(a, request, b=...)"
            )
        return None
    if not isinstance(b, ParticleSet):
        raise QueryError(
            f"b must be a ParticleSet, got {type(b).__name__}"
        )
    if b.dim != particles.dim:
        raise QueryError(
            f"cross-set operands disagree on dimensionality "
            f"({particles.dim} vs {b.dim})"
        )
    if b.box != particles.box:
        raise QueryError(
            "cross-set operands must share the simulation box; "
            "construct both sets with an explicit common AABB"
        )
    if request.restricted:
        raise QueryError(
            "cross-set queries cannot be combined with region or type "
            "restrictions"
        )
    if request.approximate:
        raise QueryError(
            "cross-set queries cannot run in approximate mode"
        )
    return b


def resolve_engine_name(request: SDHRequest) -> str:
    """Map ``engine="auto"`` to a concrete registered engine.

    This is the *static* fallback rule (``planner="off"``): ``auto``
    means the vectorized grid engine, except that a request for more
    than one worker selects the multi-core parallel engine.  With the
    planner on (the default), ``auto`` requests are routed by
    :func:`repro.planner.plan_request` before reaching this rule.
    Explicit names pass through untouched (the registry validates them).
    """
    if request.engine != "auto":
        return request.engine
    if request.workers is not None and request.workers > 1:
        return "parallel"
    return "grid"


def _maybe_plan(
    particles, request: SDHRequest, cache_hot: bool = False, b=None
) -> SDHRequest:
    """Route an ``auto`` request through the cost-based planner.

    Engages when the planner is on and there is a decision to make —
    the engine is unresolved, or a latency SLO must be admitted.  The
    planned request comes back with a concrete engine and
    ``planner="off"``, so it flows through the static path below
    without re-planning.
    """
    if request.planner != "auto":
        return request
    if request.engine != "auto" and request.latency_budget_ms is None:
        return request
    # Imported lazily: the planner package sits above core in the
    # layering (it also feeds the service and CLI).
    from ..planner import plan_request

    return plan_request(
        request, particles, cache_hot=cache_hot, b=b
    ).request


def _coerce_request(request, kwargs: dict) -> SDHRequest:
    """Normalize the shim surface into one validated SDHRequest."""
    if request is not None and not isinstance(request, SDHRequest):
        if isinstance(request, BucketSpec):
            kwargs.setdefault("spec", request)
        elif isinstance(request, (int, float)) and not isinstance(
            request, bool
        ):
            kwargs.setdefault("bucket_width", float(request))
        else:
            raise QueryError(
                "the second argument must be an SDHRequest, a BucketSpec "
                f"or a bucket width, got {type(request).__name__}"
            )
        request = None
    if request is None:
        if kwargs:
            warnings.warn(
                "keyword-style compute_sdh is deprecated; pass an "
                "SDHRequest (one-release compatibility shim)",
                DeprecationWarning,
                stacklevel=3,
            )
        request = SDHRequest(**kwargs)
    elif kwargs:
        warnings.warn(
            "passing keyword overrides alongside an SDHRequest is "
            "deprecated; build the query with request.replace(...)",
            DeprecationWarning,
            stacklevel=3,
        )
        request = request.replace(**kwargs)
    return request.normalize()


# ----------------------------------------------------------------------
# Engine runners (registered at the bottom of the module)
# ----------------------------------------------------------------------
def _combined_cross_set(a: ParticleSet, b: ParticleSet) -> ParticleSet:
    """Concatenate the operands of a cross-set query into one set.

    The DM engines index the union and count only pairs whose sides
    differ; the side label rides along as the type array (the cross
    query rejects type restrictions, so the slot is free).  When either
    side is weighted, the other defaults to unit weights so one exact
    accumulation covers both.
    """
    positions = np.vstack((a.positions, b.positions))
    sides = np.concatenate(
        [
            np.zeros(a.size, dtype=np.int64),
            np.ones(b.size, dtype=np.int64),
        ]
    )
    weights = None
    if a.weighted or b.weighted:
        weights = np.concatenate(
            [
                a.weights if a.weighted else np.ones(a.size),
                b.weights if b.weighted else np.ones(b.size),
            ]
        )
    return ParticleSet(positions, box=a.box, types=sides, weights=weights)


def _run_brute(particles, request, spec, *, stats, rng, b=None):
    if b is not None:
        from .brute_force import brute_force_cross_sdh

        return brute_force_cross_sdh(
            particles, b, spec, policy=request.policy,
            stats=stats or SDHStats(), periodic=request.periodic,
            kernel=request.kernel,
        )
    filtered = _filter_brute(
        particles, request.region, request.type_filter, request.type_pair
    )
    if filtered is not None:
        particles_a, particles_b = filtered
        if particles_b is not None:
            from .brute_force import brute_force_cross_sdh

            return brute_force_cross_sdh(
                particles_a, particles_b, spec, policy=request.policy,
                stats=stats or SDHStats(), periodic=request.periodic,
                kernel=request.kernel,
            )
        particles = particles_a
    return brute_force_sdh(
        particles, spec=spec, policy=request.policy,
        stats=stats or SDHStats(), periodic=request.periodic,
        kernel=request.kernel,
    )


def _run_tree(particles, request, spec, *, stats, rng, b=None):
    if b is not None:
        # Cross-set on the reference engine: index the union with side
        # labels as types and reuse the type-pair machinery — a (0, 1)
        # pair is exactly "one particle from each side".
        combined = _combined_cross_set(particles, b)
        tree = DensityMapTree(combined, with_mbr=request.use_mbr)
        return dm_sdh_tree(
            tree,
            spec=spec,
            use_mbr=request.use_mbr,
            type_pair=(0, 1),
            policy=request.policy,
            stats=stats,
            kernel=request.kernel,
        )
    tree = DensityMapTree(particles, with_mbr=request.use_mbr)
    return dm_sdh_tree(
        tree,
        spec=spec,
        use_mbr=request.use_mbr,
        region=request.region,
        type_filter=request.type_filter,
        type_pair=request.type_pair,
        policy=request.policy,
        stats=stats,
        kernel=request.kernel,
    )


def _run_grid(particles, request, spec, *, stats, rng, b=None):
    if b is not None:
        combined = _combined_cross_set(particles, b)
        return dm_sdh_grid(
            combined, spec=spec, use_mbr=request.use_mbr,
            policy=request.policy, stats=stats, periodic=request.periodic,
            kernel=request.kernel, cross_split=particles.size,
        )
    if request.approximate:
        if particles.weighted:
            raise QueryError(
                "weighted queries cannot run in approximate mode "
                "(fractional allocation is not exact)"
            )
        return adm_sdh(
            particles,
            spec=spec,
            levels=request.levels,
            error_bound=request.error_bound,
            heuristic=request.heuristic,
            use_mbr=request.use_mbr,
            policy=request.policy,
            stats=stats,
            rng=rng,
            periodic=request.periodic,
        )

    def run_full(subset: ParticleSet) -> DistanceHistogram:
        return dm_sdh_grid(
            subset, spec=spec, use_mbr=request.use_mbr,
            policy=request.policy, stats=stats, periodic=request.periodic,
            kernel=request.kernel,
        )

    def run_cross(sa: ParticleSet, sb: ParticleSet) -> DistanceHistogram:
        return dm_sdh_grid(
            _combined_cross_set(sa, sb), spec=spec,
            use_mbr=request.use_mbr, policy=request.policy, stats=stats,
            periodic=request.periodic, kernel=request.kernel,
            cross_split=sa.size,
        )

    if request.restricted:
        return _restricted_subsets(
            particles, spec, request, run_full, run_cross
        )
    return run_full(particles)


def _run_parallel(particles, request, spec, *, stats, rng, b=None):
    if b is not None:  # pragma: no cover - capability check rejects first
        raise QueryError("engine 'parallel' does not support cross-set queries")
    # Imported lazily: repro.parallel imports this module's siblings,
    # and the registry must be populated before the first query anyway.
    from ..parallel.engine import parallel_sdh

    def run_full(subset) -> DistanceHistogram:
        return parallel_sdh(
            subset, spec=spec, workers=request.workers,
            policy=request.policy, stats=stats, periodic=request.periodic,
            kernel=request.kernel,
        )

    if request.restricted:
        return _restricted_subsets(particles, spec, request, run_full)
    return run_full(particles)


def _restricted_subsets(
    particles: ParticleSet,
    spec: BucketSpec,
    request: SDHRequest,
    run_full,
    run_cross=None,
) -> DistanceHistogram:
    """Restricted queries on a plain engine via subsetting.

    The paper's in-index approach (engine="tree") prunes inside the
    prebuilt quadtree; materializing the qualifying subset and running
    the plain algorithm is equivalent and, in this implementation,
    usually faster.  Cross-type histograms use the exact identity
    ``h(A x B) = h(A u B) - h(A) - h(B)`` for disjoint A, B — except on
    weighted datasets, where the three terms are independently rounded
    doubles and the subtraction would be off by an ulp from the engines
    that count the cross pairs directly; those run the true cross-set
    path (``run_cross``) instead.
    """
    current = particles
    if request.region is not None:
        mask = request.region.contains_points(current.positions)
        if not mask.any():
            raise QueryError("query region contains no particles")
        current = current.select(mask)

    def run(subset: ParticleSet) -> DistanceHistogram:
        if subset.size < 2:
            return DistanceHistogram(spec)
        return run_full(subset)

    if request.type_filter is not None:
        return run(current.of_type(request.type_filter))
    if request.type_pair is not None:
        pair = request.type_pair
        _require_distinct_pair(particles, pair)
        subset_a = current.of_type(pair[0])
        subset_b = current.of_type(pair[1])
        if current.weighted:
            if run_cross is None:  # pragma: no cover - engines that
                # subset never advertise weights without a cross path
                raise QueryError(
                    "this engine cannot run weighted type-pair queries"
                )
            return run_cross(subset_a, subset_b)
        both = current.select(
            (current.types == current.resolve_type(pair[0]))
            | (current.types == current.resolve_type(pair[1]))
        )
        union_hist = run(both)
        cross = union_hist.counts - run(subset_a).counts - run(
            subset_b
        ).counts
        return DistanceHistogram(spec, cross)
    return run(current)


def build_plan(
    particles: ParticleSet,
    use_mbr: bool = False,
    height: int | None = None,
    beta: float | None = None,
    request: SDHRequest | None = None,
) -> "SDHQuery":
    """Build a reusable :class:`SDHQuery` plan for a dataset.

    This is the cacheable unit of the query service: construction pays
    the full density-map pyramid build, and the returned plan answers
    any number of queries (exact, approximate, restricted) without
    rebuilding.  Callers that hold plans keyed by
    :meth:`~repro.data.particles.ParticleSet.fingerprint` get the
    paper's persistent-index behaviour: one index, many queries.

    When a ``request`` is given, the plan is built to serve it (today
    that means honouring ``use_mbr``; the request's
    :meth:`~repro.core.request.SDHRequest.plan_key` names the variant
    for cache keying).
    """
    if request is not None:
        use_mbr = use_mbr or request.use_mbr
    return SDHQuery(particles, use_mbr=use_mbr, height=height, beta=beta)


class SDHQuery:
    """Reusable query plan: build the density maps once, query many times.

    The paper's setting is a scientific *database*: the quadtree is a
    persistent index over a static dataset (Sec. III-C.1 even drops the
    parent pointers because the data never changes), and SDH queries
    with different bucket widths arrive over time.  This class captures
    that usage: construction pays the indexing cost, each
    :meth:`run` / :meth:`histogram` call only pays query time.
    """

    def __init__(
        self,
        particles: ParticleSet,
        use_mbr: bool = False,
        height: int | None = None,
        beta: float | None = None,
    ):
        self._particles = particles
        self._use_mbr = use_mbr
        with trace_span(
            "plan_build", particles=particles.size, use_mbr=use_mbr
        ) as span:
            self._pyramid = GridPyramid(
                particles, height=height, beta=beta, with_mbr=use_mbr
            )
            span.annotate(height=self._pyramid.height)
        self._tree: DensityMapTree | None = None
        self._height = height
        self._beta = beta

    @property
    def particles(self) -> ParticleSet:
        """The indexed dataset."""
        return self._particles

    @property
    def pyramid(self) -> GridPyramid:
        """The array-based density maps answering plain queries."""
        return self._pyramid

    def describe(self) -> dict:
        """Plan metadata for introspection (used by ``GET /v1/stats``).

        Cheap to call: reports the indexed dataset's shape and the
        pyramid geometry without touching particle data.
        """
        pyramid = self._pyramid
        leaf = pyramid.counts(pyramid.leaf_level)
        return {
            "num_particles": self._particles.size,
            "dim": self._particles.dim,
            "height": pyramid.height,
            "leaf_cells": int(leaf.size),
            "occupied_leaf_cells": int(np.count_nonzero(leaf)),
            "use_mbr": self._use_mbr,
        }

    @property
    def tree(self) -> DensityMapTree:
        """The node-based density maps (built lazily for restricted queries)."""
        if self._tree is None:
            self._tree = DensityMapTree(
                self._particles,
                height=self._height,
                beta=self._beta,
                with_mbr=self._use_mbr,
            )
        return self._tree

    def run(
        self,
        request: SDHRequest,
        *,
        stats: SDHStats | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> DistanceHistogram:
        """Answer one :class:`SDHRequest` against the prebuilt density maps.

        The plan analogue of :func:`compute_sdh`: the same request
        vocabulary, but plain/approximate/parallel queries reuse the
        cached pyramid and ``engine="tree"`` the lazily built node tree
        instead of re-indexing per call.
        """
        if not isinstance(request, SDHRequest):
            raise QueryError(
                "SDHQuery.run takes an SDHRequest; use histogram(...) "
                "for keyword-style queries"
            )
        request = request.normalize()
        if request.dataset_b is not None:
            raise QueryError(
                "a prebuilt plan indexes one dataset; run cross-set "
                "queries with compute_sdh(a, request, b=...)"
            )
        if request.weights is not None:
            # The cached pyramid indexes the unweighted dataset; a
            # per-call weight override runs the one-shot path instead.
            particles, request = _apply_request_weights(
                self._particles, request
            )
            return compute_sdh(particles, request, stats=stats, rng=rng)
        # The pyramid is already built, so planning treats index
        # construction as sunk cost (cache_hot).
        request = _maybe_plan(self._particles, request, cache_hot=True)
        spec = request.resolved_spec(self._particles)
        name = resolve_engine_name(request)
        engine = get_engine(name)
        engine.check(request, weighted=self._particles.weighted)
        if stats is None:
            stats = SDHStats()
        with trace_span(
            "plan_query",
            engine=name,
            particles=self._particles.size,
            approximate=request.approximate,
        ):
            result = self._dispatch(name, engine, request, spec, stats, rng)
        publish_stats(stats, name)
        return result

    def _dispatch(self, name, engine, request, spec, stats, rng):
        if name == "brute":
            return engine.run(
                self._particles, request, spec, stats=stats, rng=rng
            )
        if name == "tree":
            return dm_sdh_tree(
                self.tree,
                spec=spec,
                use_mbr=request.use_mbr,
                region=request.region,
                type_filter=request.type_filter,
                type_pair=request.type_pair,
                policy=request.policy,
                stats=stats,
                kernel=request.kernel,
            )
        if request.approximate:
            if self._particles.weighted:
                raise QueryError(
                    "weighted queries cannot run in approximate mode "
                    "(fractional allocation is not exact)"
                )
            return adm_sdh(
                self._pyramid,
                spec=spec,
                levels=request.levels,
                error_bound=request.error_bound,
                heuristic=request.heuristic,
                use_mbr=request.use_mbr,
                policy=request.policy,
                stats=stats,
                rng=rng,
                periodic=request.periodic,
            )
        if request.restricted:
            # Subsets index their own (small) pyramids; the prebuilt
            # one answers the unrestricted queries.
            def run_full(subset: ParticleSet) -> DistanceHistogram:
                if name == "parallel":
                    from ..parallel.engine import parallel_sdh

                    return parallel_sdh(
                        subset, spec=spec, workers=request.workers,
                        policy=request.policy, stats=stats,
                        periodic=request.periodic, kernel=request.kernel,
                    )
                return dm_sdh_grid(
                    subset, spec=spec, use_mbr=False,
                    policy=request.policy, stats=stats,
                    periodic=request.periodic, kernel=request.kernel,
                )

            def run_cross(sa, sb) -> DistanceHistogram:
                return dm_sdh_grid(
                    _combined_cross_set(sa, sb), spec=spec, use_mbr=False,
                    policy=request.policy, stats=stats,
                    periodic=request.periodic, kernel=request.kernel,
                    cross_split=sa.size,
                )

            return _restricted_subsets(
                self._particles, spec, request, run_full,
                None if name == "parallel" else run_cross,
            )
        if name == "parallel":
            from ..parallel.engine import parallel_sdh

            return parallel_sdh(
                self._pyramid, spec=spec, workers=request.workers,
                policy=request.policy, stats=stats,
                periodic=request.periodic, kernel=request.kernel,
            )
        return dm_sdh_grid(
            self._pyramid,
            spec=spec,
            use_mbr=request.use_mbr,
            policy=request.policy,
            stats=stats,
            periodic=request.periodic,
            kernel=request.kernel,
        )

    def histogram(
        self,
        bucket_width: float | None = None,
        spec: BucketSpec | None = None,
        num_buckets: int | None = None,
        region: Region | None = None,
        type_filter: int | str | None = None,
        type_pair: tuple[int | str, int | str] | None = None,
        error_bound: float | None = None,
        levels: int | None = None,
        heuristic: int | str | Allocator = 3,
        policy: OverflowPolicy = OverflowPolicy.RAISE,
        stats: SDHStats | None = None,
        rng: np.random.Generator | int | None = None,
        in_index: bool = False,
        workers: int | None = None,
        periodic: bool = False,
        kernel: str = "auto",
    ) -> DistanceHistogram:
        """Keyword shim over :meth:`run`.

        Parameters are as in :func:`compute_sdh` minus the engine knob:
        approximate queries run ADM-SDH on the pyramid, ``workers > 1``
        the parallel engine, everything else the vectorized exact
        engine.  Restricted queries default to subset-then-grid; pass
        ``in_index=True`` for the paper's Sec. III-C.3 in-index pruning
        on the node tree instead.
        """
        request = SDHRequest(
            bucket_width=bucket_width,
            spec=spec,
            num_buckets=num_buckets,
            engine="tree" if in_index else "auto",
            use_mbr=self._use_mbr,
            region=region,
            type_filter=type_filter,
            type_pair=type_pair,
            error_bound=error_bound,
            levels=levels,
            heuristic=heuristic,
            policy=policy,
            periodic=periodic,
            workers=workers,
            kernel=kernel,
        )
        return self.run(request, stats=stats, rng=rng)


def _filter_brute(
    particles: ParticleSet,
    region: Region | None,
    type_filter: int | str | None,
    type_pair: tuple[int | str, int | str] | None,
) -> tuple[ParticleSet, ParticleSet | None] | None:
    """Materialize restrictions for the brute-force baseline."""
    if region is None and type_filter is None and type_pair is None:
        return None
    current = particles
    if region is not None:
        mask = region.contains_points(current.positions)
        if not mask.any():
            raise QueryError("query region contains no particles")
        current = current.select(mask)
    if type_filter is not None:
        return current.of_type(type_filter), None
    if type_pair is not None:
        _require_distinct_pair(particles, type_pair)
        return current.of_type(type_pair[0]), current.of_type(type_pair[1])
    return current, None


def _require_distinct_pair(particles: ParticleSet, pair) -> None:
    """Reject ``type_pair`` naming one type twice, on every engine.

    The tree engine always rejected this (the cross identity
    ``h(A x B) = h(A u B) - h(A) - h(B)`` needs disjoint sides; with
    A == B it degenerates to ``-h(A)``, i.e. negative counts); the
    subsetting engines must agree rather than return garbage.
    """
    if particles.resolve_type(pair[0]) == particles.resolve_type(pair[1]):
        raise QueryError(
            "type_pair needs two distinct types; use type_filter"
        )


# ----------------------------------------------------------------------
# Built-in engine registrations.  ``replace=True`` keeps re-imports
# (e.g. under importlib.reload in tests) idempotent.
# ----------------------------------------------------------------------
register_engine(
    "brute",
    _run_brute,
    EngineCapabilities(
        supports_periodic=True,
        supports_region=True,
        supports_type_filter=True,
        supports_type_pair=True,
        supports_mbr=True,
        supports_weights=True,
        supports_cross=True,
        kernel_tiers=available_kernel_tiers(),
    ),
    replace=True,
)
register_engine(
    "tree",
    _run_tree,
    EngineCapabilities(
        supports_region=True,
        supports_type_filter=True,
        supports_type_pair=True,
        supports_mbr=True,
        supports_weights=True,
        supports_cross=True,
        kernel_tiers=available_kernel_tiers(),
    ),
    replace=True,
)
register_engine(
    "grid",
    _run_grid,
    EngineCapabilities(
        supports_periodic=True,
        supports_region=True,
        supports_type_filter=True,
        supports_type_pair=True,
        supports_approximate=True,
        supports_mbr=True,
        supports_weights=True,
        supports_cross=True,
        kernel_tiers=available_kernel_tiers(),
    ),
    replace=True,
)
register_engine(
    "parallel",
    _run_parallel,
    EngineCapabilities(
        supports_periodic=True,
        supports_region=True,
        supports_type_filter=True,
        supports_type_pair=True,
        supports_workers=True,
        kernel_tiers=available_kernel_tiers(),
    ),
    replace=True,
)

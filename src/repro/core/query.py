"""High-level SDH query interface.

:func:`compute_sdh` is the one-call front door of the library: pick a
dataset, a bucket width (or a full spec), optionally an engine, an
approximation budget, a query region or a type restriction — and get a
:class:`~repro.core.histogram.DistanceHistogram` back.  It dispatches to

* the brute-force baseline (``engine="brute"``),
* the node-recursive reference engine (``engine="tree"``, the paper's
  in-index pruning for region- and type-restricted queries),
* the vectorized engine (``engine="grid"``, the default; restricted
  queries run on it by subsetting the qualifying particles), or
* ADM-SDH (when ``error_bound``, ``levels`` or ``op_budget`` is given).

:class:`SDHQuery` is the reusable-plan variant: build the density maps
once, then answer many queries against them (the scenario the paper's
storage discussion assumes, where the quadtree is a persistent index).
"""

from __future__ import annotations

import numpy as np

from ..data.particles import ParticleSet
from ..errors import QueryError
from ..geometry import Region
from ..quadtree.grid import GridPyramid
from ..quadtree.tree import DensityMapTree
from .approximate import adm_sdh
from .brute_force import brute_force_sdh
from .buckets import BucketSpec, OverflowPolicy, UniformBuckets
from .dm_sdh import dm_sdh_tree
from .dm_sdh_grid import dm_sdh_grid
from .heuristics import Allocator
from .histogram import DistanceHistogram
from .instrumentation import SDHStats

__all__ = ["compute_sdh", "build_plan", "SDHQuery"]

_ENGINES = ("auto", "grid", "tree", "brute")


def compute_sdh(
    particles: ParticleSet,
    bucket_width: float | None = None,
    spec: BucketSpec | None = None,
    num_buckets: int | None = None,
    engine: str = "auto",
    use_mbr: bool = False,
    region: Region | None = None,
    type_filter: int | str | None = None,
    type_pair: tuple[int | str, int | str] | None = None,
    error_bound: float | None = None,
    levels: int | None = None,
    heuristic: int | str | Allocator = 3,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    stats: SDHStats | None = None,
    rng: np.random.Generator | int | None = None,
    periodic: bool = False,
) -> DistanceHistogram:
    """Compute a spatial distance histogram.

    Parameters
    ----------
    particles:
        The dataset.
    bucket_width / spec / num_buckets:
        The query: give a width ``p`` (standard query covering the box
        diagonal), a total bucket count ``l`` (the paper's experimental
        parameterization, ``p = diagonal / l``), or a full spec.
    engine:
        ``"auto"`` (the vectorized grid engine, with restricted queries
        answered by subsetting), ``"grid"``, ``"tree"`` (the paper's
        in-index pruning) or ``"brute"``.
    use_mbr:
        Resolve cells via particle MBRs (Sec. III-C.3 optimization).
    region / type_filter / type_pair:
        The query varieties of Sec. III-C.3.
    error_bound / levels / heuristic:
        Switch to approximate ADM-SDH (Sec. V): visit ``levels`` maps or
        as many as the covering-factor model needs for ``error_bound``,
        then distribute remaining counts with the chosen heuristic.
    policy:
        Overflow handling for distances past the last edge.
    stats / rng:
        Operation counters and randomness for sampled heuristics.
    periodic:
        Measure distances under the minimum-image convention over the
        simulation box (grid/brute engines and ADM-SDH; the in-index
        tree engine is non-periodic).
    """
    resolved_spec = _resolve_query_spec(
        particles, bucket_width, spec, num_buckets, periodic=periodic
    )
    approx = error_bound is not None or levels is not None
    restricted = (
        region is not None or type_filter is not None or type_pair is not None
    )
    chosen = _choose_engine(engine, approx, restricted)
    if periodic and chosen == "tree":
        raise QueryError(
            "the node-tree engine does not support periodic boundaries; "
            "use engine='grid' or 'brute'"
        )

    if chosen == "brute":
        filtered = _filter_brute(particles, region, type_filter, type_pair)
        if filtered is not None:
            particles_a, particles_b = filtered
            if particles_b is not None:
                from .brute_force import brute_force_cross_sdh

                return brute_force_cross_sdh(
                    particles_a, particles_b, resolved_spec, policy=policy,
                    stats=stats or SDHStats(), periodic=periodic,
                )
            particles = particles_a
        return brute_force_sdh(
            particles, spec=resolved_spec, policy=policy,
            stats=stats or SDHStats(), periodic=periodic,
        )

    if approx:
        return adm_sdh(
            particles,
            spec=resolved_spec,
            levels=levels,
            error_bound=error_bound,
            heuristic=heuristic,
            use_mbr=use_mbr,
            policy=policy,
            stats=stats,
            rng=rng,
            periodic=periodic,
        )

    if chosen == "tree":
        tree = DensityMapTree(particles, with_mbr=use_mbr)
        return dm_sdh_tree(
            tree,
            spec=resolved_spec,
            use_mbr=use_mbr,
            region=region,
            type_filter=type_filter,
            type_pair=type_pair,
            policy=policy,
            stats=stats,
        )

    if restricted:
        return _restricted_via_grid(
            particles, resolved_spec, region, type_filter, type_pair,
            use_mbr, policy, stats, periodic=periodic,
        )

    return dm_sdh_grid(
        particles,
        spec=resolved_spec,
        use_mbr=use_mbr,
        policy=policy,
        stats=stats,
        periodic=periodic,
    )


def _restricted_via_grid(
    particles: ParticleSet,
    spec: BucketSpec,
    region: Region | None,
    type_filter: int | str | None,
    type_pair: tuple[int | str, int | str] | None,
    use_mbr: bool,
    policy: OverflowPolicy,
    stats: SDHStats | None,
    periodic: bool = False,
) -> DistanceHistogram:
    """Restricted queries on the vectorized engine via subsetting.

    The paper's in-index approach (engine="tree") prunes inside the
    prebuilt quadtree; materializing the qualifying subset and running
    the plain algorithm is equivalent and, in this implementation,
    usually faster.  Cross-type histograms use the exact identity
    ``h(A x B) = h(A u B) - h(A) - h(B)`` for disjoint A, B.
    """
    current = particles
    if region is not None:
        mask = region.contains_points(current.positions)
        if not mask.any():
            raise QueryError("query region contains no particles")
        current = current.select(mask)

    def run(subset: ParticleSet) -> DistanceHistogram:
        if subset.size < 2:
            return DistanceHistogram(spec)
        return dm_sdh_grid(
            subset, spec=spec, use_mbr=use_mbr, policy=policy,
            stats=stats, periodic=periodic,
        )

    if type_filter is not None:
        return run(current.of_type(type_filter))
    if type_pair is not None:
        subset_a = current.of_type(type_pair[0])
        subset_b = current.of_type(type_pair[1])
        both = current.select(
            (current.types == current.resolve_type(type_pair[0]))
            | (current.types == current.resolve_type(type_pair[1]))
        )
        union_hist = run(both)
        cross = union_hist.counts - run(subset_a).counts - run(
            subset_b
        ).counts
        return DistanceHistogram(spec, cross)
    return run(current)


def build_plan(
    particles: ParticleSet,
    use_mbr: bool = False,
    height: int | None = None,
    beta: float | None = None,
) -> "SDHQuery":
    """Build a reusable :class:`SDHQuery` plan for a dataset.

    This is the cacheable unit of the query service: construction pays
    the full density-map pyramid build, and the returned plan answers
    any number of queries (exact, approximate, restricted) without
    rebuilding.  Callers that hold plans keyed by
    :meth:`~repro.data.particles.ParticleSet.fingerprint` get the
    paper's persistent-index behaviour: one index, many queries.
    """
    return SDHQuery(particles, use_mbr=use_mbr, height=height, beta=beta)


class SDHQuery:
    """Reusable query plan: build the density maps once, query many times.

    The paper's setting is a scientific *database*: the quadtree is a
    persistent index over a static dataset (Sec. III-C.1 even drops the
    parent pointers because the data never changes), and SDH queries
    with different bucket widths arrive over time.  This class captures
    that usage: construction pays the indexing cost, each
    :meth:`histogram` call only pays query time.
    """

    def __init__(
        self,
        particles: ParticleSet,
        use_mbr: bool = False,
        height: int | None = None,
        beta: float | None = None,
    ):
        self._particles = particles
        self._use_mbr = use_mbr
        self._pyramid = GridPyramid(
            particles, height=height, beta=beta, with_mbr=use_mbr
        )
        self._tree: DensityMapTree | None = None
        self._height = height
        self._beta = beta

    @property
    def particles(self) -> ParticleSet:
        """The indexed dataset."""
        return self._particles

    @property
    def pyramid(self) -> GridPyramid:
        """The array-based density maps answering plain queries."""
        return self._pyramid

    def describe(self) -> dict:
        """Plan metadata for introspection (used by ``GET /v1/stats``).

        Cheap to call: reports the indexed dataset's shape and the
        pyramid geometry without touching particle data.
        """
        pyramid = self._pyramid
        leaf = pyramid.counts(pyramid.leaf_level)
        return {
            "num_particles": self._particles.size,
            "dim": self._particles.dim,
            "height": pyramid.height,
            "leaf_cells": int(leaf.size),
            "occupied_leaf_cells": int(np.count_nonzero(leaf)),
            "use_mbr": self._use_mbr,
        }

    @property
    def tree(self) -> DensityMapTree:
        """The node-based density maps (built lazily for restricted queries)."""
        if self._tree is None:
            self._tree = DensityMapTree(
                self._particles,
                height=self._height,
                beta=self._beta,
                with_mbr=self._use_mbr,
            )
        return self._tree

    def histogram(
        self,
        bucket_width: float | None = None,
        spec: BucketSpec | None = None,
        num_buckets: int | None = None,
        region: Region | None = None,
        type_filter: int | str | None = None,
        type_pair: tuple[int | str, int | str] | None = None,
        error_bound: float | None = None,
        levels: int | None = None,
        heuristic: int | str | Allocator = 3,
        policy: OverflowPolicy = OverflowPolicy.RAISE,
        stats: SDHStats | None = None,
        rng: np.random.Generator | int | None = None,
        in_index: bool = False,
    ) -> DistanceHistogram:
        """Answer one SDH query against the prebuilt density maps.

        Parameters are as in :func:`compute_sdh` minus the engine knob:
        approximate queries run ADM-SDH on the pyramid, everything else
        the vectorized exact engine.  Restricted queries default to
        subset-then-grid (see ``_restricted_via_grid``); pass
        ``in_index=True`` for the paper's Sec. III-C.3 in-index pruning
        on the node tree instead.
        """
        resolved_spec = _resolve_query_spec(
            self._particles, bucket_width, spec, num_buckets
        )
        restricted = (
            region is not None
            or type_filter is not None
            or type_pair is not None
        )
        approx = error_bound is not None or levels is not None
        if restricted:
            if approx:
                raise QueryError(
                    "restricted queries are exact-only in this version"
                )
            if in_index:
                return dm_sdh_tree(
                    self.tree,
                    spec=resolved_spec,
                    use_mbr=self._use_mbr,
                    region=region,
                    type_filter=type_filter,
                    type_pair=type_pair,
                    policy=policy,
                    stats=stats,
                )
            return _restricted_via_grid(
                self._particles, resolved_spec, region, type_filter,
                type_pair, False, policy, stats,
            )
        if approx:
            return adm_sdh(
                self._pyramid,
                spec=resolved_spec,
                levels=levels,
                error_bound=error_bound,
                heuristic=heuristic,
                use_mbr=self._use_mbr,
                policy=policy,
                stats=stats,
                rng=rng,
            )
        return dm_sdh_grid(
            self._pyramid,
            spec=resolved_spec,
            use_mbr=self._use_mbr,
            policy=policy,
            stats=stats,
        )


def _resolve_query_spec(
    particles: ParticleSet,
    bucket_width: float | None,
    spec: BucketSpec | None,
    num_buckets: int | None,
    periodic: bool = False,
) -> BucketSpec:
    given = sum(
        value is not None for value in (bucket_width, spec, num_buckets)
    )
    if given != 1:
        raise QueryError(
            "provide exactly one of bucket_width / spec / num_buckets"
        )
    if spec is not None:
        return spec
    if periodic:
        reach = particles.max_periodic_distance
    else:
        reach = particles.max_possible_distance
    if bucket_width is not None:
        return UniformBuckets.cover(reach, bucket_width)
    assert num_buckets is not None
    return UniformBuckets.with_count(reach, num_buckets)


def _choose_engine(engine: str, approx: bool, restricted: bool) -> str:
    if engine not in _ENGINES:
        raise QueryError(f"unknown engine {engine!r}; pick from {_ENGINES}")
    if approx and restricted:
        raise QueryError("approximate restricted queries are not supported")
    if engine == "auto":
        return "grid"
    if approx and engine in ("tree", "brute"):
        raise QueryError("approximate mode runs on the grid engine")
    return engine


def _filter_brute(
    particles: ParticleSet,
    region: Region | None,
    type_filter: int | str | None,
    type_pair: tuple[int | str, int | str] | None,
) -> tuple[ParticleSet, ParticleSet | None] | None:
    """Materialize restrictions for the brute-force baseline."""
    if region is None and type_filter is None and type_pair is None:
        return None
    current = particles
    if region is not None:
        mask = region.contains_points(current.positions)
        if not mask.any():
            raise QueryError("query region contains no particles")
        current = current.select(mask)
    if type_filter is not None:
        return current.of_type(type_filter), None
    if type_pair is not None:
        return current.of_type(type_pair[0]), current.of_type(type_pair[1])
    return current, None

"""Vectorized DM-SDH over the array-based density-map pyramid.

Functionally identical to :mod:`repro.core.dm_sdh` (tests assert exact
integer equality of the histograms), but the recursion is flattened
into a level-by-level worklist of cell-pair arrays so that numpy can
resolve millions of pairs per call — the pure-Python recursion is the
bottleneck the paper's C implementation never had, and this module is
the honest Python answer to it.

Two engine-level optimizations exploit the grid structure (results are
bit-identical to the naive formulation, which the test suite checks):

* **offset-class tables** — on a given level, the min/max distance
  bounds of a cell pair depend only on the per-axis index offset, so
  the resolve decision and target bucket are precomputed once per level
  for all ``G^d`` offset classes and then applied to pair batches with
  a single gather;
* **index-space expansion** — unresolved pairs are refined by integer
  index arithmetic (``child = 2 * parent + offset``) without en-/
  decoding flat cell ids per level.

The same engine runs the approximate ADM-SDH of Sec. V: a ``stop``
parameter bounds how many density maps are visited, and the pairs still
unresolved at the stop level are handed to an
:class:`~repro.core.heuristics.Allocator` instead of being refined
further (no distance is ever computed in approximate mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..data.particles import ParticleSet
from ..errors import DistanceOverflowError, QueryError
from ..geometry import box_pair_bounds
from ..kernels import exact, expand_products, fast_uniform_width, get_backend
from ..quadtree.grid import GridPyramid
from .buckets import BucketSpec, OverflowPolicy, UniformBuckets
from .heuristics import AllocationContext, Allocator
from .histogram import DistanceHistogram
from .instrumentation import SDHStats
from .weighted import WeightedAccumulator

__all__ = ["GridSDHEngine", "dm_sdh_grid"]

#: Default ceiling on the number of cell pairs processed per batch.
DEFAULT_PAIR_CHUNK = 1 << 21
#: Default ceiling on particle-pair distances materialized per batch.
DEFAULT_DISTANCE_CHUNK = 1 << 22

# Offset-class statuses.
_RESOLVED = 0
_OPEN = 1
_BELOW = 2
_ABOVE = 3


def dm_sdh_grid(
    data: GridPyramid | ParticleSet,
    spec: BucketSpec | None = None,
    bucket_width: float | None = None,
    use_mbr: bool = False,
    policy: OverflowPolicy = OverflowPolicy.RAISE,
    stats: SDHStats | None = None,
    stop_after_levels: int | None = None,
    allocator: Allocator | None = None,
    rng: np.random.Generator | int | None = None,
    periodic: bool = False,
    kernel: str = "auto",
    cross_split: int | None = None,
) -> DistanceHistogram:
    """Compute an SDH with the vectorized DM-SDH engine.

    With ``periodic=True``, distances are measured under the
    minimum-image convention over the simulation box (the molecular-
    dynamics setting); cell resolution then uses torus distance bounds.

    Parameters mirror :func:`repro.core.dm_sdh.dm_sdh_tree` where they
    overlap.  ``kernel`` selects the leaf-resolution backend (see
    :mod:`repro.kernels`).  Weighted datasets (a :class:`ParticleSet`
    carrying per-particle weights) accumulate exact pair products; see
    :mod:`repro.core.weighted`.  The extra parameters select cross-set
    and approximate mode:

    cross_split:
        Cross-set mode: ``data`` holds the concatenation of two sets
        (A first), ``cross_split`` is ``|A|``, and the histogram counts
        only pairs with one particle from each side (every cell tracks
        per-side counts, so a resolved cell pair contributes
        ``na1 * nb2 + nb1 * na2``).
    stop_after_levels:
        Visit at most this many density maps below the start map
        (the paper's ``m``).  Requires ``allocator``.
    allocator:
        Heuristic that distributes the unresolved pairs' counts
        (Sec. V heuristics; see :func:`repro.core.heuristics.make_allocator`).
    """
    if isinstance(data, GridPyramid):
        pyramid = data
    else:
        pyramid = GridPyramid(data, with_mbr=use_mbr)
    engine = GridSDHEngine(
        pyramid,
        spec=spec,
        bucket_width=bucket_width,
        use_mbr=use_mbr,
        policy=policy,
        stats=stats,
        stop_after_levels=stop_after_levels,
        allocator=allocator,
        rng=rng,
        periodic=periodic,
        kernel=kernel,
        cross_split=cross_split,
    )
    return engine.run()


@dataclass
class _LevelTable:
    """Per-level lookup over all offset classes ``|di|`` per axis.

    ``status[cls]`` is one of the class constants above; ``bucket[cls]``
    the target bucket for resolved classes.  ``cls`` is the row-major
    encoding of the per-axis absolute offsets.
    """

    status: np.ndarray
    bucket: np.ndarray


class GridSDHEngine:
    """One (exact or approximate) SDH computation over a grid pyramid."""

    def __init__(
        self,
        pyramid: GridPyramid,
        spec: BucketSpec | None = None,
        bucket_width: float | None = None,
        use_mbr: bool = False,
        policy: OverflowPolicy = OverflowPolicy.RAISE,
        stats: SDHStats | None = None,
        stop_after_levels: int | None = None,
        allocator: Allocator | None = None,
        rng: np.random.Generator | int | None = None,
        pair_chunk: int = DEFAULT_PAIR_CHUNK,
        distance_chunk: int = DEFAULT_DISTANCE_CHUNK,
        periodic: bool = False,
        kernel: str = "auto",
        cross_split: int | None = None,
    ):
        self.pyramid = pyramid
        self.particles = pyramid.particles
        self.periodic = bool(periodic)
        self.spec = _resolve_spec(
            spec, bucket_width, self.particles, periodic=self.periodic
        )
        if use_mbr and not pyramid.has_mbr:
            raise QueryError("use_mbr requires a pyramid built with_mbr=True")
        if use_mbr and self.periodic:
            raise QueryError(
                "MBR resolution is not defined under periodic boundaries"
            )
        self.use_mbr = use_mbr
        self.policy = policy
        self.stats = stats if stats is not None else SDHStats()
        if (stop_after_levels is None) != (allocator is None):
            raise QueryError(
                "approximate mode needs both stop_after_levels and allocator"
            )
        if stop_after_levels is not None and stop_after_levels < 0:
            raise QueryError("stop_after_levels must be >= 0")
        if allocator is not None and self.spec.low > 0:
            raise QueryError(
                "approximate mode supports standard queries (r0 == 0) only"
            )
        self.stop_after_levels = stop_after_levels
        self.allocator = allocator
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)
        self.pair_chunk = int(pair_chunk)
        self.distance_chunk = int(distance_chunk)
        self.histogram = DistanceHistogram(self.spec)
        self._tables: dict[int, _LevelTable] = {}
        self._float_counts: dict[int, np.ndarray] = {}
        # Fast binning path: a standard query whose buckets cover every
        # realizable distance needs no policy checks per distance —
        # a clipped integer division bins exactly like bin_counts_query.
        # Eligible leaf work routes through the selected kernel backend
        # (repro.kernels); anything else stays on the inline
        # bin_counts_query path regardless of the requested tier.
        reach = (
            self.particles.max_periodic_distance
            if self.periodic
            else self.particles.max_possible_distance
        )
        self._fast_bin_width = fast_uniform_width(self.spec, reach)
        self._kernel_backend = get_backend(kernel)
        self.kernel = self._kernel_backend.NAME
        self._box_lengths = (
            np.asarray(self.particles.box.sides, dtype=np.float64)
            if self.periodic
            else None
        )
        #: Optional observer called with (a_ids, b_ids) for every batch
        #: of leaf-cell pairs whose distances are computed directly —
        #: the access pattern the storage layer replays to count I/O
        #: (Sec. IV-B).  Intra-cell leaf scans report pairs (c, c).
        self.on_leaf_pairs: (
            "callable[[np.ndarray, np.ndarray], None] | None"
        ) = None

        # Weighted / cross-set state.  Weighted mode replaces the float
        # histogram accumulation with the exact integer machinery of
        # repro.core.weighted; cross mode tracks per-side cell masses.
        self.cross_split = None if cross_split is None else int(cross_split)
        self.weighted = self.particles.weighted
        if self.weighted or self.cross_split is not None:
            if self.approximate:
                raise QueryError(
                    "weighted/cross-set queries cannot run in "
                    "approximate mode"
                )
            if pyramid.order is None:
                raise QueryError(
                    "weighted/cross-set queries need a pyramid with a "
                    "materialized sort order"
                )
        if self.cross_split is not None and not (
            0 < self.cross_split < self.particles.size
        ):
            raise QueryError(
                f"cross_split must split the set, got {cross_split} "
                f"of {self.particles.size}"
            )
        self._accum = (
            WeightedAccumulator(self.spec, policy) if self.weighted else None
        )
        self._sides_sorted = (
            None
            if self.cross_split is None
            else pyramid.order >= self.cross_split
        )
        self._w_sorted = (
            self.particles.weights[pyramid.order] if self.weighted else None
        )
        self._w_obj_sorted = (
            exact.weight_ints(self._w_sorted) if self.weighted else None
        )
        self._wsum_levels: "list[np.ndarray] | None" = None
        self._side_wsum_levels: (
            "tuple[list[np.ndarray], list[np.ndarray]] | None"
        ) = None
        self._side_count_levels: (
            "tuple[list[np.ndarray], list[np.ndarray]] | None"
        ) = None

    # ------------------------------------------------------------------
    @property
    def approximate(self) -> bool:
        """Whether this run is ADM-SDH (no distance ever computed)."""
        return self.allocator is not None

    def run(self) -> DistanceHistogram:
        """Execute the algorithm and return the histogram."""
        start = self._start_level()
        self.stats.start_level = start
        leaf = self.pyramid.leaf_level
        if self.stop_after_levels is None:
            last_level = leaf
        else:
            last_level = min(leaf, start + self.stop_after_levels)
        self.stats.levels_visited = last_level - start + 1

        self._intra_cell(start)
        self._drain(start, self._start_pairs(start), last_level)
        if self._accum is not None:
            self._accum.finalize_into(self.histogram)
        return self.histogram

    def _drain(
        self,
        level: int,
        batches: "Iterator[tuple[np.ndarray, np.ndarray]]",
        last_level: int,
    ) -> None:
        """Run the level-by-level worklist from ``level`` down to the end.

        ``batches`` yields same-level cell-pair batches as pairs of
        per-axis index arrays of shape (n, d).  Unresolved pairs are
        expanded to their children and re-drained until ``last_level``
        settles everything (distances in exact mode, the allocator in
        approximate mode).
        """
        while True:
            carry: list[tuple[np.ndarray, np.ndarray]] = []
            for idx_a, idx_b in batches:
                unresolved = self._process_batch(level, idx_a, idx_b,
                                                 last_level)
                if unresolved is not None:
                    carry.append(unresolved)
            if level == last_level or not carry:
                break
            level += 1
            batches = iter(self._expand(carry, child_level=level))

    # ------------------------------------------------------------------
    # Resumable entry points (used by the parallel engine's workers)
    # ------------------------------------------------------------------
    def process_pairs(
        self, level: int, idx_a: np.ndarray, idx_b: np.ndarray
    ) -> None:
        """Fully resolve one batch of same-level cell pairs.

        Picks up the algorithm mid-descent: the pairs are processed at
        ``level`` and their unresolved children drained down to the leaf
        map exactly as :meth:`run` would have.  Counts accumulate into
        :attr:`histogram` / :attr:`stats`; a parallel worker calls this
        for its shard of the frontier and ships both back for merging.
        """
        last_level = self.pyramid.leaf_level
        self._drain(level, iter([(idx_a, idx_b)]), last_level)

    def process_intra_cells(self, cells: np.ndarray) -> None:
        """Compute intra-cell leaf distances for the given cells only.

        The parallel engine shards the leaf cells of an oversized first
        map (where :meth:`run` would call ``_intra_leaf_distances`` for
        all of them) across workers.
        """
        self._intra_leaf_distances(self.pyramid.leaf_level, cells=cells)

    # ------------------------------------------------------------------
    # Level geometry tables
    # ------------------------------------------------------------------
    def _level_table(self, level: int) -> _LevelTable:
        """Status/bucket for every offset class of a level (cached)."""
        table = self._tables.get(level)
        if table is not None:
            return table
        grid = self.pyramid.cells_per_axis(level)
        sides = self.pyramid.cell_sides(level)
        dim = self.pyramid.dim

        offsets = np.arange(grid, dtype=np.float64)
        if self.periodic:
            from ..geometry.distance import periodic_interval_minmax

            gap_1d = []
            span_1d = []
            for ax in range(dim):
                length = grid * sides[ax]
                a = np.maximum(offsets - 1, 0.0) * sides[ax]
                b = np.minimum(offsets + 1, grid) * sides[ax]
                g_min, g_max = periodic_interval_minmax(a, b, length)
                gap_1d.append(g_min)
                span_1d.append(g_max)
        else:
            gap_1d = [
                np.maximum(offsets - 1, 0.0) * sides[ax]
                for ax in range(dim)
            ]
            span_1d = [(offsets + 1) * sides[ax] for ax in range(dim)]
        # Row-major class encoding: axis 0 fastest.
        shape = (grid,) * dim
        gap_sq = np.zeros(shape)
        span_sq = np.zeros(shape)
        for ax in range(dim):
            view = [None] * dim
            view[ax] = slice(None)
            idx = tuple(view[::-1])  # axis 0 fastest -> last array axis
            gap_sq = gap_sq + (gap_1d[ax][idx] ** 2)
            span_sq = span_sq + (span_1d[ax][idx] ** 2)
        u = np.sqrt(gap_sq.reshape(-1))
        v = np.sqrt(span_sq.reshape(-1))

        num = self.spec.num_buckets
        bu = self.spec.bucket_of(u)
        bv = self.spec.bucket_of(v)
        status = np.full(u.shape, _OPEN, dtype=np.int8)
        status[bv < 0] = _BELOW
        status[bu >= num] = _ABOVE
        resolved = (bu == bv) & (bu >= 0) & (bu < num)
        status[resolved] = _RESOLVED
        table = _LevelTable(
            status=status, bucket=bu.astype(np.int32)
        )
        self._tables[level] = table
        return table

    def _class_of(self, level: int, idx_a: np.ndarray,
                  idx_b: np.ndarray) -> np.ndarray:
        """Offset-class ids (row-major over per-axis |di|, axis0 fastest)."""
        grid = self.pyramid.cells_per_axis(level)
        diff = np.abs(idx_a - idx_b)
        cls = diff[:, -1].copy()
        for ax in range(self.pyramid.dim - 2, -1, -1):
            cls *= grid
            cls += diff[:, ax]
        return cls

    def _flat(self, level: int, idx: np.ndarray) -> np.ndarray:
        """Flat cell ids from per-axis indices (axis 0 fastest)."""
        grid = self.pyramid.cells_per_axis(level)
        flat = idx[:, -1].copy()
        for ax in range(self.pyramid.dim - 2, -1, -1):
            flat *= grid
            flat += idx[:, ax]
        return flat

    def _counts_float(self, level: int) -> np.ndarray:
        """Per-cell counts as float64 (cached; avoids per-batch casts)."""
        cached = self._float_counts.get(level)
        if cached is None:
            cached = self.pyramid.counts(level).astype(np.float64)
            self._float_counts[level] = cached
        return cached

    # ------------------------------------------------------------------
    # Weighted / cross auxiliary pyramids (built lazily, all levels)
    # ------------------------------------------------------------------
    def _leaf_cell_ids(self) -> np.ndarray:
        """Leaf cell id of every sorted particle (CSR expansion)."""
        starts = self.pyramid.leaf_starts
        return np.repeat(
            np.arange(starts.size - 1, dtype=np.int64), np.diff(starts)
        )

    def _pool_leaf(self, leaf_values: np.ndarray) -> "list[np.ndarray]":
        grid = 1 << (self.pyramid.height - 1)
        return _pool_values(leaf_values, grid, self.pyramid.dim)

    def _weight_sums(self, level: int) -> np.ndarray:
        """Exact integer weight sum per cell at a level (object array)."""
        if self._wsum_levels is None:
            leaf = exact.zero_ints(self.pyramid.leaf_starts.size - 1)
            np.add.at(leaf, self._leaf_cell_ids(), self._w_obj_sorted)
            self._wsum_levels = self._pool_leaf(leaf)
        return self._wsum_levels[level]

    def _side_weight_sums(
        self, level: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact per-side weight sums per cell (cross mode, object arrays)."""
        if self._side_wsum_levels is None:
            cells = self._leaf_cell_ids()
            num = self.pyramid.leaf_starts.size - 1
            sides = self._sides_sorted
            leaf_a = exact.zero_ints(num)
            leaf_b = exact.zero_ints(num)
            np.add.at(leaf_a, cells[~sides], self._w_obj_sorted[~sides])
            np.add.at(leaf_b, cells[sides], self._w_obj_sorted[sides])
            self._side_wsum_levels = (
                self._pool_leaf(leaf_a), self._pool_leaf(leaf_b)
            )
        return (
            self._side_wsum_levels[0][level],
            self._side_wsum_levels[1][level],
        )

    def _side_counts(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-side float cell counts (cross mode)."""
        if self._side_count_levels is None:
            cells = self._leaf_cell_ids()
            num = self.pyramid.leaf_starts.size - 1
            leaf_b = np.bincount(
                cells[self._sides_sorted], minlength=num
            ).astype(np.float64)
            nb_levels = self._pool_leaf(leaf_b)
            na_levels = [
                self._counts_float(lvl) - nb_levels[lvl]
                for lvl in range(self.pyramid.height)
            ]
            self._side_count_levels = (na_levels, nb_levels)
        return (
            self._side_count_levels[0][level],
            self._side_count_levels[1][level],
        )

    def _pair_masses(
        self, level: int, flat_a: np.ndarray, flat_b: np.ndarray
    ) -> np.ndarray:
        """Exact pair-product masses of whole cell pairs (object array).

        For a resolved pair the sum of its particle-pair products equals
        the product of the two cell weight sums — exactly, because the
        sums are exact integers (the float shortcut the density-map
        engines rely on would not survive rounding).
        """
        if self.cross_split is not None:
            wa, wb = self._side_weight_sums(level)
            return wa[flat_a] * wb[flat_b] + wb[flat_a] * wa[flat_b]
        w = self._weight_sums(level)
        return w[flat_a] * w[flat_b]

    def _wrap_deltas(self, delta: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention when periodic."""
        if not self.periodic:
            return delta
        from ..geometry.distance import minimum_image

        return minimum_image(
            delta, np.asarray(self.particles.box.sides)
        )

    def _bin_distances(self, distances: np.ndarray) -> None:
        """Bin a batch of realized distances into the histogram."""
        self.stats.distance_computations += distances.size
        if self._fast_bin_width is not None:
            # Same expression as UniformBuckets.bucket_of (truncation of
            # a non-negative quotient == floor), so boundary-exact
            # distances bin identically to the brute-force baseline.
            idx = np.minimum(
                (distances / self._fast_bin_width).astype(np.int64),
                self.spec.num_buckets - 1,
            )
            self.histogram.counts += np.bincount(
                idx, minlength=self.spec.num_buckets
            )
            return
        self.histogram.add_counts(
            self.spec.bin_counts_query(distances, policy=self.policy)
        )

    def _bin_pairs(
        self, positions: np.ndarray, g1: np.ndarray, g2: np.ndarray
    ) -> None:
        """Resolve one enumerated particle-pair batch.

        Kernel-eligible queries (see ``kernels.fast_uniform_width``) go
        through the selected backend, which fuses distance computation
        and binning; anything else keeps the inline wrap/einsum path so
        policy handling and custom buckets behave exactly as before.
        """
        if self.weighted:
            if self._fast_bin_width is not None:
                limbs, computed = (
                    self._kernel_backend.bin_gathered_pairs_weighted(
                        positions,
                        self._w_sorted,
                        g1,
                        g2,
                        self._fast_bin_width,
                        self.spec.num_buckets,
                        self._box_lengths,
                    )
                )
                self.stats.distance_computations += computed
                self._accum.add_limbs(limbs, computed)
                return
            delta = self._wrap_deltas(positions[g1] - positions[g2])
            distances = np.sqrt(np.einsum("ij,ij->i", delta, delta))
            self.stats.distance_computations += distances.size
            self._accum.bin_products(
                distances, self._w_obj_sorted[g1], self._w_obj_sorted[g2]
            )
            return
        if self._fast_bin_width is not None:
            hist, computed = self._kernel_backend.bin_gathered_pairs(
                positions,
                g1,
                g2,
                self._fast_bin_width,
                self.spec.num_buckets,
                self._box_lengths,
            )
            self.stats.distance_computations += computed
            self.histogram.counts += hist
            return
        delta = self._wrap_deltas(positions[g1] - positions[g2])
        self._bin_distances(np.sqrt(np.einsum("ij,ij->i", delta, delta)))

    # ------------------------------------------------------------------
    # Stage 1: intra-cell counts on the start map (Fig. 2 lines 3-5)
    # ------------------------------------------------------------------
    def _intra_cell(self, start: int) -> None:
        counts = self.pyramid.counts(start)
        shortcut = (
            self.spec.low == 0.0
            and self.pyramid.cell_diagonal(start) <= float(self.spec.edges[1])
        )
        if shortcut:
            if self.weighted:
                if self.cross_split is not None:
                    wa, wb = self._side_weight_sums(start)
                    mass = sum((wa * wb).tolist(), 0)
                else:
                    # sum_c (W_c^2 - S2_c) / 2, with sum_c S2_c equal to
                    # the level-independent global sum of squares.
                    w = self._weight_sums(start)
                    square = sum(
                        (x * x for x in self._w_obj_sorted.tolist()), 0
                    )
                    mass = (sum((w * w).tolist(), 0) - square) >> 1
                self._accum.add_mass(0, mass)
                return
            if self.cross_split is not None:
                na, nb = self._side_counts(start)
                self.histogram.add(0, float((na * nb).sum()))
                return
            n = counts.astype(np.float64)
            self.histogram.add(0, float((n * (n - 1)).sum() / 2.0))
            return
        if self.approximate:
            # No distance computation allowed: distribute intra-cell
            # ranges [0, diagonal] heuristically.
            nonempty = np.flatnonzero(counts >= 2)
            if nonempty.size == 0:
                return
            n = counts[nonempty].astype(np.float64)
            weights = n * (n - 1) / 2.0
            u = np.zeros(nonempty.size)
            v = np.full(nonempty.size, self.pyramid.cell_diagonal(start))
            context = AllocationContext(
                offsets=np.zeros((nonempty.size, self.pyramid.dim), np.int64),
                cell_sides=self.pyramid.cell_sides(start),
                rng=self.rng,
            )
            self._allocate(u, v, weights, context)
            return
        # Exact mode with an oversized first map: compute intra-cell
        # distances directly (start == leaf level by construction).
        self._intra_leaf_distances(start)

    def _intra_leaf_distances(
        self, level: int, cells: np.ndarray | None = None
    ) -> None:
        if level != self.pyramid.leaf_level:
            raise QueryError(
                "direct intra-cell distances only happen on the leaf map"
            )
        counts = self.pyramid.counts(level)
        if cells is None:
            cells = np.flatnonzero(counts >= 2)
        else:
            cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return
        if self.on_leaf_pairs is not None:
            self.on_leaf_pairs(cells, cells)
        starts = self.pyramid.leaf_starts
        positions = self.pyramid.sorted_positions
        for begin in range(0, cells.size, 4096):
            block = cells[begin : begin + 4096]
            c = counts[block].astype(np.int64)
            for g1, g2 in expand_products(
                starts[block], c, starts[block], c, self.distance_chunk
            ):
                keep = g1 < g2
                if self._sides_sorted is not None:
                    keep &= self._sides_sorted[g1] != self._sides_sorted[g2]
                g1, g2 = g1[keep], g2[keep]
                if g1.size == 0:
                    continue
                self._bin_pairs(positions, g1, g2)

    # ------------------------------------------------------------------
    # Stage 2: the level loop
    # ------------------------------------------------------------------
    def _start_pairs(self, level: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """All unordered pairs of non-empty cells on the start map."""
        nonempty = np.flatnonzero(self.pyramid.counts(level))
        c = nonempty.size
        if c < 2:
            return
        idx = self.pyramid.decode(level, nonempty)
        # Emit blocks of rows of the (strict upper) pair triangle.
        row = 0
        while row < c - 1:
            rows_here = max(1, min(c - 1 - row,
                                   self.pair_chunk // max(1, c - row - 1)))
            chunk_rows = np.arange(row, row + rows_here)
            repeats = c - 1 - chunk_rows
            a_rows = np.repeat(chunk_rows, repeats)
            b_rows = np.concatenate(
                [np.arange(r + 1, c) for r in chunk_rows]
            )
            yield idx[a_rows], idx[b_rows]
            row += rows_here

    def _process_batch(
        self,
        level: int,
        idx_a: np.ndarray,
        idx_b: np.ndarray,
        last_level: int,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Resolve one batch of same-level cell pairs.

        Returns the unresolved sub-batch (to be expanded to the next
        level) or None when everything was settled here.
        """
        counts = self._counts_float(level)
        flat_a = self._flat(level, idx_a)
        flat_b = self._flat(level, idx_b)
        if self.cross_split is not None:
            na, nb = self._side_counts(level)
            weights = na[flat_a] * nb[flat_b] + nb[flat_a] * na[flat_b]
        else:
            weights = counts[flat_a] * counts[flat_b]
        num = self.spec.num_buckets

        if self.use_mbr:
            lo_arr = self.pyramid.mbr_lo(level)
            hi_arr = self.pyramid.mbr_hi(level)
            u, v = box_pair_bounds(
                lo_arr[flat_a], hi_arr[flat_a], lo_arr[flat_b], hi_arr[flat_b]
            )
            bu = self.spec.bucket_of(u)
            bv = self.spec.bucket_of(v)
            status = np.full(u.shape, _OPEN, dtype=np.int8)
            status[bv < 0] = _BELOW
            status[bu >= num] = _ABOVE
            status[(bu == bv) & (bu >= 0) & (bu < num)] = _RESOLVED
            bucket = bu
        else:
            table = self._level_table(level)
            cls = self._class_of(level, idx_a, idx_b)
            status = table.status[cls]
            bucket = table.bucket[cls]

        resolved = status == _RESOLVED
        if resolved.any():
            if self.weighted:
                self._accum.add_resolved(
                    np.asarray(bucket[resolved], dtype=np.int64),
                    self._pair_masses(level, flat_a[resolved],
                                      flat_b[resolved]),
                )
            else:
                self.histogram.add_counts(
                    np.bincount(
                        bucket[resolved], weights=weights[resolved],
                        minlength=num,
                    )
                )
        above = status == _ABOVE
        if self.cross_split is not None:
            # A cell pair holding no cross pairs (e.g. both cells pure
            # side A) contributes nothing and must not trip the policy.
            above = above & (weights > 0)
        if above.any():
            if self.weighted:
                masses = self._pair_masses(
                    level, flat_a[above], flat_b[above]
                )
                self._accum.add_overflow(
                    sum(masses.tolist(), 0), int(above.sum())
                )
            else:
                self._handle_overflow(weights[above])
        self.stats.record_batch(
            level,
            examined=idx_a.shape[0],
            resolved=int(resolved.sum()),
            resolved_distances=float(weights[resolved].sum()),
        )

        open_mask = status == _OPEN
        if not open_mask.any():
            return None
        a_open = idx_a[open_mask]
        b_open = idx_b[open_mask]

        if level == last_level:
            if self.approximate:
                u_open, v_open = self._pair_bounds(
                    level, a_open, b_open, flat_a[open_mask],
                    flat_b[open_mask],
                )
                context = AllocationContext(
                    # Under periodic boundaries the offset class does
                    # not determine the pair geometry the sampling
                    # model assumes; omit it so heuristic 4 falls back
                    # to the proportional allocation.
                    offsets=(
                        None if self.periodic
                        else np.abs(a_open - b_open)
                    ),
                    cell_sides=self.pyramid.cell_sides(level),
                    rng=self.rng,
                )
                self._allocate(
                    u_open, v_open, weights[open_mask], context
                )
            else:
                self._leaf_distances(
                    flat_a[open_mask], flat_b[open_mask]
                )
            return None
        return a_open, b_open

    def _pair_bounds(
        self,
        level: int,
        idx_a: np.ndarray,
        idx_b: np.ndarray,
        flat_a: np.ndarray,
        flat_b: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Min/max distance bounds for a (small) subset of pairs."""
        if self.use_mbr:
            lo_arr = self.pyramid.mbr_lo(level)
            hi_arr = self.pyramid.mbr_hi(level)
            return box_pair_bounds(
                lo_arr[flat_a], hi_arr[flat_a],
                lo_arr[flat_b], hi_arr[flat_b],
            )
        if self.periodic:
            from ..geometry.distance import periodic_grid_pair_bounds

            return periodic_grid_pair_bounds(
                idx_a,
                idx_b,
                self.pyramid.cells_per_axis(level),
                self.pyramid.cell_sides(level),
            )
        from ..geometry import grid_pair_bounds

        return grid_pair_bounds(
            idx_a, idx_b, self.pyramid.cell_sides(level)
        )

    def _expand(
        self,
        carry: list[tuple[np.ndarray, np.ndarray]],
        child_level: int,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Children pairs of the unresolved parents (Fig. 2 lines 13-16).

        Works purely in index space: each parent cell's children have
        per-axis indices ``2 * parent + {0, 1}``.
        """
        dim = self.pyramid.dim
        degree = 1 << dim
        shifts = self.pyramid._child_offsets  # (2^d, d)
        step = max(1, self.pair_chunk // degree)
        child_counts = self.pyramid.counts(child_level)

        # Combo pieces are small; coalesce them into ~pair_chunk-sized
        # batches so downstream processing stays vectorized instead of
        # fragmenting 16x per level.
        buffer_a: list[np.ndarray] = []
        buffer_b: list[np.ndarray] = []
        buffered = 0
        for idx_a, idx_b in carry:
            for begin in range(0, idx_a.shape[0], step):
                a2 = idx_a[begin : begin + step] * 2
                b2 = idx_b[begin : begin + step] * 2
                # One pass per (child-of-a, child-of-b) shift combo:
                # avoids materializing the (n, 2^d, 2^d, d) intermediate
                # a broadcasted product would need.
                for sa in range(degree):
                    pa = a2 + shifts[sa]
                    live_a = child_counts[self._flat(child_level, pa)] > 0
                    if not live_a.any():
                        continue
                    pa = pa[live_a]
                    b_live = b2[live_a]
                    for sb in range(degree):
                        pb = b_live + shifts[sb]
                        keep = (
                            child_counts[self._flat(child_level, pb)] > 0
                        )
                        if not keep.any():
                            continue
                        buffer_a.append(pa[keep])
                        buffer_b.append(pb[keep])
                        buffered += buffer_a[-1].shape[0]
                        if buffered >= self.pair_chunk:
                            yield (
                                np.concatenate(buffer_a),
                                np.concatenate(buffer_b),
                            )
                            buffer_a, buffer_b = [], []
                            buffered = 0
        if buffered:
            yield np.concatenate(buffer_a), np.concatenate(buffer_b)

    # ------------------------------------------------------------------
    # Stage 3: leaf distances (Fig. 2 lines 7-11)
    # ------------------------------------------------------------------
    def _leaf_distances(self, a_ids: np.ndarray, b_ids: np.ndarray) -> None:
        if self.on_leaf_pairs is not None:
            self.on_leaf_pairs(a_ids, b_ids)
        counts = self.pyramid.counts(self.pyramid.leaf_level)
        starts = self.pyramid.leaf_starts
        positions = self.pyramid.sorted_positions
        c1 = counts[a_ids]
        c2 = counts[b_ids]
        for g1, g2 in expand_products(
            starts[a_ids], c1, starts[b_ids], c2, self.distance_chunk
        ):
            if self._sides_sorted is not None:
                keep = self._sides_sorted[g1] != self._sides_sorted[g2]
                g1, g2 = g1[keep], g2[keep]
                if g1.size == 0:
                    continue
            self._bin_pairs(positions, g1, g2)

    # ------------------------------------------------------------------
    def _allocate(
        self,
        u: np.ndarray,
        v: np.ndarray,
        weights: np.ndarray,
        context: AllocationContext,
    ) -> None:
        assert self.allocator is not None
        self.stats.approximated_pairs += int(u.size)
        self.stats.approximated_distances += float(weights.sum())
        self.histogram.add_counts(
            self.allocator.allocate(self.spec, u, v, weights, context)
        )

    def _handle_overflow(self, weights: np.ndarray) -> None:
        if self.policy is OverflowPolicy.RAISE:
            raise DistanceOverflowError(
                f"{weights.size} cell pair(s) entirely above "
                f"{self.spec.high}"
            )
        if self.policy is OverflowPolicy.CLAMP:
            self.histogram.add(
                self.spec.num_buckets - 1, float(weights.sum())
            )
        # DROP: nothing to do.

    def _start_level(self) -> int:
        if self.spec.low == 0.0:
            first_width = float(self.spec.edges[1])
            level = self.pyramid.start_level_for(first_width)
            if level is not None:
                return level
        return self.pyramid.leaf_level


# Backward-compatible alias: expand_products moved to repro.kernels.csr
# so the kernel backends can share the CSR enumeration.
_expand_products = expand_products


def _pool_values(
    leaf_values: np.ndarray, grid: int, dim: int
) -> "list[np.ndarray]":
    """Per-level cell sums, finest to coarsest, for arbitrary dtypes.

    The same 2x sum-pooling as :meth:`GridPyramid._pool_counts`, but
    usable with float side counts and object-int weight sums (python
    ints survive ``reshape``/``sum``, so the pooled sums stay exact).
    """
    height = grid.bit_length()  # grid == 2**(height-1)
    levels: "list[np.ndarray]" = [None] * height  # type: ignore
    levels[height - 1] = leaf_values
    current = leaf_values.reshape((grid,) * dim, order="F")
    for level in range(height - 2, -1, -1):
        pooled = current
        for axis in range(dim):
            g = pooled.shape[axis]
            new_shape = (
                pooled.shape[:axis] + (g // 2, 2) + pooled.shape[axis + 1 :]
            )
            pooled = pooled.reshape(new_shape).sum(axis=axis + 1)
        current = pooled
        levels[level] = current.reshape(-1, order="F").copy()
    return levels


def _resolve_spec(
    spec: BucketSpec | None,
    bucket_width: float | None,
    particles: ParticleSet,
    periodic: bool = False,
) -> BucketSpec:
    if spec is not None:
        if bucket_width is not None:
            raise QueryError("provide spec or bucket_width, not both")
        return spec
    if bucket_width is None:
        raise QueryError("provide either spec or bucket_width")
    if periodic:
        return UniformBuckets.cover(
            particles.max_periodic_distance, bucket_width
        )
    return UniformBuckets.cover(particles.max_possible_distance, bucket_width)

"""Density-map tree nodes.

Sec. III-C.1 of the paper specifies the node layout::

    (p-count, x1, x2, y1, y2, child, p-list, next)

* ``p-count`` — number of particles in the cell;
* ``x1..y2`` — the cell boundary (here an :class:`~repro.geometry.AABB`,
  which also covers the 3D case's two extra coordinates);
* ``child`` — pointer to the first child on the next level;
* ``p-list`` — heads a list of the actual particle data (leaf nodes
  only; here an index array into the dataset's coordinate array);
* ``next`` — chains the four siblings together, and the last sibling's
  ``next`` points to its cousin, so every level forms one linked list:
  a *density map*.

Two optional paper features are included: the per-type particle counts
needed by type-restricted queries, and the node MBR (minimum bounding
rectangle of the node's particles) that makes more cell pairs resolvable
higher up the tree (Sec. III-C.3).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..geometry import AABB

__all__ = ["DensityNode"]


class DensityNode:
    """One cell of one density map (one node of the quadtree).

    Attributes mirror the paper's layout; ``level`` is added for
    convenience (the paper recovers it from which linked list the node
    lives on).
    """

    __slots__ = (
        "bounds",
        "level",
        "p_count",
        "child",
        "next",
        "p_list",
        "mbr",
        "type_counts",
    )

    def __init__(self, bounds: AABB, level: int, p_count: int = 0):
        self.bounds = bounds
        self.level = level
        self.p_count = p_count
        #: First child on the next (finer) density map, or None at leaves.
        self.child: DensityNode | None = None
        #: Next sibling; for the last sibling, the first cousin.  None at
        #: the end of a level's chain.
        self.next: DensityNode | None = None
        #: Leaf nodes: indices into the dataset's coordinate array.
        self.p_list: np.ndarray | None = None
        #: Tight bounding box of the node's particles (None when empty or
        #: when the tree was built without MBRs).
        self.mbr: AABB | None = None
        #: Per-type particle counts (None for untyped datasets).
        self.type_counts: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """Whether the node has no finer density map below it."""
        return self.child is None

    @property
    def is_empty(self) -> bool:
        """Whether the cell holds no particles (skippable, Sec. III-B)."""
        return self.p_count == 0

    def children(self) -> Iterator["DensityNode"]:
        """Yield this node's 4 (2D) / 8 (3D) children, in sibling order.

        The iteration walks the ``next`` chain starting at ``child`` and
        stops after ``2**d`` nodes, because the chain continues into the
        cousins (that is the point of the ``next`` pointer).
        """
        degree = 2**self.bounds.dim
        node = self.child
        for _ in range(degree):
            if node is None:  # pragma: no cover - structural safety
                return
            yield node
            node = node.next

    def resolution_bounds(self, use_mbr: bool) -> AABB:
        """The box used when resolving this cell against another.

        With ``use_mbr`` the (tighter) particle MBR is used when
        available, which can only make min/max bounds tighter and hence
        more pairs resolvable — the optimization of Sec. III-C.3.
        """
        if use_mbr and self.mbr is not None:
            return self.mbr
        return self.bounds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "internal"
        return (
            f"DensityNode(level={self.level}, p_count={self.p_count}, "
            f"{kind}, {self.bounds!r})"
        )

"""Density-map hierarchies: the linked-node tree and the array pyramid.

Two interchangeable representations of the paper's series of density
maps: :class:`~repro.quadtree.tree.DensityMapTree` (the faithful
PR-quadtree with sibling/cousin chains, Sec. III-C) and
:class:`~repro.quadtree.grid.GridPyramid` (numpy count grids for the
vectorized engine).
"""

from .grid import GridPyramid
from .node import DensityNode
from .tree import (
    DensityMap,
    DensityMapTree,
    build_tree,
    chain_heads,
    default_leaf_occupancy,
    tree_height,
)

__all__ = [
    "DensityMap",
    "DensityMapTree",
    "DensityNode",
    "GridPyramid",
    "build_tree",
    "chain_heads",
    "default_leaf_occupancy",
    "tree_height",
]

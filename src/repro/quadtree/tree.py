"""The density-map tree (point-region quadtree / octree).

Sec. III of the paper organizes a series of density maps — grids of
doubling resolution — as a PR-quadtree whose per-level linked lists
*are* the density maps.  :class:`DensityMapTree` bulk-loads such a tree
from a :class:`~repro.data.particles.ParticleSet`:

* the number of levels follows Eq. (2):
  ``H = ceil(log_{2^d}(N / beta)) + 1`` with the average leaf occupancy
  ``beta`` set slightly above the node degree (the paper recommends
  "slightly greater than 4 in 2D, 8 for 3D" because resolving two cells
  costs more than one distance computation);
* every level is a complete grid (cells with zero particles are kept so
  each density map covers the whole space, but engines skip them);
* sibling chains are wired exactly as the paper describes: the last of
  each sibling group points to its cousin, so walking ``next`` from the
  first node of a level enumerates the whole density map;
* node MBRs and per-type counts are filled in bottom-up when requested.

The class also exposes :meth:`start_level_for`, the Fig. 2 line-2
criterion: the first density map whose cell diagonal is at most the
bucket width ``p``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..data.particles import ParticleSet
from ..errors import TreeError
from ..geometry import AABB
from .node import DensityNode

__all__ = ["DensityMap", "DensityMapTree", "tree_height"]


def tree_height(n: int, dim: int, beta: float | None = None) -> int:
    """Total number of density-map levels H per the paper's Eq. (2).

    ``H = ceil(log_{2^d}(N / beta)) + 1``; the coarsest map (level 0) is
    a single cell covering the whole space.
    """
    if n < 1:
        raise TreeError(f"need at least one particle, got {n}")
    if beta is None:
        beta = default_leaf_occupancy(dim)
    if beta <= 0:
        raise TreeError(f"beta must be positive, got {beta}")
    degree = 2**dim
    if n <= beta:
        return 1
    return int(math.ceil(math.log(n / beta, degree))) + 1


def default_leaf_occupancy(dim: int) -> float:
    """The paper's recommended beta: slightly above the node degree."""
    return 2**dim + 1.0


class DensityMap:
    """A read-only view of one tree level: one density map.

    ``cells`` holds the level's nodes in Z-order (children grouped under
    their parent, matching the sibling chains); ``cells_per_axis`` is
    ``2**level``.  The *resolution* of the paper is the reciprocal of
    :attr:`cell_sides`.
    """

    def __init__(self, level: int, cells: list[DensityNode], box: AABB):
        self.level = level
        self.cells = cells
        self.box = box

    @property
    def cells_per_axis(self) -> int:
        """Number of cells along each axis (2**level)."""
        return 2**self.level

    @property
    def cell_sides(self) -> tuple[float, ...]:
        """Per-axis side lengths of this map's cells."""
        return tuple(s / self.cells_per_axis for s in self.box.sides)

    @property
    def cell_diagonal(self) -> float:
        """Diagonal length of this map's cells."""
        return math.sqrt(sum(s * s for s in self.cell_sides))

    def nonempty_cells(self) -> list[DensityNode]:
        """Cells that actually hold particles (the engines' working set)."""
        return [cell for cell in self.cells if cell.p_count > 0]

    @property
    def head(self) -> DensityNode:
        """First node of the level's linked list (paper's array of heads)."""
        return self.cells[0]

    def iter_chain(self):
        """Iterate the level by following ``next`` pointers only.

        Provided to demonstrate/verify the paper's linked-list layout;
        ordinary code can iterate :attr:`cells` directly.
        """
        node: DensityNode | None = self.head
        while node is not None:
            yield node
            node = node.next

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DensityMap(level={self.level}, cells={len(self.cells)}, "
            f"diag={self.cell_diagonal:.4g})"
        )


class DensityMapTree:
    """A series of density maps over one dataset, organized as a tree.

    Parameters
    ----------
    particles:
        The dataset to index.
    height:
        Number of levels; defaults to Eq. (2) via :func:`tree_height`.
    beta:
        Average leaf occupancy used when ``height`` is derived.
    with_mbr:
        Compute per-node particle MBRs (Sec. III-C.3 optimization).
    """

    def __init__(
        self,
        particles: ParticleSet,
        height: int | None = None,
        beta: float | None = None,
        with_mbr: bool = False,
    ):
        if height is None:
            height = tree_height(particles.size, particles.dim, beta)
        if height < 1:
            raise TreeError(f"height must be >= 1, got {height}")
        self._particles = particles
        self._height = int(height)
        self._with_mbr = bool(with_mbr)
        self._levels: list[list[DensityNode]] = []
        self._build()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def particles(self) -> ParticleSet:
        """The indexed dataset."""
        return self._particles

    @property
    def height(self) -> int:
        """Number of density-map levels H."""
        return self._height

    @property
    def dim(self) -> int:
        """Spatial dimensionality of the indexed data."""
        return self._particles.dim

    @property
    def root(self) -> DensityNode:
        """The single cell of the coarsest density map."""
        return self._levels[0][0]

    @property
    def has_mbr(self) -> bool:
        """Whether node MBRs were computed at build time."""
        return self._with_mbr

    @property
    def num_types(self) -> int:
        """Number of distinct particle types (0 for untyped data)."""
        types = self._particles.types
        if types is None:
            return 0
        return int(types.max()) + 1

    def density_map(self, level: int) -> DensityMap:
        """The density map at a given level (0 = coarsest)."""
        if not 0 <= level < self._height:
            raise TreeError(
                f"level {level} out of range [0, {self._height})"
            )
        return DensityMap(level, self._levels[level], self._particles.box)

    def density_maps(self) -> list[DensityMap]:
        """All levels, coarsest first."""
        return [self.density_map(level) for level in range(self._height)]

    def start_level_for(self, bucket_width: float) -> int | None:
        """First level whose cell diagonal is <= the bucket width.

        This is the map ``DM_1`` where DM-SDH starts (Fig. 2 line 2): on
        it, every intra-cell distance is guaranteed to fall in the first
        bucket.  Returns None when even the finest map is too coarse
        (then the engine starts at the leaf map and computes intra-cell
        distances directly — the regime that makes small-N/large-l runs
        behave quadratically in Fig. 8).
        """
        for level in range(self._height):
            if self.density_map(level).cell_diagonal <= bucket_width:
                return level
        return None

    def leaf_points(self, node: DensityNode) -> np.ndarray:
        """Coordinate array of a leaf node's particles."""
        if node.p_list is None:
            return np.empty((0, self.dim))
        return self._particles.positions[node.p_list]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        particles = self._particles
        positions = particles.positions
        box = particles.box
        types = particles.types
        num_types = self.num_types

        self._levels = [[] for _ in range(self._height)]
        root = DensityNode(box, 0, particles.size)
        self._levels[0].append(root)
        all_idx = np.arange(particles.size, dtype=np.int64)
        self._grow(root, all_idx)

        # Wire the per-level chains: siblings first (done in _grow),
        # then close the gaps between cousin groups.
        for level_nodes in self._levels:
            for left, right in zip(level_nodes, level_nodes[1:]):
                if left.next is None:
                    left.next = right
            level_nodes[-1].next = None

        # Bottom-up annotations.
        if types is not None:
            self._fill_type_counts(types, num_types)
        if self._with_mbr:
            self._fill_mbrs(positions)

    def _grow(self, node: DensityNode, idx: np.ndarray) -> None:
        """Recursively subdivide ``node`` holding particle indices ``idx``."""
        positions = self._particles.positions
        if node.level == self._height - 1:
            node.p_list = idx
            return
        children_bounds = node.bounds.subdivide()
        center = node.bounds.center
        dim = self._particles.dim
        # Child code: bit k set when the particle is in the upper half of
        # axis k — matches AABB.subdivide ordering.
        codes = np.zeros(idx.shape[0], dtype=np.int64)
        pts = positions[idx]
        for axis in range(dim):
            codes |= (pts[:, axis] >= center[axis]).astype(np.int64) << axis
        order = np.argsort(codes, kind="stable")
        codes_sorted = codes[order]
        idx_sorted = idx[order]
        boundaries = np.searchsorted(codes_sorted, np.arange(2**dim + 1))

        previous: DensityNode | None = None
        for code, bounds in enumerate(children_bounds):
            lo_i, hi_i = boundaries[code], boundaries[code + 1]
            child = DensityNode(bounds, node.level + 1, int(hi_i - lo_i))
            self._levels[node.level + 1].append(child)
            if previous is None:
                node.child = child
            else:
                previous.next = child
            previous = child
            self._grow(child, idx_sorted[lo_i:hi_i])

    def _fill_type_counts(self, types: np.ndarray, num_types: int) -> None:
        """Per-type counts, leaves from p-lists, internals from children."""
        for level in range(self._height - 1, -1, -1):
            for node in self._levels[level]:
                if node.is_leaf:
                    if node.p_list is None or node.p_list.size == 0:
                        node.type_counts = np.zeros(num_types, dtype=np.int64)
                    else:
                        node.type_counts = np.bincount(
                            types[node.p_list], minlength=num_types
                        ).astype(np.int64)
                else:
                    total = np.zeros(num_types, dtype=np.int64)
                    for child in node.children():
                        total += child.type_counts
                    node.type_counts = total

    def _fill_mbrs(self, positions: np.ndarray) -> None:
        """Node MBRs, leaves from points, internals from child unions."""
        for level in range(self._height - 1, -1, -1):
            for node in self._levels[level]:
                if node.is_leaf:
                    if node.p_list is not None and node.p_list.size > 0:
                        node.mbr = AABB.of_points(positions[node.p_list])
                else:
                    mbr: AABB | None = None
                    for child in node.children():
                        if child.mbr is None:
                            continue
                        mbr = child.mbr if mbr is None else mbr.union(child.mbr)
                    node.mbr = mbr

    # ------------------------------------------------------------------
    # Invariant checking (used by tests; cheap enough to run ad hoc)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`TreeError` when a structural invariant is broken.

        Checks, per level: the chain from the head covers exactly the
        level's cells; counts sum to N; children counts sum to their
        parent's count; leaf p-lists match p-counts and their particles
        lie within their cell; MBRs are contained in their cell.
        """
        n = self._particles.size
        positions = self._particles.positions
        for level in range(self._height):
            dm = self.density_map(level)
            chain = list(dm.iter_chain())
            if len(chain) != len(dm.cells) or any(
                a is not b for a, b in zip(chain, dm.cells)
            ):
                raise TreeError(f"level {level}: broken sibling chain")
            total = sum(node.p_count for node in dm.cells)
            if total != n:
                raise TreeError(
                    f"level {level}: counts sum to {total}, expected {n}"
                )
            for node in dm.cells:
                if not node.is_leaf:
                    child_sum = sum(c.p_count for c in node.children())
                    if child_sum != node.p_count:
                        raise TreeError(
                            f"level {level}: child counts {child_sum} != "
                            f"parent count {node.p_count}"
                        )
                else:
                    size = 0 if node.p_list is None else node.p_list.size
                    if size != node.p_count:
                        raise TreeError(
                            f"leaf p-list size {size} != count {node.p_count}"
                        )
                    if size:
                        inside = node.bounds.contains_points(
                            positions[node.p_list]
                        )
                        if not bool(inside.all()):
                            raise TreeError("leaf particle outside its cell")
                if node.mbr is not None and not node.bounds.contains_box(
                    node.mbr
                ):
                    raise TreeError("node MBR exceeds its cell bounds")

    def node_count(self) -> int:
        """Total number of nodes across all levels."""
        return sum(len(level) for level in self._levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DensityMapTree(N={self._particles.size}, d={self.dim}, "
            f"H={self._height}, mbr={self._with_mbr})"
        )


def build_tree(
    particles: ParticleSet,
    height: int | None = None,
    beta: float | None = None,
    with_mbr: bool = False,
) -> DensityMapTree:
    """Convenience constructor mirroring :class:`DensityMapTree`."""
    return DensityMapTree(particles, height, beta, with_mbr)


def chain_heads(tree: DensityMapTree) -> Sequence[DensityNode]:
    """The per-level list heads (the paper stores these in an array)."""
    return [tree.density_map(level).head for level in range(tree.height)]

"""Array-based density-map pyramid.

The linked-node tree of :mod:`repro.quadtree.tree` is a faithful replica
of the paper's data structure, but Python objects are slow to traverse
at scale.  :class:`GridPyramid` stores the *same* series of density maps
as numpy arrays — one count grid per level, plus a CSR layout of the
particles sorted by finest-level cell — so the vectorized DM-SDH engine
(:mod:`repro.core.dm_sdh_grid`) can process millions of cell pairs in
bulk.  Both structures represent identical density maps; tests assert
their per-level counts agree cell by cell.

Cells at level ``k`` form a ``2**k``-per-axis grid over the simulation
box.  Flat cell ids are row-major over axes ``(x, y[, z])`` with x
fastest, i.e. ``flat = ix + G * (iy + G * iz)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..data.particles import ParticleSet
from ..errors import TreeError
from .tree import tree_height

__all__ = ["GridPyramid"]


class GridPyramid:
    """Density maps of doubling resolution stored as numpy count grids.

    Parameters mirror :class:`~repro.quadtree.tree.DensityMapTree`.
    With ``with_mbr`` the pyramid additionally stores, per level, the
    per-cell coordinate minima/maxima of the contained particles (the
    MBR optimization of Sec. III-C.3).
    """

    def __init__(
        self,
        particles: ParticleSet,
        height: int | None = None,
        beta: float | None = None,
        with_mbr: bool = False,
    ):
        if height is None:
            height = tree_height(particles.size, particles.dim, beta)
        if height < 1:
            raise TreeError(f"height must be >= 1, got {height}")
        self._particles = particles
        self._height = int(height)
        self._with_mbr = bool(with_mbr)
        self._build()

    # ------------------------------------------------------------------
    @classmethod
    def from_components(
        cls,
        particles: ParticleSet,
        height: int,
        leaf_starts: np.ndarray,
        sorted_positions: np.ndarray,
    ) -> "GridPyramid":
        """Reassemble a pyramid from its leaf-level arrays without rebuilding.

        This is the parallel engine's worker-side constructor: the
        parent ships ``sorted_positions`` and ``leaf_starts`` through
        shared memory, and each worker wraps zero-copy views of them
        into a pyramid whose per-level counts are re-pooled from the
        leaf counts (cheap — the whole pyramid holds ~(2^d/(2^d-1))×
        the leaf cell count).  ``particles`` must already hold the
        *sorted* positions, so :attr:`order` is the identity and is not
        materialized.  MBR arrays are not reconstructed.
        """
        self = cls.__new__(cls)
        if height < 1:
            raise TreeError(f"height must be >= 1, got {height}")
        self._particles = particles
        self._height = int(height)
        self._with_mbr = False
        self._leaf_starts = np.asarray(leaf_starts, dtype=np.int64)
        self._sorted_positions = sorted_positions
        self._order = None  # identity by construction; never gathered
        grid = 1 << (self._height - 1)
        dim = particles.dim
        if self._leaf_starts.size != grid**dim + 1:
            raise TreeError(
                f"leaf_starts has {self._leaf_starts.size} entries, "
                f"expected {grid ** dim + 1} for height {self._height}"
            )
        leaf_counts = np.diff(self._leaf_starts)
        self._counts = self._pool_counts(leaf_counts, grid, dim)
        self._child_offsets = self._make_child_offsets(dim)
        return self

    @property
    def particles(self) -> ParticleSet:
        """The indexed dataset."""
        return self._particles

    @property
    def height(self) -> int:
        """Number of levels H (level 0 is the single-cell map)."""
        return self._height

    @property
    def dim(self) -> int:
        """Spatial dimensionality."""
        return self._particles.dim

    @property
    def has_mbr(self) -> bool:
        """Whether per-cell MBR arrays were built."""
        return self._with_mbr

    @property
    def leaf_level(self) -> int:
        """Index of the finest density map."""
        return self._height - 1

    def cells_per_axis(self, level: int) -> int:
        """Grid size ``2**level`` of a level."""
        self._check_level(level)
        return 1 << level

    def cell_sides(self, level: int) -> np.ndarray:
        """Per-axis cell side lengths at a level."""
        self._check_level(level)
        sides = np.asarray(self._particles.box.sides, dtype=float)
        return sides / (1 << level)

    def cell_diagonal(self, level: int) -> float:
        """Cell diagonal at a level (start-map criterion input)."""
        sides = self.cell_sides(level)
        return float(math.sqrt(float((sides * sides).sum())))

    def counts(self, level: int) -> np.ndarray:
        """Flat int64 array of per-cell particle counts at a level."""
        self._check_level(level)
        return self._counts[level]

    def start_level_for(self, bucket_width: float) -> int | None:
        """First level with cell diagonal <= bucket width, else None."""
        for level in range(self._height):
            if self.cell_diagonal(level) <= bucket_width:
                return level
        return None

    # -- cell id arithmetic --------------------------------------------
    def decode(self, level: int, flat: np.ndarray) -> np.ndarray:
        """Per-axis integer indices ``(n, d)`` of flat cell ids."""
        grid = self.cells_per_axis(level)
        flat = np.asarray(flat, dtype=np.int64)
        out = np.empty(flat.shape + (self.dim,), dtype=np.int64)
        remaining = flat
        for axis in range(self.dim):
            out[..., axis] = remaining % grid
            remaining = remaining // grid
        return out

    def encode(self, level: int, idx: np.ndarray) -> np.ndarray:
        """Flat cell ids from per-axis indices (inverse of :meth:`decode`)."""
        grid = self.cells_per_axis(level)
        idx = np.asarray(idx, dtype=np.int64)
        flat = np.zeros(idx.shape[:-1], dtype=np.int64)
        for axis in range(self.dim - 1, -1, -1):
            flat = flat * grid + idx[..., axis]
        return flat

    def children_of(self, level: int, flat: np.ndarray) -> np.ndarray:
        """Flat ids ``(n, 2**d)`` of each cell's children one level down.

        This is the refinement step of ``RESOLVETWOCELLS`` (Fig. 2 lines
        13–16): a non-resolvable cell is replaced by its 4/8 partitions
        on the next density map.
        """
        if level + 1 >= self._height:
            raise TreeError(f"level {level} has no children")
        idx = self.decode(level, flat)  # (n, d)
        offsets = self._child_offsets  # (2**d, d)
        child_idx = idx[:, None, :] * 2 + offsets[None, :, :]
        return self.encode(level + 1, child_idx)

    # -- particle access (leaf level, CSR layout) -----------------------
    def leaf_slice(self, flat: int) -> np.ndarray:
        """Dataset indices of the particles in one leaf cell."""
        start = self._leaf_starts[flat]
        stop = self._leaf_starts[flat + 1]
        return self._order[start:stop]

    @property
    def leaf_starts(self) -> np.ndarray:
        """CSR offsets: leaf cell ``c`` owns ``order[starts[c]:starts[c+1]]``."""
        return self._leaf_starts

    @property
    def order(self) -> np.ndarray:
        """Dataset indices sorted by leaf cell id."""
        return self._order

    @property
    def sorted_positions(self) -> np.ndarray:
        """Positions re-ordered by leaf cell (cache-friendly gathers)."""
        return self._sorted_positions

    # -- MBR arrays ------------------------------------------------------
    def mbr_lo(self, level: int) -> np.ndarray:
        """Per-cell particle-coordinate minima ``(cells, d)`` (MBR mode).

        Empty cells hold ``+inf``; engines must mask them out (they skip
        empty cells anyway).
        """
        self._require_mbr()
        self._check_level(level)
        return self._mbr_lo[level]

    def mbr_hi(self, level: int) -> np.ndarray:
        """Per-cell particle-coordinate maxima (``-inf`` when empty)."""
        self._require_mbr()
        self._check_level(level)
        return self._mbr_hi[level]

    # ------------------------------------------------------------------
    def _build(self) -> None:
        particles = self._particles
        positions = particles.positions
        dim = particles.dim
        height = self._height
        grid = 1 << (height - 1)

        lo = np.asarray(particles.box.lo)
        sides = np.asarray(particles.box.sides, dtype=float)
        # Bin to the finest level; particles exactly on the upper box
        # face are clipped into the last cell.
        scaled = (positions - lo) / sides * grid
        cell_idx = np.clip(scaled.astype(np.int64), 0, grid - 1)
        flat = np.zeros(positions.shape[0], dtype=np.int64)
        for axis in range(dim - 1, -1, -1):
            flat = flat * grid + cell_idx[:, axis]

        num_leaves = grid**dim
        leaf_counts = np.bincount(flat, minlength=num_leaves)
        self._order = np.argsort(flat, kind="stable").astype(np.int64)
        self._sorted_positions = np.ascontiguousarray(positions[self._order])
        starts = np.zeros(num_leaves + 1, dtype=np.int64)
        np.cumsum(leaf_counts, out=starts[1:])
        self._leaf_starts = starts

        self._counts = self._pool_counts(leaf_counts, grid, dim)
        self._child_offsets = self._make_child_offsets(dim)

        if self._with_mbr:
            self._build_mbrs(flat, positions, grid, dim)

    @staticmethod
    def _pool_counts(
        leaf_counts: np.ndarray, grid: int, dim: int
    ) -> "list[np.ndarray]":
        """Count pyramid, finest to coarsest, by 2x sum-pooling per axis."""
        height = grid.bit_length()  # grid == 2**(height-1)
        counts: list[np.ndarray] = [None] * height  # type: ignore
        counts[height - 1] = np.asarray(leaf_counts, dtype=np.int64)
        current = counts[height - 1].reshape((grid,) * dim, order="F")
        for level in range(height - 2, -1, -1):
            pooled = current
            for axis in range(dim):
                g = pooled.shape[axis]
                new_shape = (
                    pooled.shape[:axis] + (g // 2, 2) + pooled.shape[axis + 1 :]
                )
                pooled = pooled.reshape(new_shape).sum(axis=axis + 1)
            current = pooled
            counts[level] = np.ascontiguousarray(
                current.reshape(-1, order="F")
            ).astype(np.int64)
        return counts

    @staticmethod
    def _make_child_offsets(dim: int) -> np.ndarray:
        """Child-offset table in the same axis order as encode/decode."""
        offsets = np.zeros((2**dim, dim), dtype=np.int64)
        for code in range(2**dim):
            for axis in range(dim):
                offsets[code, axis] = (code >> axis) & 1
        return offsets

    def _build_mbrs(
        self,
        flat: np.ndarray,
        positions: np.ndarray,
        grid: int,
        dim: int,
    ) -> None:
        height = self._height
        num_leaves = grid**dim
        lo = np.full((num_leaves, dim), np.inf)
        hi = np.full((num_leaves, dim), -np.inf)
        np.minimum.at(lo, flat, positions)
        np.maximum.at(hi, flat, positions)
        self._mbr_lo: list[np.ndarray] = [None] * height  # type: ignore
        self._mbr_hi: list[np.ndarray] = [None] * height  # type: ignore
        self._mbr_lo[height - 1] = lo
        self._mbr_hi[height - 1] = hi
        for level in range(height - 2, -1, -1):
            child_grid = 1 << (level + 1)
            parent_grid = 1 << level
            num_parents = parent_grid**dim
            child_ids = np.arange(child_grid**dim, dtype=np.int64)
            child_axes = self.decode(level + 1, child_ids)
            parent_flat = self.encode(level, child_axes // 2)
            plo = np.full((num_parents, dim), np.inf)
            phi = np.full((num_parents, dim), -np.inf)
            np.minimum.at(plo, parent_flat, self._mbr_lo[level + 1])
            np.maximum.at(phi, parent_flat, self._mbr_hi[level + 1])
            self._mbr_lo[level] = plo
            self._mbr_hi[level] = phi

    def _require_mbr(self) -> None:
        if not self._with_mbr:
            raise TreeError("pyramid was built without MBRs")

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self._height:
            raise TreeError(
                f"level {level} out of range [0, {self._height})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridPyramid(N={self._particles.size}, d={self.dim}, "
            f"H={self._height}, mbr={self._with_mbr})"
        )

"""Simulated storage stack for the paper's I/O-cost analysis (Sec. IV-B).

Pages, an LRU buffer pool, the cell-clustered data layout, and the
I/O experiments comparing DM-SDH's page-access trace against a blocked
nested-loop self-join.
"""

from .io_model import IOReport, blocked_join_io, dm_sdh_io, dm_sdh_io_bound
from .layout import CellPageLayout
from .pager import BufferPool, IOCounter, PagedFile

__all__ = [
    "BufferPool",
    "CellPageLayout",
    "IOCounter",
    "IOReport",
    "PagedFile",
    "blocked_join_io",
    "dm_sdh_io",
    "dm_sdh_io_bound",
]

"""A minimal paged-storage simulator with an LRU buffer pool.

Sec. IV-B of the paper discusses the I/O cost of DM-SDH: data points
are "organized in data pages of associated density map cells", and one
data page "only needs to be paired with O(sqrt(N)) other data pages for
distance calculation" in 2D — asymptotically below the quadratic page
cost of a blocked nested-loop self-join.  To *measure* that claim
without a real disk, this module simulates the storage stack: a
:class:`PagedFile` of fixed-size pages and a :class:`BufferPool` with
LRU replacement that counts hits and misses.  A miss is one simulated
disk read; the benchmarks report miss counts, which are deterministic
and machine-independent.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..errors import StorageError

__all__ = ["IOCounter", "PagedFile", "BufferPool"]


@dataclass
class IOCounter:
    """Tally of simulated I/O events."""

    reads: int = 0  #: physical page reads (buffer misses)
    hits: int = 0  #: logical reads served from the buffer
    writes: int = 0  #: physical page writes

    @property
    def logical_reads(self) -> int:
        """All page requests, hit or miss."""
        return self.reads + self.hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served without touching "disk"."""
        total = self.logical_reads
        if total == 0:
            return 0.0
        return self.hits / total

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.hits = 0
        self.writes = 0


@dataclass
class PagedFile:
    """An append-only sequence of fixed-capacity pages.

    Pages hold numpy record payloads (here: particle indices or row
    slices); the simulator only cares about identity and count, but
    real payloads are stored so tests can verify layout correctness.
    """

    page_size: int
    pages: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.page_size < 1:
            raise StorageError(
                f"page_size must be >= 1, got {self.page_size}"
            )

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return len(self.pages)

    def append_records(self, records: np.ndarray) -> tuple[int, int]:
        """Append records packed into as many new pages as needed.

        Returns the ``(first_page, last_page)`` id range used.  Records
        never share a page with a previous append — this models the
        paper's layout where each page belongs to one density-map cell
        (or a run of sibling cells).
        """
        records = np.asarray(records)
        if records.shape[0] == 0:
            raise StorageError("cannot append zero records")
        first = self.num_pages
        for lo in range(0, records.shape[0], self.page_size):
            self.pages.append(records[lo : lo + self.page_size])
        return first, self.num_pages - 1

    def read_page(self, page_id: int) -> np.ndarray:
        """Fetch a page payload directly (no buffering, no counting)."""
        if not 0 <= page_id < self.num_pages:
            raise StorageError(f"page {page_id} was never allocated")
        return self.pages[page_id]


class BufferPool:
    """Fixed-capacity LRU page cache over one or more paged files.

    ``get(file_tag, page_id)`` returns whether the access was a hit and
    charges the counter; payload delivery is delegated to the caller
    (the simulator separates counting from data movement so access
    traces can be replayed without materializing data).
    """

    def __init__(self, capacity: int, counter: IOCounter | None = None):
        if capacity < 1:
            raise StorageError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.counter = counter if counter is not None else IOCounter()
        self._slots: OrderedDict[tuple[Hashable, int], None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._slots)

    def contains(self, file_tag: Hashable, page_id: int) -> bool:
        """Whether the page currently sits in the pool (no counting)."""
        return (file_tag, page_id) in self._slots

    def get(self, file_tag: Hashable, page_id: int) -> bool:
        """Request a page; returns True on a buffer hit.

        On a miss the page is loaded (counted as one read) and the
        least-recently-used page is evicted when the pool is full.
        """
        key = (file_tag, page_id)
        if key in self._slots:
            self._slots.move_to_end(key)
            self.counter.hits += 1
            return True
        self.counter.reads += 1
        self._slots[key] = None
        if len(self._slots) > self.capacity:
            self._slots.popitem(last=False)
        return False

    def get_many(self, file_tag: Hashable, page_ids: np.ndarray) -> int:
        """Request a run of pages; returns the number of misses."""
        before = self.counter.reads
        for page_id in np.asarray(page_ids).ravel():
            self.get(file_tag, int(page_id))
        return self.counter.reads - before

    def clear(self) -> None:
        """Drop all cached pages (counters are kept)."""
        self._slots.clear()

"""Physical layout: pack particle data into pages by density-map cell.

Sec. IV-B item 1: "the distance calculations will happen between data
points organized in data pages of associated density map cells (i.e.,
no random reading is needed)".  :class:`CellPageLayout` realizes that
layout over a :class:`~repro.quadtree.grid.GridPyramid`: the particle
rows, already sorted by leaf cell (the pyramid's CSR order), are packed
into consecutive pages, and every leaf cell knows the contiguous page
run holding its particles.
"""

from __future__ import annotations

import numpy as np

from ..errors import StorageError
from ..quadtree.grid import GridPyramid
from .pager import PagedFile

__all__ = ["CellPageLayout"]


class CellPageLayout:
    """Pages of particle rows, clustered by leaf density-map cell.

    Parameters
    ----------
    pyramid:
        The density-map pyramid whose leaf order defines clustering.
    page_size:
        Records per page (the paper's blocking factor ``b``).
    """

    def __init__(self, pyramid: GridPyramid, page_size: int):
        if page_size < 1:
            raise StorageError(f"page_size must be >= 1, got {page_size}")
        self.pyramid = pyramid
        self.page_size = int(page_size)
        self.file = PagedFile(page_size)

        order = pyramid.order
        positions = pyramid.sorted_positions
        # One big append keeps rows in leaf-cell order; cell boundaries
        # are recovered arithmetically below.
        self.file.append_records(
            np.concatenate(
                [order[:, None].astype(float), positions], axis=1
            )
        )
        # Page span of each leaf cell: record range [start, stop) maps
        # to pages [start // b, (stop - 1) // b].
        starts = pyramid.leaf_starts
        self._first_page = starts[:-1] // self.page_size
        last_record = np.maximum(starts[1:] - 1, starts[:-1])
        self._last_page = last_record // self.page_size

    @property
    def num_pages(self) -> int:
        """Total data pages (``ceil(N / b)``)."""
        return self.file.num_pages

    @property
    def first_pages(self) -> np.ndarray:
        """Per-leaf-cell id of the first page holding its particles.

        Meaningless for empty cells (they own no records); callers must
        mask those out.
        """
        return self._first_page

    def pages_of_cell(self, flat_cell: int) -> np.ndarray:
        """Page ids holding a leaf cell's particles (empty cell -> none)."""
        starts = self.pyramid.leaf_starts
        if starts[flat_cell + 1] == starts[flat_cell]:
            return np.empty(0, dtype=np.int64)
        return np.arange(
            self._first_page[flat_cell],
            self._last_page[flat_cell] + 1,
            dtype=np.int64,
        )

    def pages_of_cells(self, flat_cells: np.ndarray) -> np.ndarray:
        """Deduplicated, order-preserving page ids for a batch of cells.

        Consecutive duplicate pages (cells sharing a page) collapse, so
        replays charge each physically contiguous access once.
        """
        flat_cells = np.asarray(flat_cells, dtype=np.int64)
        if flat_cells.size == 0:
            return np.empty(0, dtype=np.int64)
        runs = [self.pages_of_cell(int(c)) for c in flat_cells]
        runs = [r for r in runs if r.size]
        if not runs:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate(runs)
        keep = np.ones(merged.size, dtype=bool)
        keep[1:] = merged[1:] != merged[:-1]
        return merged[keep]

    def verify(self) -> None:
        """Check that page contents agree with the pyramid's CSR order."""
        starts = self.pyramid.leaf_starts
        positions = self.pyramid.sorted_positions
        n = positions.shape[0]
        row = 0
        for page_id in range(self.file.num_pages):
            payload = self.file.read_page(page_id)
            span = payload.shape[0]
            if not np.array_equal(payload[:, 1:], positions[row : row + span]):
                raise StorageError(f"page {page_id} payload mismatch")
            row += span
        if row != n:
            raise StorageError(f"pages hold {row} records, expected {n}")
        if int(self._last_page[-1]) != self.file.num_pages - 1 and starts[
            -1
        ] != starts[-2]:
            raise StorageError("cell-to-page map out of range")

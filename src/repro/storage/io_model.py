"""I/O cost measurement: DM-SDH versus the blocked nested-loop baseline.

Sec. IV-B claims DM-SDH's I/O complexity is ``O((N/b)^{(2d-1)/d})`` —
asymptotically below the ``O((N/b)^2 / B)`` page cost of computing all
distances with a block-based nested-loop self-join.  This module turns
both claims into measurements on the simulated storage stack:

* :func:`blocked_join_io` — the classic analytic page cost of a block
  nested-loop self-join, plus an exact buffer-pool replay;
* :func:`dm_sdh_io` — replays the *actual* leaf-page access trace of a
  DM-SDH run (captured via the engine's ``on_leaf_pairs`` hook) against
  an LRU buffer pool.

Both report buffer *misses*, which are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.buckets import BucketSpec
from ..core.dm_sdh_grid import GridSDHEngine
from ..data.particles import ParticleSet
from ..errors import StorageError
from ..quadtree.grid import GridPyramid
from .layout import CellPageLayout
from .pager import BufferPool, IOCounter

__all__ = ["IOReport", "blocked_join_io", "dm_sdh_io", "dm_sdh_io_bound"]

_DATA_TAG = "data"


@dataclass(frozen=True)
class IOReport:
    """Result of one simulated I/O experiment."""

    num_pages: int  #: data pages P = ceil(N / b)
    buffer_pages: int  #: buffer pool capacity B
    page_reads: int  #: physical reads (buffer misses)
    logical_reads: int  #: total page requests
    #: Distinct (page, page) combinations brought together for distance
    #: work — the quantity behind the paper's "one data page only needs
    #: to be paired with O(sqrt(N)) other data pages" (0 for the join,
    #: which pairs every page with every page by construction).
    page_pairs: int = 0

    @property
    def hit_ratio(self) -> float:
        """Buffer hit ratio of the run."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.page_reads / self.logical_reads


def blocked_join_io(
    num_pages: int,
    buffer_pages: int,
    simulate: bool = True,
) -> IOReport:
    """Page cost of a block nested-loop *self*-join over the data file.

    The brute-force SDH reads every pair of pages: with ``B`` buffer
    pages, ``B - 1`` outer pages are pinned per outer block and the
    whole file streams past them.  Analytically that costs::

        P + ceil(P / (B - 1)) * P        physical reads (roughly)

    With ``simulate=True`` the exact access trace is replayed through
    the LRU pool instead, which is what the benchmarks report.
    """
    if num_pages < 1:
        raise StorageError("need at least one page")
    if buffer_pages < 2:
        raise StorageError("block nested loop needs >= 2 buffer pages")
    if not simulate:
        outer_blocks = -(-num_pages // (buffer_pages - 1))
        reads = num_pages + outer_blocks * num_pages
        return IOReport(num_pages, buffer_pages, reads, reads)

    counter = IOCounter()
    pool = BufferPool(buffer_pages, counter)
    block = buffer_pages - 1
    for outer_lo in range(0, num_pages, block):
        outer = range(outer_lo, min(outer_lo + block, num_pages))
        for page in outer:
            pool.get(_DATA_TAG, page)
        for inner in range(num_pages):
            pool.get(_DATA_TAG, inner)
    return IOReport(
        num_pages, buffer_pages, counter.reads, counter.logical_reads
    )


def dm_sdh_io(
    particles: ParticleSet,
    spec: BucketSpec,
    page_size: int,
    buffer_pages: int,
    pyramid: GridPyramid | None = None,
) -> IOReport:
    """Replay a real DM-SDH run's leaf-page accesses through a buffer.

    Only leaf-level distance calculations touch particle data (cell
    resolution reads the density maps, which are tiny — Sec. IV-B item
    2 notes their I/O "will be much smaller"); the engine's
    ``on_leaf_pairs`` hook captures exactly those accesses.
    """
    if pyramid is None:
        pyramid = GridPyramid(particles)
    layout = CellPageLayout(pyramid, page_size)
    counter = IOCounter()
    pool = BufferPool(buffer_pages, counter)
    num_pages = layout.num_pages
    first_page = layout.first_pages
    pair_keys: set[int] = set()

    def observe(a_ids: np.ndarray, b_ids: np.ndarray) -> None:
        if a_ids is b_ids or np.array_equal(a_ids, b_ids):
            # Intra-cell scan: each cell's own pages stream once.
            pool.get_many(_DATA_TAG, layout.pages_of_cells(a_ids))
            return
        # Distinct page pairs (cells are finer than pages; each cell's
        # first page represents it — cells rarely straddle pages).
        pa = first_page[np.minimum(a_ids, b_ids)]
        pb = first_page[np.maximum(a_ids, b_ids)]
        pair_keys.update(np.unique(pa * num_pages + pb).tolist())
        # LRU replay, scheduled for locality: group by the first cell
        # so its pages stay pinned while partners stream past — the
        # blocking the paper assumes when it counts one page against
        # its O(sqrt(N)) partner pages.
        order = np.lexsort((pb, pa))
        for a, b in zip(a_ids[order], b_ids[order]):
            pool.get_many(_DATA_TAG, layout.pages_of_cell(int(a)))
            pool.get_many(_DATA_TAG, layout.pages_of_cell(int(b)))

    engine = GridSDHEngine(pyramid, spec=spec)
    engine.on_leaf_pairs = observe
    engine.run()
    return IOReport(
        layout.num_pages,
        buffer_pages,
        counter.reads,
        counter.logical_reads,
        page_pairs=len(pair_keys),
    )


def dm_sdh_io_bound(n: int, page_size: int, dim: int) -> float:
    """The paper's asymptotic I/O bound ``(N / b)^{(2d-1)/d}``."""
    if n < 1 or page_size < 1:
        raise StorageError("n and page_size must be positive")
    pages = max(1.0, n / page_size)
    return pages ** ((2 * dim - 1) / dim)

"""Correctness tooling: differential runs, invariants, seeded fuzzing.

DM-SDH is exact, so the repo carries several engines that must agree
*bit for bit* — and the approximate ADM-SDH variant whose error the
paper's Sec. V model predicts.  This package turns those facts into an
executable harness (``repro-sdh verify``):

* :mod:`~repro.verify.differential` — one request, every registered
  engine, one answer (plus ADM error bounded by the model);
* :mod:`~repro.verify.invariants` — metamorphic properties (pair
  conservation, rigid motions, split/merge additivity, bucket
  refinement, weight-scaling bilinearity, zero-weight deletion,
  cross-vs-self identities) that need no oracle;
* :mod:`~repro.verify.fuzz` — deterministic seeded adversarial case
  generation with greedy shrinking;
* :mod:`~repro.verify.corpus` — failures persisted as replayable JSON
  reproducers.
"""

from .corpus import Corpus
from .differential import (
    Discrepancy,
    EngineOutcome,
    check_adm_bounds,
    check_planner_neutrality,
    compare_engines,
    exact_engines,
    run_engines,
)
from .fuzz import (
    FuzzCase,
    VerifyReport,
    evaluate_case,
    generate_case,
    run_verification,
    shrink_case,
)
from .invariants import (
    ALL_INVARIANTS,
    CROSS_INVARIANTS,
    run_cross_invariants,
    run_invariants,
    snap_dyadic,
)

__all__ = [
    "ALL_INVARIANTS",
    "CROSS_INVARIANTS",
    "run_cross_invariants",
    "Corpus",
    "Discrepancy",
    "EngineOutcome",
    "FuzzCase",
    "VerifyReport",
    "check_adm_bounds",
    "check_planner_neutrality",
    "compare_engines",
    "evaluate_case",
    "exact_engines",
    "generate_case",
    "run_engines",
    "run_invariants",
    "run_verification",
    "shrink_case",
    "snap_dyadic",
]

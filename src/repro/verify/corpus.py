"""A replayable corpus of shrunk verify failures.

Every failure the fuzzer finds is worth keeping: after the bug is
fixed, replaying the shrunk reproducer is a regression test that costs
microseconds and never rots (the case carries its own dataset and
request, so it does not depend on the fuzzer's generation logic
staying stable).  The on-disk format is one JSON file per case —
human-readable, diff-friendly, and safe to commit.

Promotion workflow (see ``docs/TESTING.md``): a failing verify run
writes ``<name>-<seed>.json`` files into the corpus directory given on
the command line; commit the ones that reproduce a real bug, and the
test suite (plus every future ``repro-sdh verify --corpus`` run)
replays them forever.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from .differential import Discrepancy
from .fuzz import FuzzCase, evaluate_case

__all__ = ["Corpus"]


class Corpus:
    """A directory of JSON-serialized :class:`FuzzCase` reproducers."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    def __len__(self) -> int:
        return sum(1 for _ in self.paths())

    def paths(self) -> list[Path]:
        """Case files, sorted for deterministic replay order."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def cases(self) -> Iterator[tuple[Path, FuzzCase]]:
        """Load every case in the corpus."""
        for path in self.paths():
            with open(path, "r", encoding="utf-8") as handle:
                body = json.load(handle)
            yield path, FuzzCase.from_dict(body)

    def save(
        self,
        case: FuzzCase,
        discrepancies: list[Discrepancy] | None = None,
        note: str = "",
    ) -> Path:
        """Persist ``case``; returns the written path.

        The discrepancies observed at save time are embedded as a
        ``reason`` field — documentation for the reader, ignored on
        replay (replay re-evaluates from scratch).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        body = case.to_dict()
        if note:
            body["note"] = note
        if discrepancies:
            body["reason"] = [d.to_dict() for d in discrepancies]
        stem = f"{case.name}-{case.seed}" if case.seed >= 0 else case.name
        path = self.directory / f"{stem}.json"
        suffix = 1
        while path.exists():
            path = self.directory / f"{stem}-{suffix}.json"
            suffix += 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(body, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    def replay(
        self,
        engines: tuple[str, ...] | None = None,
        invariants: bool = True,
        workers: int = 2,
        planner: bool = True,
    ) -> tuple[int, list[Discrepancy]]:
        """Re-evaluate every stored case; return (count, discrepancies).

        A historical reproducer that fails again is reported under its
        file name so the report points straight at the regressed case.
        """
        found: list[Discrepancy] = []
        replayed = 0
        for path, case in self.cases():
            replayed += 1
            for item in evaluate_case(
                case,
                engines=engines,
                invariants=invariants,
                workers=workers,
                planner=planner,
            ):
                found.append(
                    Discrepancy(
                        item.kind,
                        item.detail,
                        case=f"corpus:{path.name}",
                        seed=item.seed,
                    )
                )
        return replayed, found

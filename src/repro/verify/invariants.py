"""Metamorphic invariants no exact SDH engine may violate.

Each check derives a second query whose answer is *provably determined*
by the first — no oracle histogram needed — and demands exact
agreement:

* pair conservation — bucket totals equal ``N(N-1)/2`` when the spec
  covers the box diagonal;
* rigid motions — translating the dataset (box included), reflecting
  it about the box center, or permuting coordinate axes leaves every
  pairwise distance, hence every count, unchanged;
* additivity — splitting the dataset into disjoint halves A and B,
  ``h(A ∪ B) = h(A) + h(B) + h(A × B)`` with the cross term from the
  brute-force kernel;
* refinement — halving the bucket width ``p`` splits each bucket into
  exactly two, so adjacent fine-bucket pairs must sum back to the
  coarse counts;
* weight-scaling bilinearity — scaling every weight by an exact power
  of two ``2^k`` scales every bucket by exactly ``2^(2k)`` (pair mass
  is bilinear in the weights, and power-of-two scaling commutes with
  correct rounding), and attaching all-ones weights to an unweighted
  set reproduces the count histogram bit-for-bit;
* zero-weight deletion — particles carrying weight 0 contribute exact
  zero mass to every pair product, so appending them changes nothing;
* cross(A, A) ≡ 2·self(A) — a cross-set query of a dataset against
  itself counts every unordered pair twice plus the zero-distance
  diagonal, so buckets past the first match ``2 × self`` bit-for-bit
  and bucket 0 carries the extra ``Σ wᵢ²`` diagonal mass;
* cross split/merge additivity — partitioning B into B₁ ∪ B₂ gives
  ``h(A × B) = h(A × B₁) + h(A × B₂)`` (exactly for counts; within a
  rounding envelope for weighted mass, where each term is rounded
  independently).

Exactness note: the rigid-motion checks compare *bit-identical* counts,
which is sound only when the motion itself is exact in float64.  The
helpers therefore snap datasets and translation vectors to a dyadic
grid (:func:`snap_dyadic`) so every coordinate sum/difference is exact;
the verify fuzzer generates dyadic coordinates for the same reason.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.brute_force import brute_force_cross_sdh
from ..core.buckets import UniformBuckets
from ..core.query import compute_sdh
from ..core.request import SDHRequest
from ..data.particles import ParticleSet
from ..geometry import AABB
from ..kernels import exact
from .differential import Discrepancy

__all__ = [
    "snap_dyadic",
    "check_pair_conservation",
    "check_translation",
    "check_reflection",
    "check_axis_permutation",
    "check_additivity",
    "check_refinement",
    "check_weight_scaling",
    "check_zero_weight_deletion",
    "check_cross_self_identity",
    "check_cross_symmetry",
    "check_cross_split_additivity",
    "ALL_INVARIANTS",
    "CROSS_INVARIANTS",
    "run_invariants",
    "run_cross_invariants",
]

#: Coordinates are snapped to multiples of 2**-DYADIC_BITS so that
#: adding a same-grid translation (magnitude < 2**(53 - DYADIC_BITS))
#: is exact in float64 and rigid motions preserve distances bit-for-bit.
DYADIC_BITS = 24


def snap_dyadic(particles: ParticleSet, bits: int = DYADIC_BITS) -> ParticleSet:
    """A copy of ``particles`` with coordinates on the dyadic grid.

    The box is re-derived from the snapped coordinates (snapping can
    move a point past the declared box edge by one grid step, and the
    default enclosing cube is itself not dyadic).
    """
    scale = float(1 << bits)
    positions = np.round(particles.positions * scale) / scale
    lo = np.floor(positions.min(axis=0) * scale) / scale
    hi = np.ceil(positions.max(axis=0) * scale) / scale
    side = float((hi - lo).max())
    if side <= 0:
        side = 1.0
    box = AABB.from_arrays(lo, lo + side)
    return ParticleSet(
        positions, box, particles.types, particles.type_names,
        weights=particles.weights,
    )


def _weighted_tolerance(*weight_sets: np.ndarray | None) -> float:
    """An absolute rounding envelope for composed weighted histograms.

    Each finalized bucket is correctly rounded from an exact scaled
    integer, so any identity *composed from independently rounded
    terms* (a sum of buckets, a merge of two histograms) can drift by a
    few ulps of the total absolute pair mass — the natural scale even
    under catastrophic cancellation of negative weights.  2^-46 of
    that mass is ~128 rounding ulps: far above legitimate drift, far
    below any real double-counting or dropped-pair bug (whose signature
    is at least one full pair product).
    """
    total = 1.0
    for weights in weight_sets:
        if weights is None:
            continue
        magnitude = float(np.abs(weights).sum())
        total *= max(magnitude, 1.0)
    return total * 2.0**-46


def _pinned(request: SDHRequest, particles: ParticleSet) -> SDHRequest:
    """The request with its bucket spec resolved against ``particles``.

    Metamorphic twins must be answered over *identical* edges; pinning
    the spec keeps a translated/reflected dataset from re-deriving it
    (identically, but the intent should be explicit).
    """
    spec = request.resolved_spec(particles)
    return request.replace(
        spec=spec, bucket_width=None, num_buckets=None
    )


def _counts(particles: ParticleSet, request: SDHRequest) -> np.ndarray:
    return compute_sdh(particles, request).counts


def check_pair_conservation(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Total counts must equal ``N(N-1)/2`` (or ``ΣᵢΣⱼwᵢwⱼ``) exactly.

    For weighted sets the per-bucket masses are each correctly rounded,
    so their float sum may drift from the correctly-rounded total by a
    few ulps — the comparison uses the weighted rounding envelope.
    """
    request = _pinned(request, particles)
    total = float(_counts(particles, request).sum())
    if particles.weighted:
        expected = exact.exact_weighted_total(particles.weights)
        tolerance = _weighted_tolerance(
            particles.weights, particles.weights
        )
        if abs(total - expected) > tolerance:
            return [
                f"weighted histogram total {total!r} != exact pair "
                f"mass {expected!r}"
            ]
        return []
    expected = float(particles.num_pairs)
    if total != expected:
        return [
            f"histogram total {total:g} != N(N-1)/2 = {expected:g}"
        ]
    return []


def check_translation(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Translating data and box together must not change any count."""
    request = _pinned(request, particles)
    baseline = _counts(particles, request)
    sides = np.asarray(particles.box.sides, dtype=float)
    scale = float(1 << DYADIC_BITS)
    shift = np.round(rng.uniform(-1.0, 1.0, particles.dim) * sides * scale)
    shift /= scale
    moved = ParticleSet(
        particles.positions + shift,
        AABB.from_arrays(
            np.asarray(particles.box.lo) + shift,
            np.asarray(particles.box.hi) + shift,
        ),
        particles.types,
        particles.type_names,
        weights=particles.weights,
    )
    translated = _counts(moved, request)
    if not np.array_equal(baseline, translated):
        return [_diff_message("translation", baseline, translated)]
    return []


def check_reflection(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Reflecting about the box center must not change any count."""
    request = _pinned(request, particles)
    baseline = _counts(particles, request)
    lo = np.asarray(particles.box.lo)
    hi = np.asarray(particles.box.hi)
    mirrored = ParticleSet(
        (lo + hi) - particles.positions,
        particles.box,
        particles.types,
        particles.type_names,
        weights=particles.weights,
    )
    reflected = _counts(mirrored, request)
    if not np.array_equal(baseline, reflected):
        return [_diff_message("reflection", baseline, reflected)]
    return []


def check_axis_permutation(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Permuting coordinate axes must not change any count."""
    request = _pinned(request, particles)
    baseline = _counts(particles, request)
    perm = rng.permutation(particles.dim)
    lo = np.asarray(particles.box.lo)[perm]
    hi = np.asarray(particles.box.hi)[perm]
    permuted_set = ParticleSet(
        particles.positions[:, perm],
        AABB.from_arrays(lo, hi),
        particles.types,
        particles.type_names,
        weights=particles.weights,
    )
    permuted = _counts(permuted_set, request)
    if not np.array_equal(baseline, permuted):
        return [_diff_message("axis permutation", baseline, permuted)]
    return []


def check_additivity(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Split/merge identity: ``h(A ∪ B) = h(A) + h(B) + h(A × B)``.

    This is the invariant every sharded engine leans on (the parallel
    merge, the incremental delta layer), exercised through the public
    :meth:`~repro.core.histogram.DistanceHistogram.merge` path so a
    perturbed merge is caught here.
    """
    if particles.size < 4:
        return []
    request = _pinned(request, particles)
    whole = compute_sdh(particles, request)
    mask = rng.random(particles.size) < 0.5
    if not mask.any() or mask.all():
        mask[0] = True
        mask[-1] = False
    part_a = particles.select(mask)
    part_b = particles.select(~mask)
    merged = compute_sdh(part_a, request).merge(
        compute_sdh(part_b, request)
    )
    cross = brute_force_cross_sdh(
        part_a, part_b, request.spec, periodic=request.periodic
    )
    merged = merged.merge(cross)
    if particles.weighted:
        # Three independently rounded terms: hold the identity to the
        # weighted rounding envelope instead of bit-identity.
        tolerance = _weighted_tolerance(
            particles.weights, particles.weights
        )
        if not np.allclose(
            whole.counts, merged.counts, rtol=0.0, atol=tolerance
        ):
            return [
                _diff_message("additivity", whole.counts, merged.counts)
            ]
        return []
    if not np.array_equal(whole.counts, merged.counts):
        return [_diff_message("additivity", whole.counts, merged.counts)]
    return []


def check_refinement(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Halving ``p`` refines buckets: fine pairs must sum to coarse.

    Only defined for uniform specs; custom-edge requests are skipped.
    """
    request = _pinned(request, particles)
    spec = request.spec
    if not isinstance(spec, UniformBuckets):
        return []
    coarse = _counts(particles, request)
    fine_spec = UniformBuckets(spec.width / 2.0, spec.num_buckets * 2)
    fine = _counts(particles, request.replace(spec=fine_spec))
    coarsened = fine[0::2] + fine[1::2]
    if particles.weighted:
        tolerance = _weighted_tolerance(
            particles.weights, particles.weights
        )
        if not np.allclose(
            coarse, coarsened, rtol=0.0, atol=tolerance
        ):
            return [_diff_message("refinement", coarse, coarsened)]
        return []
    if not np.array_equal(coarse, coarsened):
        return [_diff_message("refinement", coarse, coarsened)]
    return []


def check_weight_scaling(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Bilinearity: ``h(2^k · w) == 2^(2k) · h(w)`` bit-for-bit.

    Pair mass is bilinear in the weights and every bucket is correctly
    rounded from an exact scaled integer, so a power-of-two weight
    scaling — which multiplies each exact numerator by exactly
    ``2^(2k)`` — must scale each rounded double exactly too.  For an
    unweighted set the check first crosses the count/mass bridge:
    all-ones weights must reproduce the integer count histogram
    bit-for-bit (the exact accumulator of 1·1 products finalizes to
    the same integers the count path produces).
    """
    request = _pinned(request, particles)
    problems: list[str] = []
    if particles.weighted:
        weights = particles.weights
        baseline = _counts(particles, request)
    else:
        weights = np.ones(particles.size)
        counted = _counts(particles, request)
        baseline = _counts(particles.with_weights(weights), request)
        if not np.array_equal(counted, baseline):
            problems.append(
                _diff_message(
                    "all-ones weights vs counts", counted, baseline
                )
            )
    factor = float(2 ** int(rng.integers(2, 6)))
    scaled = _counts(
        particles.with_weights(weights * factor), request
    )
    expected = baseline * (factor * factor)
    if not np.array_equal(scaled, expected):
        problems.append(
            _diff_message(
                f"weight scaling by {factor:g}", expected, scaled
            )
        )
    return problems


def check_zero_weight_deletion(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Appending zero-weight particles must not change any bucket.

    A particle of weight 0 contributes an exactly-zero product to every
    pair it joins (0 is exact in the scaled-integer representation), so
    the augmented histogram must be *bit-identical* — this is the
    deletion-equivalence direction the exact accumulator guarantees by
    construction, and it catches any engine whose control flow lets
    masses (rather than particle counts) drive pruning.
    """
    request = _pinned(request, particles)
    weights = (
        particles.weights
        if particles.weighted
        else np.ones(particles.size)
    )
    baseline = _counts(particles.with_weights(weights), request)
    extra = int(rng.integers(1, 4))
    lo = np.asarray(particles.box.lo, dtype=float)
    hi = np.asarray(particles.box.hi, dtype=float)
    scale = float(1 << DYADIC_BITS)
    ghost = lo + (hi - lo) * rng.uniform(0.1, 0.9, (extra, particles.dim))
    ghost = np.clip(np.round(ghost * scale) / scale, lo, hi)
    augmented = ParticleSet(
        np.vstack([particles.positions, ghost]),
        particles.box,
        None
        if particles.types is None
        else np.concatenate(
            [particles.types, np.full(extra, particles.types[0])]
        ),
        particles.type_names,
        weights=np.concatenate([weights, np.zeros(extra)]),
    )
    padded = _counts(augmented, request)
    if not np.array_equal(baseline, padded):
        return [
            _diff_message(
                f"appending {extra} zero-weight particle(s)",
                baseline,
                padded,
            )
        ]
    return []


def check_cross_self_identity(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """``cross(A, A)`` must equal ``2 · self(A)`` plus the diagonal.

    A cross-set query of a dataset against itself sees every unordered
    pair {i, j} twice (as (i, j) and (j, i)) plus the N zero-distance
    diagonal pairs (i, i).  Buckets past the first therefore match
    ``2 × self`` *bit-for-bit* — the exact cross numerator is twice the
    self numerator, and doubling commutes with correct rounding — while
    bucket 0 additionally carries the ``Σ wᵢ²`` (or ``N``) diagonal
    mass, exactly for counts and within the rounding envelope for
    weighted mass (the diagonal term is rounded independently).
    """
    request = _pinned(request, particles)
    self_counts = _counts(particles, request)
    cross = compute_sdh(particles, request, b=particles).counts
    problems: list[str] = []
    if not np.array_equal(cross[1:], 2.0 * self_counts[1:]):
        problems.append(
            _diff_message(
                "cross(A,A) vs 2*self(A) off-diagonal buckets",
                2.0 * self_counts[1:],
                cross[1:],
            )
        )
    if particles.weighted:
        diagonal = float(
            np.sum(particles.weights * particles.weights)
        )
        tolerance = _weighted_tolerance(
            particles.weights, particles.weights
        )
    else:
        diagonal = float(particles.size)
        tolerance = 0.0
    expected_zero = 2.0 * self_counts[0] + diagonal
    if abs(cross[0] - expected_zero) > tolerance:
        problems.append(
            f"cross(A,A) bucket 0 = {cross[0]!r}, expected 2*self + "
            f"diagonal = {expected_zero!r}"
        )
    return problems


def check_cross_symmetry(
    a: ParticleSet,
    b: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """``h(A × B) == h(B × A)`` bit-for-bit (pair products commute)."""
    request = _pinned(request, a)
    forward = compute_sdh(a, request, b=b).counts
    backward = compute_sdh(b, request, b=a).counts
    if not np.array_equal(forward, backward):
        return [_diff_message("cross symmetry", forward, backward)]
    return []


def check_cross_split_additivity(
    a: ParticleSet,
    b: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Partitioning B: ``h(A × B) = h(A × B₁) + h(A × B₂)``.

    Exact for counts; weighted buckets are each rounded independently,
    so the identity holds to the weighted rounding envelope.
    """
    if b.size < 2:
        return []
    request = _pinned(request, a)
    whole = compute_sdh(a, request, b=b).counts
    mask = rng.random(b.size) < 0.5
    if not mask.any() or mask.all():
        mask[0] = True
        mask[-1] = False
    split = (
        compute_sdh(a, request, b=b.select(mask)).counts
        + compute_sdh(a, request, b=b.select(~mask)).counts
    )
    weighted = a.weighted or b.weighted
    if weighted:
        tolerance = _weighted_tolerance(
            a.weights if a.weighted else np.ones(a.size),
            b.weights if b.weighted else np.ones(b.size),
        )
        if not np.allclose(whole, split, rtol=0.0, atol=tolerance):
            return [
                _diff_message("cross split additivity", whole, split)
            ]
        return []
    if not np.array_equal(whole, split):
        return [_diff_message("cross split additivity", whole, split)]
    return []


def _diff_message(
    name: str, baseline: np.ndarray, other: np.ndarray
) -> str:
    delta = other - baseline
    bad = np.flatnonzero(delta)
    shown = ", ".join(
        f"bucket {i}: {baseline[i]:g} vs {other[i]:g}" for i in bad[:4]
    )
    more = f" (+{bad.size - 4} more)" if bad.size > 4 else ""
    return f"{name} changed {bad.size} bucket(s): {shown}{more}"


#: Every single-dataset invariant, in the order the harness runs them.
ALL_INVARIANTS: dict[str, Callable] = {
    "pair_conservation": check_pair_conservation,
    "translation": check_translation,
    "reflection": check_reflection,
    "axis_permutation": check_axis_permutation,
    "additivity": check_additivity,
    "refinement": check_refinement,
    "weight_scaling": check_weight_scaling,
    "zero_weight_deletion": check_zero_weight_deletion,
    "cross_self_identity": check_cross_self_identity,
}

#: Invariants over a two-dataset (A, B) cross-set case.
CROSS_INVARIANTS: dict[str, Callable] = {
    "cross_symmetry": check_cross_symmetry,
    "cross_split_additivity": check_cross_split_additivity,
}


def run_invariants(
    particles: ParticleSet,
    request: SDHRequest | None = None,
    rng: np.random.Generator | int | None = None,
    invariants: dict[str, Callable] | None = None,
    case: str = "",
    seed: int | None = None,
) -> list[Discrepancy]:
    """Run every applicable invariant; return the violations.

    Invariants are statements about plain exact full-dataset queries:
    restricted and approximate requests are rejected by callers (the
    fuzzer only routes plain requests here).  The dataset is snapped to
    the dyadic grid first so rigid motions are float-exact.
    """
    if request is None:
        request = SDHRequest(num_buckets=8)
    request = request.normalize()
    if request.restricted or request.approximate:
        raise ValueError(
            "invariants are defined for plain exact queries only"
        )
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(0 if rng is None else rng)
    particles = snap_dyadic(particles)
    checks = invariants if invariants is not None else ALL_INVARIANTS
    violations: list[Discrepancy] = []
    for name, check in checks.items():
        for problem in check(particles, request, rng):
            violations.append(
                Discrepancy(
                    "invariant",
                    f"{name}: {problem}",
                    case=case or name,
                    seed=seed,
                )
            )
    return violations


def run_cross_invariants(
    a: ParticleSet,
    b: ParticleSet,
    request: SDHRequest | None = None,
    rng: np.random.Generator | int | None = None,
    invariants: dict[str, Callable] | None = None,
    case: str = "",
    seed: int | None = None,
) -> list[Discrepancy]:
    """Run every two-dataset invariant on a cross-set case.

    Unlike :func:`run_invariants`, the operands are NOT re-snapped —
    cross-set operands must share one simulation box, and the fuzzer's
    cross family builds both sets on the dyadic grid inside a shared
    box already.
    """
    if request is None:
        request = SDHRequest(num_buckets=8)
    request = request.normalize()
    if request.restricted or request.approximate:
        raise ValueError(
            "cross invariants are defined for plain exact queries only"
        )
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(0 if rng is None else rng)
    checks = invariants if invariants is not None else CROSS_INVARIANTS
    violations: list[Discrepancy] = []
    for name, check in checks.items():
        for problem in check(a, b, request, rng):
            violations.append(
                Discrepancy(
                    "invariant",
                    f"{name}: {problem}",
                    case=case or name,
                    seed=seed,
                )
            )
    return violations

"""Metamorphic invariants no exact SDH engine may violate.

Each check derives a second query whose answer is *provably determined*
by the first — no oracle histogram needed — and demands exact
agreement:

* pair conservation — bucket totals equal ``N(N-1)/2`` when the spec
  covers the box diagonal;
* rigid motions — translating the dataset (box included), reflecting
  it about the box center, or permuting coordinate axes leaves every
  pairwise distance, hence every count, unchanged;
* additivity — splitting the dataset into disjoint halves A and B,
  ``h(A ∪ B) = h(A) + h(B) + h(A × B)`` with the cross term from the
  brute-force kernel;
* refinement — halving the bucket width ``p`` splits each bucket into
  exactly two, so adjacent fine-bucket pairs must sum back to the
  coarse counts.

Exactness note: the rigid-motion checks compare *bit-identical* counts,
which is sound only when the motion itself is exact in float64.  The
helpers therefore snap datasets and translation vectors to a dyadic
grid (:func:`snap_dyadic`) so every coordinate sum/difference is exact;
the verify fuzzer generates dyadic coordinates for the same reason.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.brute_force import brute_force_cross_sdh
from ..core.buckets import UniformBuckets
from ..core.query import compute_sdh
from ..core.request import SDHRequest
from ..data.particles import ParticleSet
from ..geometry import AABB
from .differential import Discrepancy

__all__ = [
    "snap_dyadic",
    "check_pair_conservation",
    "check_translation",
    "check_reflection",
    "check_axis_permutation",
    "check_additivity",
    "check_refinement",
    "ALL_INVARIANTS",
    "run_invariants",
]

#: Coordinates are snapped to multiples of 2**-DYADIC_BITS so that
#: adding a same-grid translation (magnitude < 2**(53 - DYADIC_BITS))
#: is exact in float64 and rigid motions preserve distances bit-for-bit.
DYADIC_BITS = 24


def snap_dyadic(particles: ParticleSet, bits: int = DYADIC_BITS) -> ParticleSet:
    """A copy of ``particles`` with coordinates on the dyadic grid.

    The box is re-derived from the snapped coordinates (snapping can
    move a point past the declared box edge by one grid step, and the
    default enclosing cube is itself not dyadic).
    """
    scale = float(1 << bits)
    positions = np.round(particles.positions * scale) / scale
    lo = np.floor(positions.min(axis=0) * scale) / scale
    hi = np.ceil(positions.max(axis=0) * scale) / scale
    side = float((hi - lo).max())
    if side <= 0:
        side = 1.0
    box = AABB.from_arrays(lo, lo + side)
    return ParticleSet(
        positions, box, particles.types, particles.type_names
    )


def _pinned(request: SDHRequest, particles: ParticleSet) -> SDHRequest:
    """The request with its bucket spec resolved against ``particles``.

    Metamorphic twins must be answered over *identical* edges; pinning
    the spec keeps a translated/reflected dataset from re-deriving it
    (identically, but the intent should be explicit).
    """
    spec = request.resolved_spec(particles)
    return request.replace(
        spec=spec, bucket_width=None, num_buckets=None
    )


def _counts(particles: ParticleSet, request: SDHRequest) -> np.ndarray:
    return compute_sdh(particles, request).counts


def check_pair_conservation(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Total counts must equal ``N(N-1)/2`` exactly."""
    request = _pinned(request, particles)
    total = float(_counts(particles, request).sum())
    expected = float(particles.num_pairs)
    if total != expected:
        return [
            f"histogram total {total:g} != N(N-1)/2 = {expected:g}"
        ]
    return []


def check_translation(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Translating data and box together must not change any count."""
    request = _pinned(request, particles)
    baseline = _counts(particles, request)
    sides = np.asarray(particles.box.sides, dtype=float)
    scale = float(1 << DYADIC_BITS)
    shift = np.round(rng.uniform(-1.0, 1.0, particles.dim) * sides * scale)
    shift /= scale
    moved = ParticleSet(
        particles.positions + shift,
        AABB.from_arrays(
            np.asarray(particles.box.lo) + shift,
            np.asarray(particles.box.hi) + shift,
        ),
        particles.types,
        particles.type_names,
    )
    translated = _counts(moved, request)
    if not np.array_equal(baseline, translated):
        return [_diff_message("translation", baseline, translated)]
    return []


def check_reflection(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Reflecting about the box center must not change any count."""
    request = _pinned(request, particles)
    baseline = _counts(particles, request)
    lo = np.asarray(particles.box.lo)
    hi = np.asarray(particles.box.hi)
    mirrored = ParticleSet(
        (lo + hi) - particles.positions,
        particles.box,
        particles.types,
        particles.type_names,
    )
    reflected = _counts(mirrored, request)
    if not np.array_equal(baseline, reflected):
        return [_diff_message("reflection", baseline, reflected)]
    return []


def check_axis_permutation(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Permuting coordinate axes must not change any count."""
    request = _pinned(request, particles)
    baseline = _counts(particles, request)
    perm = rng.permutation(particles.dim)
    lo = np.asarray(particles.box.lo)[perm]
    hi = np.asarray(particles.box.hi)[perm]
    permuted_set = ParticleSet(
        particles.positions[:, perm],
        AABB.from_arrays(lo, hi),
        particles.types,
        particles.type_names,
    )
    permuted = _counts(permuted_set, request)
    if not np.array_equal(baseline, permuted):
        return [_diff_message("axis permutation", baseline, permuted)]
    return []


def check_additivity(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Split/merge identity: ``h(A ∪ B) = h(A) + h(B) + h(A × B)``.

    This is the invariant every sharded engine leans on (the parallel
    merge, the incremental delta layer), exercised through the public
    :meth:`~repro.core.histogram.DistanceHistogram.merge` path so a
    perturbed merge is caught here.
    """
    if particles.size < 4:
        return []
    request = _pinned(request, particles)
    whole = compute_sdh(particles, request)
    mask = rng.random(particles.size) < 0.5
    if not mask.any() or mask.all():
        mask[0] = True
        mask[-1] = False
    part_a = particles.select(mask)
    part_b = particles.select(~mask)
    merged = compute_sdh(part_a, request).merge(
        compute_sdh(part_b, request)
    )
    cross = brute_force_cross_sdh(
        part_a, part_b, request.spec, periodic=request.periodic
    )
    merged = merged.merge(cross)
    if not np.array_equal(whole.counts, merged.counts):
        return [_diff_message("additivity", whole.counts, merged.counts)]
    return []


def check_refinement(
    particles: ParticleSet,
    request: SDHRequest,
    rng: np.random.Generator,
) -> list[str]:
    """Halving ``p`` refines buckets: fine pairs must sum to coarse.

    Only defined for uniform specs; custom-edge requests are skipped.
    """
    request = _pinned(request, particles)
    spec = request.spec
    if not isinstance(spec, UniformBuckets):
        return []
    coarse = _counts(particles, request)
    fine_spec = UniformBuckets(spec.width / 2.0, spec.num_buckets * 2)
    fine = _counts(particles, request.replace(spec=fine_spec))
    coarsened = fine[0::2] + fine[1::2]
    if not np.array_equal(coarse, coarsened):
        return [_diff_message("refinement", coarse, coarsened)]
    return []


def _diff_message(
    name: str, baseline: np.ndarray, other: np.ndarray
) -> str:
    delta = other - baseline
    bad = np.flatnonzero(delta)
    shown = ", ".join(
        f"bucket {i}: {baseline[i]:g} vs {other[i]:g}" for i in bad[:4]
    )
    more = f" (+{bad.size - 4} more)" if bad.size > 4 else ""
    return f"{name} changed {bad.size} bucket(s): {shown}{more}"


#: Every invariant, in the order the harness runs them.
ALL_INVARIANTS: dict[str, Callable] = {
    "pair_conservation": check_pair_conservation,
    "translation": check_translation,
    "reflection": check_reflection,
    "axis_permutation": check_axis_permutation,
    "additivity": check_additivity,
    "refinement": check_refinement,
}


def run_invariants(
    particles: ParticleSet,
    request: SDHRequest | None = None,
    rng: np.random.Generator | int | None = None,
    invariants: dict[str, Callable] | None = None,
    case: str = "",
    seed: int | None = None,
) -> list[Discrepancy]:
    """Run every applicable invariant; return the violations.

    Invariants are statements about plain exact full-dataset queries:
    restricted and approximate requests are rejected by callers (the
    fuzzer only routes plain requests here).  The dataset is snapped to
    the dyadic grid first so rigid motions are float-exact.
    """
    if request is None:
        request = SDHRequest(num_buckets=8)
    request = request.normalize()
    if request.restricted or request.approximate:
        raise ValueError(
            "invariants are defined for plain exact queries only"
        )
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(0 if rng is None else rng)
    particles = snap_dyadic(particles)
    checks = invariants if invariants is not None else ALL_INVARIANTS
    violations: list[Discrepancy] = []
    for name, check in checks.items():
        for problem in check(particles, request, rng):
            violations.append(
                Discrepancy(
                    "invariant",
                    f"{name}: {problem}",
                    case=case or name,
                    seed=seed,
                )
            )
    return violations
